#!/usr/bin/env python
"""Offloaded reductions: the round-robin copy rewrite (paper §3).

A ``reduction(+:s)`` on an offloaded loop is rewritten into N partial
accumulators updated round-robin, so the floating-point add's latency no
longer serializes the pipeline — the paper's transform.  This example
computes a dot product on the FPGA and shows the dependence-II collapse
in the Vitis report.

Run:  python examples/reduction_offload.py
"""

import numpy as np

from repro import KernelOverrides, Session

SOURCE = """
subroutine sdot(x, y, s, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
!$omp target parallel do reduction(+:s)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
!$omp end target parallel do
end subroutine sdot
"""


def main() -> None:
    n = 50_000
    rng = np.random.default_rng(5)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)

    session = Session(SOURCE)  # frontend/host compiled once for the sweep
    for ncopies in (1, 8):
        program = session.program(KernelOverrides(reduction_copies=ncopies))
        s = np.zeros((), dtype=np.float32)
        result = program.executor().run(
            "sdot", x, y, s, np.array(n, np.int32)
        )
        expected = float(np.dot(x.astype(np.float64), y.astype(np.float64)))
        error = abs(float(s) - expected) / abs(expected)
        kernel = next(iter(program.bitstream.kernels.values()))
        loop_iis = [
            (sched.dependence_ii, sched.achieved_ii)
            for sched in kernel.loops.values()
        ]
        print(f"reduction copies = {ncopies}:")
        print(f"  dot = {float(s):.4f} (relative error {error:.2e})")
        print(f"  loop (dependence II, achieved II): {loop_iis}")
        print(f"  kernel time = {result.kernel_time_s * 1e3:.3f} ms")
        print()

    print("With one copy the f32 add's ~7-cycle latency forces II >= 7;")
    print("with 8 round-robin copies the carried distance is 8, so the")
    print("dependence no longer constrains the pipeline (II limited only")
    print("by the AXI memory accesses).")


if __name__ == "__main__":
    main()

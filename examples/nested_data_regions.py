#!/usr/bin/env python
"""Nested OpenMP data regions (paper §3, Listing 1).

Demonstrates the reference-counted residency the ``device`` dialect
implements: a structured ``target data`` region makes the arrays
resident, so the implicit ``tofrom`` maps of the enclosed ``target``
constructs become *no-op transfers* — the counter tells the host code
the data is already on the device.

The example runs the same two offloaded loops with and without the
enclosing data region and shows the transferred-byte difference.

Run:  python examples/nested_data_regions.py
"""

import numpy as np

from repro.pipeline import compile_fortran

WITH_REGION = """
subroutine stages(x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(inout) :: x(n)
  real, intent(out) :: y(n)
  integer :: i
!$omp target data map(tofrom: x) map(from: y)
!$omp target parallel do
  do i = 1, n
    x(i) = x(i) * 2.0
  end do
!$omp end target parallel do
!$omp target parallel do
  do i = 1, n
    y(i) = x(i) + 1.0
  end do
!$omp end target parallel do
!$omp end target data
end subroutine stages
"""

WITHOUT_REGION = """
subroutine stages(x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(inout) :: x(n)
  real, intent(out) :: y(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    x(i) = x(i) * 2.0
  end do
!$omp end target parallel do
!$omp target parallel do
  do i = 1, n
    y(i) = x(i) + 1.0
  end do
!$omp end target parallel do
end subroutine stages
"""


def run(source: str, n: int):
    program = compile_fortran(source)
    rng = np.random.default_rng(3)
    x = rng.standard_normal(n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)
    x0 = x.copy()
    result = program.executor().run("stages", x, y, np.array(n, np.int32))
    assert np.allclose(x, x0 * 2.0, rtol=1e-6)
    assert np.allclose(y, x0 * 2.0 + 1.0, rtol=1e-6)
    return result


def main() -> None:
    n = 200_000
    scoped = run(WITH_REGION, n)
    bare = run(WITHOUT_REGION, n)

    print(f"two offloaded loops over {n} floats ({4 * n} bytes/array)")
    print(f"{'':24}{'with target data':>18}{'without':>14}")
    print(f"{'transfers':24}{scoped.transfers:>18}{bare.transfers:>14}")
    print(f"{'bytes host->device':24}{scoped.bytes_h2d:>18}{bare.bytes_h2d:>14}")
    print(f"{'bytes device->host':24}{scoped.bytes_d2h:>18}{bare.bytes_d2h:>14}")
    print(f"{'device time (ms)':24}{scoped.device_time_ms:>18.3f}"
          f"{bare.device_time_ms:>14.3f}")
    print()
    print("The data region makes the second kernel's implicit maps no-ops:")
    print("the reference counter reports the arrays resident, so the")
    print("conditional DMA around device.alloc/device.lookup is skipped.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Design-space exploration over directive parameters (paper future work).

The paper notes that the ``simdlen`` unroll factor is user-chosen and
that "design space exploration could be added in the future to
automatically find the best combination of directives and their
parameters".  The :mod:`repro.dse` extension implements exactly that on
the staged session API: one :class:`~repro.session.Session` compiles the
frontend and host side once, then each sweep point is a cached device
build with a different :class:`~repro.session.KernelOverrides` —
``simdlen`` is applied inside the ``lower-omp-to-hls`` pass, not by
editing the Fortran text.

For the memory-bound SAXPY the sweep confirms the paper's analysis: the
achieved II scales with the unroll factor, so the per-element rate — and
hence the runtime — is flat, and small factors already sit at the sweet
spot between performance and resources.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.dse import explore_simdlen
from repro.workloads import SAXPY_SOURCE


def main() -> None:
    n = 200_000
    rng = np.random.default_rng(42)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)

    def evaluate(program):
        return program.executor().run(
            "saxpy", np.array(2.0, np.float32), x, y.copy(),
            np.array(n, np.int32),
        )

    result = explore_simdlen(
        SAXPY_SOURCE, evaluate, factors=(1, 2, 4, 8, 10, 16)
    )
    print(result.table())
    best = result.best
    print()
    print(
        f"best: simdlen({best.simdlen}) at {best.device_time_ms:.3f} ms, "
        f"LUT {best.lut_pct:.2f}%"
    )
    print()
    counters = result.session.counters
    print(
        f"artifact reuse: {counters['frontend_compiles']} frontend compile, "
        f"{counters['host_device_builds']} host build, "
        f"{counters['device_builds']} device builds for "
        f"{len(result.points)} sweep points"
    )
    print()
    print("The kernel is m_axi-bound, so unrolling multiplies the II")
    print("instead of the throughput — runtime stays flat while LUTs grow;")
    print("DSE correctly refuses to pay for factors the memory cannot feed.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""SGESL benchmark scenario (paper §4, Listing 6).

Factorizes a random system with the LINPACK SGEFA reference, then solves
it with the Fortran OpenMP SGESL (both update loops offloaded via
``target parallel do``) and with the hand-written HLS baseline, checking
both against SciPy and printing a Table-2-shaped comparison.

Run:  python examples/sgesl.py [--quick]
"""

import sys

import numpy as np

from repro.baselines import HandwrittenSgesl
from repro.pipeline import compile_fortran
from repro.workloads import SGESL_SIZES, SGESL_SOURCE, SgeslCase, sgesl_reference


def main() -> None:
    sizes = SGESL_SIZES[:2] if "--quick" in sys.argv else SGESL_SIZES
    program = compile_fortran(SGESL_SOURCE)
    baseline = HandwrittenSgesl.build()

    header = f"{'N':>6} | {'Fortran OpenMP (ms)':>20} | {'Hand HLS (ms)':>15} | {'diff':>7}"
    print(header)
    print("-" * len(header))
    for n in sizes:
        case = SgeslCase(n)
        a, lu, ipvt, b = case.system()
        expected = sgesl_reference(lu, ipvt, b)

        b_fortran = b.copy()
        fortran = program.executor().run(
            "sgesl",
            lu.copy(),
            b_fortran,
            (ipvt + 1).astype(np.int64),  # Fortran: 1-based pivots
            np.array(n, dtype=np.int32),
        )
        assert np.allclose(b_fortran, expected, rtol=1e-3, atol=1e-3)
        residual = np.abs(a.astype(np.float64) @ b_fortran - b).max()

        b_hls = b.copy()
        hls = baseline.run(lu.copy(), b_hls, ipvt)
        assert np.allclose(b_hls, expected, rtol=1e-3, atol=1e-3)

        diff = (hls.device_time_s / fortran.device_time_s - 1.0) * 100.0
        print(
            f"{n:>6} | {fortran.device_time_ms:>20.3f} "
            f"| {hls.device_time_ms:>15.3f} "
            f"| {diff:>+6.2f}%   (residual {residual:.2e})"
        )

    print()
    print("Fortran-flow kernel utilisation:")
    print(program.bitstream.report())
    print("Hand-written-HLS kernel utilisation (note the DSP-mapped MAC):")
    print(baseline.bitstream.report())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""SAXPY benchmark scenario (paper §4, Listing 5).

Runs the paper's SAXPY — ``!$omp target parallel do simd simdlen(10)`` —
for the four problem sizes of Table 1, comparing the Fortran OpenMP flow
against the hand-written Vitis HLS baseline, and prints a Table-1-shaped
comparison.

Run:  python examples/saxpy.py [--quick]
"""

import sys

import numpy as np

from repro.baselines import HandwrittenSaxpy
from repro.pipeline import compile_fortran
from repro.workloads import SAXPY_SIZES, SAXPY_SOURCE, SaxpyCase, saxpy_reference


def main() -> None:
    sizes = SAXPY_SIZES[:2] if "--quick" in sys.argv else SAXPY_SIZES
    program = compile_fortran(SAXPY_SOURCE)
    baseline = HandwrittenSaxpy.build()

    header = f"{'N':>10} | {'Fortran OpenMP (ms)':>20} | {'Hand HLS (ms)':>15} | {'diff':>7}"
    print(header)
    print("-" * len(header))
    for n in sizes:
        case = SaxpyCase(n)
        x, y = case.arrays()
        expected = saxpy_reference(case.a, x, y)

        y_fortran = y.copy()
        fortran = program.executor().run(
            "saxpy",
            np.array(case.a, dtype=np.float32),
            x,
            y_fortran,
            np.array(n, dtype=np.int32),
        )
        assert np.allclose(y_fortran, expected, rtol=1e-5)

        y_hls = y.copy()
        hls = baseline.run(case.a, x, y_hls)
        assert np.allclose(y_hls, expected, rtol=1e-5)

        diff = (hls.device_time_s / fortran.device_time_s - 1.0) * 100.0
        print(
            f"{n:>10} | {fortran.device_time_ms:>20.3f} "
            f"| {hls.device_time_ms:>15.3f} | {diff:>+6.2f}%"
        )

    print()
    print("Fortran-flow kernel utilisation:")
    print(program.bitstream.report())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: offload a Fortran loop to the (simulated) U280 FPGA.

Compiles a vector-add subroutine with an OpenMP ``target parallel do``
through the full MLIR pipeline using the staged session API — Flang-style
frontend, the paper's ``device``-dialect passes, HLS lowering, simulated
Vitis synthesis — then runs it and prints the timing/utilisation
reports.  The session caches every stage: asking for a second program
with different kernel overrides only re-runs the device build.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Instrumentation, KernelOverrides, Session

SOURCE = """
subroutine vadd(x, y, z, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: z(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    z(i) = x(i) + y(i)
  end do
!$omp end target parallel do
end subroutine vadd
"""


def main() -> None:
    session = Session(SOURCE, instrumentation=Instrumentation(capture_ir=True))
    program = session.program()

    n = 100_000
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    z = np.zeros(n, dtype=np.float32)

    result = program.executor().run(
        "vadd", x, y, z, np.array(n, dtype=np.int32)
    )

    assert np.allclose(z, x + y), "offloaded result mismatch!"
    print(f"vadd on {n} elements: correct.")
    print(f"  device time : {result.device_time_ms:8.3f} ms")
    print(f"  kernel time : {result.kernel_time_s * 1e3:8.3f} ms")
    print(f"  transfers   : {result.transfers} "
          f"({result.bytes_h2d + result.bytes_d2h} bytes)")
    print()
    print(program.bitstream.report())
    print()
    print("Pipeline stages:", " -> ".join(program.stage_names))
    print()

    # Stage reuse: an unrolled variant costs one device build — the
    # frontend and host side come from the session cache.
    unrolled = session.program(KernelOverrides(simdlen=4))
    print("unrolled variant reuses cached stages:",
          dict(session.counters))
    print("  base LUTs    :", program.bitstream.resources.luts)
    print("  simdlen=4 LUTs:", unrolled.bitstream.resources.luts)
    print()
    print("--- generated host code (first 40 lines) ---")
    print("\n".join(program.host_cpp.splitlines()[:40]))


if __name__ == "__main__":
    main()

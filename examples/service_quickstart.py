#!/usr/bin/env python
"""The compile service: content-addressed caching + request coalescing.

ROADMAP item 1 asks for a multi-tenant compile/run service in which
identical requests hit a cache instead of recompiling.  This example
stands the service up over a temporary on-disk artifact store and shows
the two headline behaviours:

* **warm-cache reuse** — the first ``CompileRequest`` builds the
  program; every identical request after it (same canonical source,
  target, stage and overrides — the content address) is served from the
  in-memory LRU or the on-disk tier, orders of magnitude faster, and
  each caller gets an independent artifact that reruns bit-identically;
* **a coalesced concurrent burst** — 8 requests for the same key
  submitted at once against a process pool perform exactly **one**
  build, whose result fans out to all 8 waiters.

Run:  python examples/service_quickstart.py
"""

import tempfile
import time

import numpy as np

from repro.reporting import service_request_table, service_stats_table
from repro.service import ArtifactStore, CompileRequest, CompileService
from repro.workloads import get_workload


def check_saxpy(program) -> None:
    n = 4096
    rng = np.random.default_rng(7)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = (y + np.float32(2.5) * x).astype(np.float32)
    program.executor().run(
        "saxpy", np.array(2.5, np.float32), x, y, np.array(n, np.int32)
    )
    assert y.tobytes() == expected.tobytes()
    print("saxpy output matches the NumPy reference bit-for-bit")


def main() -> None:
    source = get_workload("saxpy").source
    request = CompileRequest(source)

    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)

        # -- warm-cache reuse (inline service: no pool needed) ---------
        with CompileService(store=store, max_workers=0) as service:
            start = time.perf_counter()
            built = service.compile(request)
            cold_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            cached = service.compile(request)
            warm_ms = (time.perf_counter() - start) * 1e3
            print(
                f"cold build {cold_ms:.2f} ms ({built.metrics.outcome})  "
                f"->  warm hit {warm_ms:.3f} ms ({cached.metrics.outcome}, "
                f"{cold_ms / warm_ms:.0f}x faster)"
            )
            check_saxpy(cached.artifact)

            # the cache survives a process restart via the disk tier
            store.clear_memory()
            disk = service.compile(request)
            print(f"after a memory clear: {disk.metrics.outcome}")
            print()
            print(service_stats_table(service.stats))
            print()

        # -- coalesced concurrent burst (process pool) -----------------
        with CompileService(
            store=ArtifactStore(), max_workers=2
        ) as service:
            service.warm_pool()
            futures = [service.submit(request) for _ in range(8)]
            responses = [future.result() for future in futures]
            print(
                f"8 concurrent requests -> {service.stats.builds} build, "
                f"{service.stats.coalesced} coalesced"
            )
            print()
            print(service_request_table(responses))


if __name__ == "__main__":
    main()

"""Repo-level pytest configuration (option registration only)."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/*.ir IR snapshots from the current "
        "pipeline output instead of asserting against them",
    )

"""Free-form Fortran lexer.

Tokenizes the Fortran subset the frontend supports.  OpenMP sentinel
comments (``!$omp ...``) are preserved as ``OMP_DIRECTIVE`` tokens
(with continuation-line splicing); all other comments are dropped.
Keywords and identifiers are case-insensitive and normalized to lower
case.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto


class FortranSyntaxError(Exception):
    """Raised on malformed Fortran source."""

    def __init__(self, message: str, line: int = -1):
        super().__init__(message if line < 0 else f"line {line}: {message}")
        self.line = line


class TokenKind(Enum):
    IDENT = auto()
    INT = auto()
    REAL = auto()
    STRING = auto()
    OP = auto()          # + - * / ** = == /= < <= > >= ( ) , : :: %
    LOGICAL_OP = auto()  # .and. .or. .not. .true. .false. .lt. ...
    NEWLINE = auto()
    OMP_DIRECTIVE = auto()
    EOF = auto()


@dataclass
class Token:
    kind: TokenKind
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


KEYWORDS = {
    "program", "end", "subroutine", "function", "implicit", "none",
    "integer", "real", "double", "precision", "logical", "parameter",
    "dimension", "intent", "in", "out", "inout", "do", "while", "if",
    "then", "else", "elseif", "endif", "enddo", "call", "return", "print",
    "exit", "cycle", "use", "contains", "kind", "result",
}

_OP_RE = re.compile(
    r"\*\*|==|/=|<=|>=|=>|::|[-+*/=<>(),:%]"
)
_LOGICAL_RE = re.compile(
    r"\.(and|or|not|true|false|eqv|neqv|lt|le|gt|ge|eq|ne)\.", re.IGNORECASE
)
_IDENT_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
# Real literals: 1.0, 1., .5, 1.0e-3, 1d0, 1.0_8 ...
_REAL_RE = re.compile(
    r"(\d+\.\d*|\.\d+|\d+)([edED][-+]?\d+)(_\d+)?|(\d+\.\d*|\.\d+)(_\d+)?"
)
_INT_RE = re.compile(r"\d+(_\d+)?")
_STRING_RE = re.compile(r"'(?:[^']|'')*'|\"(?:[^\"]|\"\")*\"")
_OMP_SENTINEL_RE = re.compile(r"^\s*!\$omp\s+(.*)$", re.IGNORECASE)


def _splice_continuations(lines: list[str]) -> list[tuple[int, str]]:
    """Join ``&`` continuation lines; returns (first line number, text)."""
    result: list[tuple[int, str]] = []
    buffer = ""
    start_line = 1
    for number, raw in enumerate(lines, start=1):
        line = raw.rstrip()
        if not buffer:
            start_line = number
        stripped = line.rstrip()
        if stripped.endswith("&"):
            buffer += stripped[:-1]
            continue
        buffer += line
        result.append((start_line, buffer))
        buffer = ""
    if buffer:
        result.append((start_line, buffer))
    return result


def tokenize(source: str) -> list[Token]:
    """Tokenize free-form Fortran source."""
    tokens: list[Token] = []
    for line_no, line in _splice_continuations(source.splitlines()):
        omp = _OMP_SENTINEL_RE.match(line)
        if omp is not None:
            tokens.append(
                Token(TokenKind.OMP_DIRECTIVE, omp.group(1).strip(), line_no)
            )
            tokens.append(Token(TokenKind.NEWLINE, "\n", line_no))
            continue
        pos = 0
        emitted = False
        while pos < len(line):
            ch = line[pos]
            if ch in " \t":
                pos += 1
                continue
            if ch == "!":
                break  # comment to end of line
            if ch == ";":
                tokens.append(Token(TokenKind.NEWLINE, ";", line_no))
                pos += 1
                continue
            match = _STRING_RE.match(line, pos)
            if match:
                tokens.append(Token(TokenKind.STRING, match.group(), line_no))
                pos = match.end()
                emitted = True
                continue
            match = _LOGICAL_RE.match(line, pos)
            if match:
                tokens.append(
                    Token(TokenKind.LOGICAL_OP, match.group().lower(), line_no)
                )
                pos = match.end()
                emitted = True
                continue
            match = _REAL_RE.match(line, pos)
            if match and (match.group(2) or "." in match.group()):
                tokens.append(Token(TokenKind.REAL, match.group(), line_no))
                pos = match.end()
                emitted = True
                continue
            match = _INT_RE.match(line, pos)
            if match:
                tokens.append(Token(TokenKind.INT, match.group(), line_no))
                pos = match.end()
                emitted = True
                continue
            match = _IDENT_RE.match(line, pos)
            if match:
                tokens.append(
                    Token(TokenKind.IDENT, match.group().lower(), line_no)
                )
                pos = match.end()
                emitted = True
                continue
            match = _OP_RE.match(line, pos)
            if match:
                tokens.append(Token(TokenKind.OP, match.group(), line_no))
                pos = match.end()
                emitted = True
                continue
            raise FortranSyntaxError(f"unexpected character {ch!r}", line_no)
        if emitted:
            tokens.append(Token(TokenKind.NEWLINE, "\n", line_no))
    tokens.append(Token(TokenKind.EOF, "", tokens[-1].line if tokens else 1))
    return tokens

"""AST for the Fortran subset, including OpenMP constructs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# -- expressions -------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class RealLit(Expr):
    value: float = 0.0
    #: 4 (default real) or 8 (double precision / d-exponent)
    kind: int = 4


@dataclass
class LogicalLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    """``a(i)`` / ``a(i, j)`` — also the parse of what may turn out to be
    an intrinsic or function call; sema disambiguates."""

    name: str = ""
    indices: list[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    op: str = "+"  # + - * / ** == /= < <= > >= .and. .or.
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class UnOp(Expr):
    op: str = "-"  # - .not.
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class IntrinsicCall(Expr):
    """Resolved intrinsic (sema output)."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ---------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Assign(Stmt):
    target: Expr = None  # VarRef or ArrayRef  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class DoLoop(Stmt):
    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfBlock(Stmt):
    """if/else-if chain: conditions[i] guards bodies[i]; else_body last."""

    conditions: list[Expr] = field(default_factory=list)
    bodies: list[list[Stmt]] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class PrintStmt(Stmt):
    items: list[Expr] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class ExitStmt(Stmt):
    pass


@dataclass
class CycleStmt(Stmt):
    pass


# -- OpenMP -------------------------------------------------------------------------


@dataclass
class MapClause:
    """``map(to: a, b)`` — map_type in {to, from, tofrom, alloc}."""

    map_type: str = "tofrom"
    vars: list[str] = field(default_factory=list)


@dataclass
class ReductionClause:
    """``reduction(+:s)`` — operator in {+, *, max, min}."""

    operator: str = "+"
    vars: list[str] = field(default_factory=list)


@dataclass
class OmpClauses:
    """Clauses attached to an OpenMP construct."""

    maps: list[MapClause] = field(default_factory=list)
    reductions: list[ReductionClause] = field(default_factory=list)
    simdlen: Optional[int] = None
    num_threads: Optional[int] = None
    #: device memory space requested via ``device(n)`` if present
    device: Optional[int] = None
    #: loop-nest collapse depth requested via ``collapse(n)`` if present
    collapse: Optional[int] = None


@dataclass
class OmpTargetData(Stmt):
    """``!$omp target data ... !$omp end target data`` (structured)."""

    clauses: OmpClauses = field(default_factory=OmpClauses)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class OmpTargetEnterData(Stmt):
    clauses: OmpClauses = field(default_factory=OmpClauses)


@dataclass
class OmpTargetExitData(Stmt):
    clauses: OmpClauses = field(default_factory=OmpClauses)


@dataclass
class OmpTargetUpdate(Stmt):
    """``!$omp target update from(a) to(b)``."""

    to_vars: list[str] = field(default_factory=list)
    from_vars: list[str] = field(default_factory=list)


@dataclass
class OmpTarget(Stmt):
    """``!$omp target [parallel do] [simd] ...`` offload construct.

    ``parallel_do``/``simd`` record the composite construct shape.
    The body is a single loop for combined loop constructs, or any
    statement list for a bare ``target`` region.
    """

    clauses: OmpClauses = field(default_factory=OmpClauses)
    parallel_do: bool = False
    simd: bool = False
    #: False for a bare host ``!$omp parallel do`` (no offload)
    is_target: bool = True
    body: list[Stmt] = field(default_factory=list)


# -- program units --------------------------------------------------------------------


@dataclass
class TypeSpec:
    """Declared type: base in {integer, real, logical}; kind 4 or 8."""

    base: str = "real"
    kind: int = 4


@dataclass
class Declaration(Stmt):
    type: TypeSpec = field(default_factory=TypeSpec)
    name: str = ""
    #: Array extents; each is an Expr (IntLit for static, VarRef for
    #: dummy-sized) or None-like "*" assumed size (unsupported).
    dims: list[Expr] = field(default_factory=list)
    intent: Optional[str] = None
    is_parameter: bool = False
    init: Optional[Expr] = None


@dataclass
class SubprogramUnit:
    """A ``program`` or ``subroutine`` unit."""

    kind: str = "program"  # program | subroutine
    name: str = ""
    dummy_args: list[str] = field(default_factory=list)
    decls: list[Declaration] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class CompilationUnit:
    units: list[SubprogramUnit] = field(default_factory=list)

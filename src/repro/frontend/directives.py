"""OpenMP directive parsing.

Parses the text of ``!$omp ...`` sentinel comments into structured
:class:`Directive` objects consumed by the statement parser.  Supported
directives (the subset the paper's flow handles):

* ``target [parallel do] [simd]`` + clauses, and the matching ``end``
* ``target data`` / ``end target data``
* ``target enter data`` / ``target exit data``
* ``target update``
* ``parallel do [simd]`` (host construct) and matching ``end``
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.frontend.ast_nodes import MapClause, OmpClauses, ReductionClause
from repro.frontend.lexer import FortranSyntaxError

#: map types accepted in ``map()`` clauses.
_MAP_TYPES = ("tofrom", "to", "from", "alloc")
_REDUCTION_OPS = {"+": "+", "*": "*", "max": "max", "min": "min"}


@dataclass
class Directive:
    """A parsed OpenMP directive line."""

    #: canonical construct name: "target", "target data",
    #: "target enter data", "target exit data", "target update",
    #: "parallel do"
    construct: str = ""
    is_end: bool = False
    parallel_do: bool = False
    simd: bool = False
    clauses: OmpClauses = field(default_factory=OmpClauses)
    #: for target update
    to_vars: list[str] = field(default_factory=list)
    from_vars: list[str] = field(default_factory=list)
    line: int = 0


# clause argument may contain one level of nested parens: map(to: a(1:n))
_CLAUSE_RE = re.compile(
    r"([a-z_]+)\s*(\(((?:[^()]|\([^()]*\))*)\))?", re.IGNORECASE
)


def _split_head_and_clauses(text: str) -> tuple[list[str], str]:
    """Split leading construct keywords from the clause tail."""
    words = []
    rest = text.strip()
    while rest:
        match = re.match(r"^([a-z]+)\b\s*", rest, re.IGNORECASE)
        if not match:
            break
        word = match.group(1).lower()
        if word in (
            "end", "target", "data", "enter", "exit", "update",
            "parallel", "do", "simd", "teams", "distribute",
        ):
            words.append(word)
            rest = rest[match.end():]
        else:
            break
    return words, rest


def _parse_var_list(text: str, line: int) -> list[str]:
    names = [v.strip().lower() for v in text.split(",") if v.strip()]
    for name in names:
        if not re.fullmatch(r"[a-z][a-z0-9_]*(\(.*\))?", name):
            raise FortranSyntaxError(f"bad variable in clause: {name!r}", line)
    # drop any array-section parentheses: map(to: a(1:n)) -> a
    return [n.split("(")[0] for n in names]


def _parse_clauses(text: str, directive: Directive, line: int) -> None:
    pos = 0
    while pos < len(text):
        if text[pos] in " \t,":
            pos += 1
            continue
        match = _CLAUSE_RE.match(text, pos)
        if not match:
            raise FortranSyntaxError(
                f"cannot parse OpenMP clause at {text[pos:]!r}", line
            )
        name = match.group(1).lower()
        arg = match.group(3)
        if name == "map":
            if arg is None:
                raise FortranSyntaxError("map clause requires arguments", line)
            if ":" in arg:
                map_type, vars_text = arg.split(":", 1)
                map_type = map_type.strip().lower()
                # strip mapper modifiers like "always,"
                map_type = map_type.split(",")[-1].strip()
            else:
                map_type, vars_text = "tofrom", arg
            if map_type not in _MAP_TYPES:
                raise FortranSyntaxError(f"bad map type {map_type!r}", line)
            directive.clauses.maps.append(
                MapClause(map_type, _parse_var_list(vars_text, line))
            )
        elif name == "reduction":
            if arg is None or ":" not in arg:
                raise FortranSyntaxError("bad reduction clause", line)
            op_text, vars_text = arg.split(":", 1)
            op_text = op_text.strip().lower()
            if op_text not in _REDUCTION_OPS:
                raise FortranSyntaxError(
                    f"unsupported reduction operator {op_text!r}", line
                )
            directive.clauses.reductions.append(
                ReductionClause(
                    _REDUCTION_OPS[op_text], _parse_var_list(vars_text, line)
                )
            )
        elif name == "simdlen":
            if arg is None or not arg.strip().isdigit():
                raise FortranSyntaxError("simdlen requires an integer", line)
            directive.clauses.simdlen = int(arg.strip())
        elif name == "num_threads":
            if arg is None or not arg.strip().isdigit():
                raise FortranSyntaxError("num_threads requires an integer", line)
            directive.clauses.num_threads = int(arg.strip())
        elif name == "device":
            if arg is None or not arg.strip().isdigit():
                raise FortranSyntaxError("device requires an integer", line)
            directive.clauses.device = int(arg.strip())
        elif name == "collapse":
            if arg is None or not arg.strip().isdigit() or int(arg) < 1:
                raise FortranSyntaxError(
                    "collapse requires a positive integer", line
                )
            directive.clauses.collapse = int(arg.strip())
        elif name == "to":
            directive.to_vars.extend(_parse_var_list(arg or "", line))
        elif name == "from":
            directive.from_vars.extend(_parse_var_list(arg or "", line))
        elif name in ("private", "firstprivate", "shared",
                      "schedule", "nowait", "defaultmap"):
            # Accepted and recorded as no-ops: they do not change the FPGA
            # lowering in the paper's flow.
            pass
        else:
            raise FortranSyntaxError(f"unsupported OpenMP clause {name!r}", line)
        pos = match.end()


def parse_directive(text: str, line: int = 0) -> Directive:
    """Parse one directive line (without the ``!$omp`` sentinel)."""
    directive = Directive(line=line)
    words, clause_text = _split_head_and_clauses(text)
    if not words:
        raise FortranSyntaxError(f"empty OpenMP directive: {text!r}", line)
    if words[0] == "end":
        directive.is_end = True
        words = words[1:]
        if not words:
            raise FortranSyntaxError("bare '!$omp end'", line)

    if words[:3] == ["target", "enter", "data"]:
        directive.construct = "target enter data"
        words = words[3:]
    elif words[:3] == ["target", "exit", "data"]:
        directive.construct = "target exit data"
        words = words[3:]
    elif words[:2] == ["target", "data"]:
        directive.construct = "target data"
        words = words[2:]
    elif words[:2] == ["target", "update"]:
        directive.construct = "target update"
        words = words[2:]
    elif words[:1] == ["target"]:
        directive.construct = "target"
        words = words[1:]
    elif words[:2] == ["parallel", "do"]:
        directive.construct = "parallel do"
        directive.parallel_do = True
        words = words[2:]
        if words[:1] == ["simd"]:
            directive.simd = True
            words = words[1:]
    else:
        raise FortranSyntaxError(
            f"unsupported OpenMP construct: {' '.join(words)!r}", line
        )

    if directive.construct == "target":
        if words[:2] == ["parallel", "do"]:
            directive.parallel_do = True
            words = words[2:]
        if words[:1] == ["simd"]:
            directive.simd = True
            words = words[1:]
    if words:
        raise FortranSyntaxError(
            f"unexpected tokens after construct: {' '.join(words)!r}", line
        )
    _parse_clauses(clause_text, directive, line)
    if directive.clauses.collapse is not None and not directive.parallel_do:
        # collapse names a loop-nest depth: only loop directives carry one
        # (OpenMP 5.2 §4.4.3); on data/update constructs it is an error.
        raise FortranSyntaxError(
            "collapse is only valid on a work-sharing loop directive "
            f"(got {directive.construct!r})",
            line,
        )
    return directive


def print_directive(directive: Directive) -> str:
    """Render a :class:`Directive` back to its canonical clause text
    (without the ``!$omp`` sentinel).  ``parse_directive`` of the result
    reproduces the directive structurally — the round-trip property the
    frontend fuzz suite checks."""
    words: list[str] = []
    if directive.is_end:
        words.append("end")
    words.append(directive.construct)
    if directive.construct == "target" and directive.parallel_do:
        words.append("parallel do")
    if directive.simd:
        words.append("simd")
    clauses = directive.clauses
    parts: list[str] = []
    for clause in clauses.maps:
        parts.append(f"map({clause.map_type}: {', '.join(clause.vars)})")
    for red in clauses.reductions:
        parts.append(f"reduction({red.operator}: {', '.join(red.vars)})")
    if clauses.simdlen is not None:
        parts.append(f"simdlen({clauses.simdlen})")
    if clauses.num_threads is not None:
        parts.append(f"num_threads({clauses.num_threads})")
    if clauses.device is not None:
        parts.append(f"device({clauses.device})")
    if clauses.collapse is not None:
        parts.append(f"collapse({clauses.collapse})")
    if directive.to_vars:
        parts.append(f"to({', '.join(directive.to_vars)})")
    if directive.from_vars:
        parts.append(f"from({', '.join(directive.from_vars)})")
    return " ".join([" ".join(words), *parts]).strip()

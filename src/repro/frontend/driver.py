"""Frontend driver: Fortran source -> FIR module -> core-dialect module.

This is the "Flang + [3]" half of the paper's Figure 1/Figure 2 flow.
Both entry points accept an optional
:class:`~repro.ir.pass_manager.Instrumentation`: the frontend counts its
compiles (``frontend_compiles`` — the artifact-reuse evidence the DSE
sweep asserts on) and records the ``fir+omp``/``core+omp`` stage
snapshots when IR capture is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import builtin
from repro.frontend.fir_to_core import FirToCorePass
from repro.frontend.lowering import lower_program
from repro.frontend.parser import parse_source
from repro.frontend.sema import ProgramInfo, analyze
from repro.ir.pass_manager import Instrumentation, PassManager
from repro.ir.verifier import verify
from repro.reliability.errors import FrontendError, ReproError, wrap_error


@dataclass
class FrontendResult:
    """Output of the frontend: the module plus stage snapshots."""

    module: builtin.ModuleOp
    program_info: ProgramInfo
    stages: list[tuple[str, str]] = field(default_factory=list)


def _stage(name: str, fn, *args):
    """Run one frontend stage, adopting failures into the taxonomy.

    The adopted error still satisfies ``isinstance`` for its original
    class (``FortranSyntaxError``, ``SemanticError``, ...), and the
    ``from error`` chain keeps the originating source line/traceback.
    """
    try:
        return fn(*args)
    except ReproError:
        raise  # already carries stage context
    except Exception as error:
        raise wrap_error(
            error, FrontendError, context=f"frontend:{name}"
        ) from error


def compile_to_fir(
    source: str, *, instrumentation: Instrumentation | None = None
) -> FrontendResult:
    """Parse + analyze + lower Fortran source to the FIR+omp module."""
    tree = _stage("parse", parse_source, source)
    info = _stage("sema", analyze, tree)
    module = _stage("lower", lower_program, info)
    _stage("verify", verify, module)
    result = FrontendResult(module=module, program_info=info)
    if instrumentation is not None:
        snap = instrumentation.snapshot("fir+omp", module)
        if snap is not None:
            result.stages.append((snap.name, snap.ir))
    return result


def compile_to_core(
    source: str, *, instrumentation: Instrumentation | None = None
) -> FrontendResult:
    """Full frontend path: Fortran -> FIR -> core dialects (+omp)."""
    result = compile_to_fir(source, instrumentation=instrumentation)
    pm = PassManager(verify_each=True, instrumentation=instrumentation)
    pm.add(FirToCorePass())
    _stage("fir-to-core", pm.run, result.module)
    if instrumentation is not None:
        instrumentation.count("frontend_compiles")
        snap = instrumentation.snapshot("core+omp", result.module)
        if snap is not None:
            result.stages.append((snap.name, snap.ir))
    return result

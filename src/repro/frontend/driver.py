"""Frontend driver: Fortran source -> FIR module -> core-dialect module.

This is the "Flang + [3]" half of the paper's Figure 1/Figure 2 flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import builtin
from repro.frontend.fir_to_core import FirToCorePass
from repro.frontend.lowering import lower_program
from repro.frontend.parser import parse_source
from repro.frontend.sema import ProgramInfo, analyze
from repro.ir.pass_manager import PassManager, PassTrace
from repro.ir.verifier import verify


@dataclass
class FrontendResult:
    """Output of the frontend: the module plus stage snapshots."""

    module: builtin.ModuleOp
    program_info: ProgramInfo
    stages: list[tuple[str, str]] = field(default_factory=list)


def compile_to_fir(
    source: str, *, capture_stages: bool = False
) -> FrontendResult:
    """Parse + analyze + lower Fortran source to the FIR+omp module."""
    from repro.ir.printer import print_op

    tree = parse_source(source)
    info = analyze(tree)
    module = lower_program(info)
    verify(module)
    stages = []
    if capture_stages:
        stages.append(("fir+omp", print_op(module)))
    return FrontendResult(module=module, program_info=info, stages=stages)


def compile_to_core(
    source: str, *, capture_stages: bool = False
) -> FrontendResult:
    """Full frontend path: Fortran -> FIR -> core dialects (+omp)."""
    from repro.ir.printer import print_op

    result = compile_to_fir(source, capture_stages=capture_stages)
    pm = PassManager(verify_each=True)
    pm.add(FirToCorePass())
    pm.run(result.module)
    if capture_stages:
        result.stages.append(("core+omp", print_op(result.module)))
    return result

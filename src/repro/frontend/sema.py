"""Semantic analysis: symbol tables, type checking, intrinsic resolution.

``implicit none`` semantics are enforced: every referenced name must be
declared (or be a dummy argument / intrinsic).  Parameter constants are
folded here so array extents and OpenMP clauses can use them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    CompilationUnit,
    DoLoop,
    Expr,
    IfBlock,
    IntLit,
    IntrinsicCall,
    LogicalLit,
    OmpTarget,
    OmpTargetData,
    OmpTargetEnterData,
    OmpTargetExitData,
    OmpTargetUpdate,
    PrintStmt,
    RealLit,
    StringLit,
    SubprogramUnit,
    TypeSpec,
    UnOp,
    VarRef,
)
from repro.frontend.lexer import FortranSyntaxError


class SemanticError(FortranSyntaxError):
    """Raised on semantic violations (undeclared names, rank mismatch...)."""


#: Intrinsics the lowering understands.
INTRINSICS = {
    "mod", "min", "max", "abs", "sqrt", "real", "int", "dble", "float",
    "size", "exp", "log", "sin", "cos",
}


@dataclass
class Symbol:
    name: str
    type: TypeSpec
    dims: list[Expr] = field(default_factory=list)
    is_dummy: bool = False
    intent: Optional[str] = None
    is_parameter: bool = False
    param_value: Optional[int | float] = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


@dataclass
class UnitInfo:
    unit: SubprogramUnit
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def symbol(self, name: str, line: int = -1) -> Symbol:
        if name not in self.symbols:
            raise SemanticError(f"undeclared identifier {name!r}", line)
        return self.symbols[name]


@dataclass
class ProgramInfo:
    units: dict[str, UnitInfo] = field(default_factory=dict)

    def main(self) -> UnitInfo:
        for info in self.units.values():
            if info.unit.kind == "program":
                return info
        raise SemanticError("no program unit found", 1)


def _fold_const(expr: Expr, symbols: dict[str, Symbol]) -> Optional[int | float]:
    """Fold a compile-time constant expression (parameters + literals)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, RealLit):
        return expr.value
    if isinstance(expr, VarRef):
        sym = symbols.get(expr.name)
        if sym is not None and sym.is_parameter:
            return sym.param_value
        return None
    if isinstance(expr, UnOp) and expr.op == "-":
        value = _fold_const(expr.operand, symbols)
        return None if value is None else -value
    if isinstance(expr, BinOp):
        lhs = _fold_const(expr.lhs, symbols)
        rhs = _fold_const(expr.rhs, symbols)
        if lhs is None or rhs is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
            "**": lambda a, b: a**b,
        }
        if expr.op in ops:
            return ops[expr.op](lhs, rhs)
    return None


class Analyzer:
    def __init__(self, compilation_unit: CompilationUnit):
        self.cu = compilation_unit
        self.info = ProgramInfo()

    def analyze(self) -> ProgramInfo:
        for unit in self.cu.units:
            self.info.units[unit.name] = self._analyze_unit(unit)
        # Check call-site arity against callee signatures.
        for info in self.info.units.values():
            self._check_calls(info)
        return self.info

    # -- per-unit -------------------------------------------------------------------

    def _analyze_unit(self, unit: SubprogramUnit) -> UnitInfo:
        info = UnitInfo(unit=unit)
        declared: set[str] = set()
        for decl in unit.decls:
            if decl.name in declared:
                raise SemanticError(
                    f"duplicate declaration of {decl.name!r}", decl.line
                )
            declared.add(decl.name)
            sym = Symbol(
                name=decl.name,
                type=decl.type,
                dims=list(decl.dims),
                is_dummy=decl.name in unit.dummy_args,
                intent=decl.intent,
                is_parameter=decl.is_parameter,
            )
            if decl.is_parameter:
                if decl.init is None:
                    raise SemanticError(
                        f"parameter {decl.name!r} lacks an initializer",
                        decl.line,
                    )
                value = _fold_const(decl.init, info.symbols)
                if value is None:
                    raise SemanticError(
                        f"parameter {decl.name!r} initializer is not constant",
                        decl.line,
                    )
                if decl.type.base == "integer":
                    value = int(value)
                sym.param_value = value
            info.symbols[decl.name] = sym
        for arg in unit.dummy_args:
            if arg not in info.symbols:
                raise SemanticError(
                    f"dummy argument {arg!r} of {unit.name!r} is not declared",
                    unit.line,
                )
        # Array extents must be constants or scalar integer dummies/locals.
        for sym in info.symbols.values():
            for dim in sym.dims:
                self._check_extent(dim, info, sym)
        self._walk_stmts(unit.body, info)
        return info

    def _check_extent(self, dim: Expr, info: UnitInfo, sym: Symbol) -> None:
        if _fold_const(dim, info.symbols) is not None:
            return
        for ref in _collect_var_refs(dim):
            extent_sym = info.symbol(ref.name, ref.line)
            if extent_sym.is_array or extent_sym.type.base != "integer":
                raise SemanticError(
                    f"array extent of {sym.name!r} must be scalar integer",
                    ref.line,
                )

    # -- statement walk -----------------------------------------------------------------

    def _walk_stmts(self, stmts: list, info: UnitInfo) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, info)

    def _walk_stmt(self, stmt, info: UnitInfo) -> None:
        if isinstance(stmt, Assign):
            self._resolve_expr(stmt.target, info, is_target=True)
            stmt.value = self._resolve_expr(stmt.value, info)
            if isinstance(stmt.target, VarRef):
                sym = info.symbol(stmt.target.name, stmt.line)
                if sym.is_parameter:
                    raise SemanticError(
                        f"cannot assign to parameter {sym.name!r}", stmt.line
                    )
                if sym.is_array:
                    raise SemanticError(
                        "whole-array assignment is not supported "
                        f"({sym.name!r})",
                        stmt.line,
                    )
        elif isinstance(stmt, DoLoop):
            sym = info.symbol(stmt.var, stmt.line)
            if sym.type.base != "integer" or sym.is_array:
                raise SemanticError(
                    f"do variable {stmt.var!r} must be a scalar integer",
                    stmt.line,
                )
            stmt.start = self._resolve_expr(stmt.start, info)
            stmt.stop = self._resolve_expr(stmt.stop, info)
            if stmt.step is not None:
                stmt.step = self._resolve_expr(stmt.step, info)
            self._walk_stmts(stmt.body, info)
        elif isinstance(stmt, IfBlock):
            stmt.conditions = [
                self._resolve_expr(c, info) for c in stmt.conditions
            ]
            for body in stmt.bodies:
                self._walk_stmts(body, info)
            self._walk_stmts(stmt.else_body, info)
        elif isinstance(stmt, CallStmt):
            # Whole arrays may be passed as actual arguments.
            stmt.args = [
                self._resolve_expr(a, info, is_target=True) for a in stmt.args
            ]
        elif isinstance(stmt, PrintStmt):
            stmt.items = [self._resolve_expr(item, info) for item in stmt.items]
        elif isinstance(stmt, (OmpTargetData, OmpTarget)):
            self._check_clause_vars(stmt, info)
            self._walk_stmts(stmt.body, info)
        elif isinstance(stmt, (OmpTargetEnterData, OmpTargetExitData)):
            self._check_clause_vars(stmt, info)
        elif isinstance(stmt, OmpTargetUpdate):
            for name in stmt.to_vars + stmt.from_vars:
                info.symbol(name, stmt.line)

    def _check_clause_vars(self, stmt, info: UnitInfo) -> None:
        clauses = stmt.clauses
        for map_clause in clauses.maps:
            for name in map_clause.vars:
                info.symbol(name, stmt.line)
        for red in clauses.reductions:
            for name in red.vars:
                sym = info.symbol(name, stmt.line)
                if sym.is_array:
                    raise SemanticError(
                        f"reduction variable {name!r} must be scalar",
                        stmt.line,
                    )

    # -- expressions -----------------------------------------------------------------------

    def _resolve_expr(self, expr: Expr, info: UnitInfo, is_target: bool = False) -> Expr:
        """Resolve names, fold intrinsic calls, type-check ranks.

        Returns a (possibly rewritten) expression: ArrayRef nodes whose name
        is an intrinsic become IntrinsicCall nodes.
        """
        if isinstance(expr, (IntLit, RealLit, LogicalLit, StringLit)):
            return expr
        if isinstance(expr, VarRef):
            sym = info.symbol(expr.name, expr.line)
            if sym.is_array and not is_target:
                raise SemanticError(
                    f"whole-array reference {expr.name!r} is not supported in "
                    "expressions",
                    expr.line,
                )
            return expr
        if isinstance(expr, ArrayRef):
            if expr.name not in info.symbols:
                if expr.name in INTRINSICS:
                    # size() takes a whole array; other intrinsics take
                    # scalar expressions.
                    allow_array = expr.name == "size"
                    call = IntrinsicCall(
                        line=expr.line,
                        name=expr.name,
                        args=[
                            self._resolve_expr(a, info, is_target=allow_array)
                            for a in expr.indices
                        ],
                    )
                    return call
                raise SemanticError(
                    f"undeclared identifier {expr.name!r}", expr.line
                )
            sym = info.symbols[expr.name]
            if not sym.is_array:
                raise SemanticError(
                    f"{expr.name!r} is not an array but is subscripted",
                    expr.line,
                )
            if len(expr.indices) != sym.rank:
                raise SemanticError(
                    f"{expr.name!r} has rank {sym.rank} but is subscripted "
                    f"with {len(expr.indices)} indices",
                    expr.line,
                )
            expr.indices = [self._resolve_expr(i, info) for i in expr.indices]
            return expr
        if isinstance(expr, UnOp):
            expr.operand = self._resolve_expr(expr.operand, info)
            return expr
        if isinstance(expr, BinOp):
            expr.lhs = self._resolve_expr(expr.lhs, info)
            expr.rhs = self._resolve_expr(expr.rhs, info)
            return expr
        if isinstance(expr, IntrinsicCall):
            expr.args = [self._resolve_expr(a, info) for a in expr.args]
            return expr
        raise SemanticError(
            f"unhandled expression node {type(expr).__name__}", expr.line
        )

    # -- inter-unit checks ------------------------------------------------------------------

    def _check_calls(self, info: UnitInfo) -> None:
        def walk(stmts: list) -> None:
            for stmt in stmts:
                if isinstance(stmt, CallStmt):
                    callee = self.info.units.get(stmt.name)
                    if callee is None:
                        raise SemanticError(
                            f"call to unknown subroutine {stmt.name!r}",
                            stmt.line,
                        )
                    expected = len(callee.unit.dummy_args)
                    if len(stmt.args) != expected:
                        raise SemanticError(
                            f"{stmt.name!r} expects {expected} arguments, "
                            f"got {len(stmt.args)}",
                            stmt.line,
                        )
                elif isinstance(stmt, DoLoop):
                    walk(stmt.body)
                elif isinstance(stmt, IfBlock):
                    for body in stmt.bodies:
                        walk(body)
                    walk(stmt.else_body)
                elif isinstance(stmt, (OmpTarget, OmpTargetData)):
                    walk(stmt.body)

        walk(info.unit.body)


def _collect_var_refs(expr: Expr) -> list[VarRef]:
    refs: list[VarRef] = []

    def visit(e: Expr) -> None:
        if isinstance(e, VarRef):
            refs.append(e)
        elif isinstance(e, ArrayRef):
            for i in e.indices:
                visit(i)
        elif isinstance(e, BinOp):
            visit(e.lhs)
            visit(e.rhs)
        elif isinstance(e, UnOp):
            visit(e.operand)
        elif isinstance(e, IntrinsicCall):
            for a in e.args:
                visit(a)

    visit(expr)
    return refs


def analyze(compilation_unit: CompilationUnit) -> ProgramInfo:
    """Run semantic analysis over a parsed compilation unit."""
    return Analyzer(compilation_unit).analyze()


def expr_type(expr: Expr, symbols: dict[str, Symbol]) -> TypeSpec:
    """Static type of an expression (integer/real with kind; logical)."""
    if isinstance(expr, IntLit):
        return TypeSpec("integer", 4)
    if isinstance(expr, RealLit):
        return TypeSpec("real", expr.kind)
    if isinstance(expr, LogicalLit):
        return TypeSpec("logical", 4)
    if isinstance(expr, VarRef):
        return symbols[expr.name].type
    if isinstance(expr, ArrayRef):
        return symbols[expr.name].type
    if isinstance(expr, UnOp):
        if expr.op == ".not.":
            return TypeSpec("logical", 4)
        return expr_type(expr.operand, symbols)
    if isinstance(expr, BinOp):
        if expr.op in ("==", "/=", "<", "<=", ">", ">=", ".and.", ".or."):
            return TypeSpec("logical", 4)
        lhs = expr_type(expr.lhs, symbols)
        rhs = expr_type(expr.rhs, symbols)
        if lhs.base == "real" or rhs.base == "real":
            kind = max(
                lhs.kind if lhs.base == "real" else 0,
                rhs.kind if rhs.base == "real" else 0,
            )
            return TypeSpec("real", max(kind, 4))
        return TypeSpec("integer", max(lhs.kind, rhs.kind))
    if isinstance(expr, IntrinsicCall):
        if expr.name in ("sqrt", "exp", "log", "sin", "cos"):
            return expr_type(expr.args[0], symbols)
        if expr.name == "abs":
            return expr_type(expr.args[0], symbols)
        if expr.name in ("real", "float"):
            return TypeSpec("real", 4)
        if expr.name == "dble":
            return TypeSpec("real", 8)
        if expr.name in ("int", "size", "mod"):
            if expr.name == "mod":
                return expr_type(expr.args[0], symbols)
            return TypeSpec("integer", 4)
        if expr.name in ("min", "max"):
            return expr_type(expr.args[0], symbols)
    raise SemanticError(
        f"cannot type expression {type(expr).__name__}", expr.line
    )

"""Fortran + OpenMP frontend (the Flang stand-in).

Public entry points:

* :func:`repro.frontend.driver.compile_to_fir` — source -> FIR+omp module
* :func:`repro.frontend.driver.compile_to_core` — source -> core dialects
"""

from repro.frontend.driver import FrontendResult, compile_to_core, compile_to_fir
from repro.frontend.lexer import FortranSyntaxError, tokenize
from repro.frontend.parser import parse_source
from repro.frontend.sema import ProgramInfo, SemanticError, analyze

__all__ = [
    "FrontendResult",
    "compile_to_core",
    "compile_to_fir",
    "FortranSyntaxError",
    "tokenize",
    "parse_source",
    "ProgramInfo",
    "SemanticError",
    "analyze",
]

"""FIR -> core-dialect lowering (the work of reference [3], Figure 1).

Rewrites the Flang-style FIR ops into ``memref``/``scf``/``arith``:

* ``fir.alloca`` -> ``memref.alloca``
* ``fir.declare`` -> forwarded (erased)
* ``fir.load``/``fir.store`` -> rank-0 ``memref.load``/``memref.store``
* ``fir.array_load``/``fir.array_store`` -> index_cast + subi(1) +
  ``memref.load``/``memref.store`` (Fortran 1-based -> 0-based, the
  ``arith.subi`` visible in the paper's Listing 4)
* ``fir.do_loop`` -> ``scf.for`` with ub+1 (inclusive -> exclusive)
* ``fir.if`` -> ``scf.if``; ``fir.result`` -> ``scf.yield``
* ``fir.convert`` -> the matching ``arith`` cast

``omp`` operations pass through untouched; ``fir.print`` survives as the
host I/O op (it is host-only and printed by the host code generator).
"""

from __future__ import annotations

from repro.dialects import arith, fir, memref, scf
from repro.ir.core import Operation, Region, SSAValue
from repro.ir.pass_manager import ModulePass, register_pass
from repro.ir.rewriting import (
    GreedyPatternRewriter,
    PatternRewriter,
    RewritePattern,
)
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    index,
)


class LowerAlloca(RewritePattern):
    op_name = "fir.alloca"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        ty = op.results[0].type
        assert isinstance(ty, MemRefType)
        rewriter.replace_matched_op(memref.Alloca(ty, list(op.operands)))


class ForwardDeclare(RewritePattern):
    op_name = "fir.declare"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        rewriter.replace_all_uses_with(op.results[0], op.operands[0])
        rewriter.erase_matched_op()


class LowerLoad(RewritePattern):
    op_name = "fir.load"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        rewriter.replace_matched_op(memref.Load(op.operands[0], []))


class LowerStore(RewritePattern):
    op_name = "fir.store"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        rewriter.replace_matched_op(memref.Store(op.operands[0], op.operands[1], []))


def _zero_based_indices(
    op: Operation, indices: tuple[SSAValue, ...], rewriter: PatternRewriter
) -> list[SSAValue]:
    """Convert Fortran 1-based i32 subscripts to 0-based index values."""
    one = arith.Constant.index(1)
    rewriter.insert_op_before_matched(one)
    result = []
    for idx in indices:
        if not isinstance(idx.type, IndexType):
            cast = arith.IndexCast(idx, index)
            rewriter.insert_op_before_matched(cast)
            idx = cast.results[0]
        sub = arith.SubI(idx, one.results[0])
        rewriter.insert_op_before_matched(sub)
        result.append(sub.results[0])
    return result


class LowerArrayLoad(RewritePattern):
    op_name = "fir.array_load"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        indices = _zero_based_indices(op, op.operands[1:], rewriter)
        rewriter.replace_matched_op(memref.Load(op.operands[0], indices))


class LowerArrayStore(RewritePattern):
    op_name = "fir.array_store"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        indices = _zero_based_indices(op, op.operands[2:], rewriter)
        rewriter.replace_matched_op(
            memref.Store(op.operands[0], op.operands[1], indices)
        )


class LowerDoLoop(RewritePattern):
    op_name = "fir.do_loop"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        assert isinstance(op, fir.DoLoopOp)
        one = arith.Constant.index(1)
        ub_exclusive = arith.AddI(op.ub, one.results[0])
        rewriter.insert_op_before_matched(one, ub_exclusive)
        body: Region = op.regions[0]
        op.regions.remove(body)
        body.parent = None
        # Replace the fir.result terminator with scf.yield.
        block = body.block
        last = block.last_op
        if isinstance(last, fir.ResultOp):
            last.erase()
        block.add_op(scf.Yield())
        # The block (and its induction-variable argument, with name hint)
        # is transplanted wholesale into the scf.for.
        new_loop = scf.For(op.lb, ub_exclusive.results[0], op.step, [], body)
        rewriter.replace_matched_op(new_loop, new_results=[])


class LowerIf(RewritePattern):
    op_name = "fir.if"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        then_region, else_region = op.regions[0], op.regions[1]
        op.regions.clear()
        then_region.parent = None
        else_region.parent = None
        for region in (then_region, else_region):
            block = region.block
            last = block.last_op
            if isinstance(last, fir.ResultOp):
                last.erase()
            block.add_op(scf.Yield())
        new_if = scf.If(op.operands[0], [], then_region, else_region)
        rewriter.replace_matched_op(new_if, new_results=[])


class StripStrayResult(RewritePattern):
    """``fir.result`` ops left in regions already converted."""

    op_name = "fir.result"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        rewriter.replace_matched_op(scf.Yield(op.operands), new_results=[])


class LowerConvert(RewritePattern):
    op_name = "fir.convert"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        source = op.operands[0]
        src, dst = source.type, op.results[0].type
        if src == dst:
            rewriter.replace_all_uses_with(op.results[0], source)
            rewriter.erase_matched_op()
            return
        new_op: Operation
        if isinstance(src, IndexType) and isinstance(dst, IntegerType):
            new_op = arith.IndexCast(source, dst)
        elif isinstance(src, IntegerType) and isinstance(dst, IndexType):
            new_op = arith.IndexCast(source, dst)
        elif isinstance(src, IntegerType) and isinstance(dst, FloatType):
            new_op = arith.SIToFP(source, dst)
        elif isinstance(src, IndexType) and isinstance(dst, FloatType):
            as_int = arith.IndexCast(source, IntegerType(64))
            rewriter.insert_op_before_matched(as_int)
            new_op = arith.SIToFP(as_int.results[0], dst)
        elif isinstance(src, FloatType) and isinstance(dst, IntegerType):
            new_op = arith.FPToSI(source, dst)
        elif isinstance(src, FloatType) and isinstance(dst, FloatType):
            new_op = (
                arith.ExtF(source, dst)
                if dst.width > src.width
                else arith.TruncF(source, dst)
            )
        elif isinstance(src, IntegerType) and isinstance(dst, IntegerType):
            new_op = (
                arith.ExtSI(source, dst)
                if dst.width > src.width
                else arith.TruncI(source, dst)
            )
        else:
            raise NotImplementedError(
                f"fir.convert {src.print()} -> {dst.print()}"
            )
        rewriter.replace_matched_op(new_op)


FIR_TO_CORE_PATTERNS = (
    LowerAlloca,
    ForwardDeclare,
    LowerLoad,
    LowerStore,
    LowerArrayLoad,
    LowerArrayStore,
    LowerDoLoop,
    LowerIf,
    LowerConvert,
)


@register_pass
class FirToCorePass(ModulePass):
    """Lower the FIR dialect (except host-only ``fir.print``) to core
    dialects."""

    name = "fir-to-core"

    def apply(self, module: Operation) -> None:
        patterns = [cls() for cls in FIR_TO_CORE_PATTERNS]
        GreedyPatternRewriter(patterns, max_iterations=256).rewrite(module)
        remaining = [
            op.name
            for op in module.walk()
            if op.name.startswith("fir.") and op.name != "fir.print"
        ]
        if remaining:
            raise NotImplementedError(
                f"fir-to-core left FIR ops behind: {sorted(set(remaining))}"
            )

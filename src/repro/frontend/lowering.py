"""AST -> FIR+omp lowering (the Flang stage of Figure 1).

Every Fortran variable gets storage (``fir.alloca`` + ``fir.declare``,
dummy arguments arrive as memref block arguments); do-loop induction
variables are promoted to SSA values (mem2reg-style, as Flang's
optimisation passes do).  OpenMP constructs lower onto the ``omp``
dialect:

* ``target data`` -> ``omp.target_data`` with ``omp.map_info`` operands;
* ``target [parallel do [simd]]`` -> ``omp.target`` whose isolated region
  receives one block argument per mapped variable, containing
  ``omp.parallel``/``omp.wsloop``/``omp.simd``/``omp.loop_nest``;
* variables referenced but not explicitly mapped get implicit
  ``tofrom,implicit`` (arrays) / ``to,implicit`` (read-only scalars) maps —
  the behaviour the paper's Listing 1 discussion describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dialects import arith, builtin, fir, func, math as math_d, memref, omp
from repro.frontend import ast_nodes as ast
from repro.frontend.sema import (
    ProgramInfo,
    SemanticError,
    Symbol,
    UnitInfo,
    _fold_const,
)
from repro.ir.builder import Builder
from repro.ir.core import SSAValue
from repro.ir.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IntegerType,
    MemRefType,
    TypeAttribute,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)


class LoweringError(SemanticError):
    """Raised when a construct cannot be lowered."""


def element_type(spec: ast.TypeSpec) -> TypeAttribute:
    if spec.base == "real":
        return f64 if spec.kind == 8 else f32
    if spec.base == "integer":
        return i64 if spec.kind == 8 else i32
    if spec.base == "logical":
        return i1
    raise LoweringError(f"unsupported type {spec.base}")


def storage_type(sym: Symbol, symbols: dict[str, Symbol]) -> MemRefType:
    """Memref type of a variable's storage (rank-0 for scalars)."""
    elem = element_type(sym.type)
    shape = []
    for dim in sym.dims:
        const = _fold_const(dim, symbols)
        shape.append(int(const) if const is not None else DYNAMIC)
    return MemRefType(elem, shape)


@dataclass
class _Scope:
    """Lexically scoped name bindings active during lowering."""

    storage: dict[str, SSAValue] = field(default_factory=dict)
    #: SSA value overrides (promoted do-variables): name -> i32 value
    overrides: dict[str, SSAValue] = field(default_factory=dict)


class UnitLowering:
    """Lowers one program/subroutine unit into a ``func.func``."""

    def __init__(self, info: UnitInfo, program: ProgramInfo):
        self.info = info
        self.program = program
        self.scope = _Scope()
        self.builder: Builder = None  # type: ignore[assignment]
        self._temp_counter = 0

    # -- entry ---------------------------------------------------------------------

    def lower(self) -> func.FuncOp:
        unit = self.info.unit
        arg_types = [
            storage_type(self.info.symbols[name], self.info.symbols)
            for name in unit.dummy_args
        ]
        fn = func.FuncOp(unit.name, FunctionType(arg_types, []))
        self.builder = Builder.at_end(fn.body)
        for name, block_arg in zip(unit.dummy_args, fn.body.args):
            block_arg.name_hint = name
            declared = self.builder.insert(
                fir.DeclareOp(block_arg, f"{unit.name}E{name}")
            ).results[0]
            declared.name_hint = name
            self.scope.storage[name] = declared
        for decl_name, sym in self.info.symbols.items():
            if sym.is_dummy or sym.is_parameter:
                continue
            sym_type = storage_type(sym, self.info.symbols)
            dynamic_sizes = [
                self.to_index(self.lower_expr(dim))
                for dim, extent in zip(sym.dims, sym_type.shape)
                if extent == DYNAMIC
            ]
            alloca = self.builder.insert(
                fir.AllocaOp(sym_type, decl_name, dynamic_sizes)
            ).results[0]
            declared = self.builder.insert(
                fir.DeclareOp(alloca, f"{unit.name}E{decl_name}")
            ).results[0]
            declared.name_hint = decl_name
            self.scope.storage[decl_name] = declared
        # Non-parameter initializers.
        for decl in unit.decls:
            if decl.init is not None and not decl.is_parameter:
                value = self.lower_expr(decl.init)
                value = self.convert(value, element_type(decl.type))
                self.builder.insert(
                    fir.StoreOp(value, self.scope.storage[decl.name])
                )
        self.lower_stmts(unit.body)
        self.builder.insert(func.ReturnOp())
        return fn

    # -- helpers ----------------------------------------------------------------------

    def constant_index(self, value: int) -> SSAValue:
        return self.builder.insert(arith.Constant.index(value)).results[0]

    def constant_i32(self, value: int) -> SSAValue:
        return self.builder.insert(arith.Constant.int(value, 32)).results[0]

    def convert(self, value: SSAValue, target: TypeAttribute) -> SSAValue:
        if value.type == target:
            return value
        return self.builder.insert(fir.ConvertOp(value, target)).results[0]

    def to_index(self, value: SSAValue) -> SSAValue:
        return self.convert(value, index)

    def symbol(self, name: str, line: int = -1) -> Symbol:
        return self.info.symbol(name, line)

    def _temp_name(self, stem: str) -> str:
        self._temp_counter += 1
        return f"{stem}.tmp{self._temp_counter}"

    # -- statements ----------------------------------------------------------------------

    def lower_stmts(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt)

    def _enter(self, block) -> Builder:
        """Builder at the end of ``block`` inheriting the current loc."""
        nested = Builder.at_end(block)
        nested.loc = self.builder.loc
        return nested

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if stmt.line > 0:
            self.builder.loc = stmt.line
        if isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.DoLoop):
            self.lower_do(stmt)
        elif isinstance(stmt, ast.IfBlock):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self.lower_call(stmt)
        elif isinstance(stmt, ast.PrintStmt):
            self.lower_print(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            pass  # unit epilogue emits func.return; mid-body return is a no-op
        elif isinstance(stmt, (ast.ExitStmt, ast.CycleStmt)):
            raise LoweringError("exit/cycle are not supported", stmt.line)
        elif isinstance(stmt, ast.OmpTargetData):
            self.lower_target_data(stmt)
        elif isinstance(stmt, ast.OmpTargetEnterData):
            maps = self.emit_clause_maps(stmt.clauses, default_type="to")
            self.builder.insert(omp.TargetEnterDataOp(maps))
        elif isinstance(stmt, ast.OmpTargetExitData):
            maps = self.emit_clause_maps(stmt.clauses, default_type="from")
            self.builder.insert(omp.TargetExitDataOp(maps))
        elif isinstance(stmt, ast.OmpTargetUpdate):
            maps = [self.emit_map_info(v, "to") for v in stmt.to_vars]
            maps += [self.emit_map_info(v, "from") for v in stmt.from_vars]
            self.builder.insert(omp.TargetUpdateOp(maps))
        elif isinstance(stmt, ast.OmpTarget):
            if stmt.is_target:
                self.lower_target(stmt)
            else:
                self.lower_host_parallel_do(stmt)
        else:
            raise LoweringError(
                f"unsupported statement {type(stmt).__name__}", stmt.line
            )

    def lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            sym = self.symbol(target.name, stmt.line)
            value = self.lower_expr(stmt.value)
            value = self.convert(value, element_type(sym.type))
            if target.name in self.scope.overrides:
                raise LoweringError(
                    f"assignment to active do-variable {target.name!r}",
                    stmt.line,
                )
            self.builder.insert(
                fir.StoreOp(value, self.scope.storage[target.name])
            )
        elif isinstance(target, ast.ArrayRef):
            sym = self.symbol(target.name, stmt.line)
            value = self.lower_expr(stmt.value)
            value = self.convert(value, element_type(sym.type))
            indices = [
                self.convert(self.lower_expr(i), i32) for i in target.indices
            ]
            self.builder.insert(
                fir.ArrayStoreOp(value, self.scope.storage[target.name], indices)
            )
        else:
            raise LoweringError("bad assignment target", stmt.line)

    def lower_do(self, stmt: ast.DoLoop) -> None:
        lb = self.to_index(self.lower_expr(stmt.start))
        ub = self.to_index(self.lower_expr(stmt.stop))
        step = (
            self.to_index(self.lower_expr(stmt.step))
            if stmt.step is not None
            else self.constant_index(1)
        )
        loop = self.builder.insert(fir.DoLoopOp(lb, ub, step))
        loop.induction_var.name_hint = stmt.var
        saved = self.builder
        self.builder = self._enter(loop.body)
        iv_i32 = self.convert(loop.induction_var, i32)
        previous = self.scope.overrides.get(stmt.var)
        self.scope.overrides[stmt.var] = iv_i32
        try:
            self.lower_stmts(stmt.body)
        finally:
            if previous is None:
                del self.scope.overrides[stmt.var]
            else:
                self.scope.overrides[stmt.var] = previous
            self.builder = saved

    def lower_if(self, stmt: ast.IfBlock, branch: int = 0) -> None:
        cond = self.convert(self.lower_expr(stmt.conditions[branch]), i1)
        if_op = self.builder.insert(fir.IfOp(cond))
        saved = self.builder
        self.builder = self._enter(if_op.then_block)
        self.lower_stmts(stmt.bodies[branch])
        self.builder = self._enter(if_op.else_block)
        if branch + 1 < len(stmt.conditions):
            self.lower_if(stmt, branch + 1)
        else:
            self.lower_stmts(stmt.else_body)
        self.builder = saved

    def lower_call(self, stmt: ast.CallStmt) -> None:
        callee = self.program.units.get(stmt.name)
        if callee is None:
            raise LoweringError(f"unknown subroutine {stmt.name!r}", stmt.line)
        arg_values: list[SSAValue] = []
        for actual, formal_name in zip(stmt.args, callee.unit.dummy_args):
            formal = callee.symbols[formal_name]
            formal_type = storage_type(formal, callee.symbols)
            if isinstance(actual, ast.VarRef) and actual.name in self.scope.storage:
                value = self.scope.storage[actual.name]
                if actual.name in self.scope.overrides:
                    # Promoted do-variable: materialize a temporary.
                    value = self._materialize_temp(
                        self.scope.overrides[actual.name], actual.name
                    )
            else:
                scalar = self.lower_expr(actual)
                scalar = self.convert(scalar, formal_type.element_type)
                value = self._materialize_temp(scalar, self._temp_name(stmt.name))
            if value.type != formal_type:
                assert isinstance(formal_type, MemRefType)
                value = self.builder.insert(
                    memref.Cast(value, formal_type)
                ).results[0]
            arg_values.append(value)
        self.builder.insert(func.CallOp(stmt.name, arg_values))

    def _materialize_temp(self, value: SSAValue, stem: str) -> SSAValue:
        temp = self.builder.insert(
            fir.AllocaOp(MemRefType(value.type, []), self._temp_name(stem))
        ).results[0]
        self.builder.insert(fir.StoreOp(value, temp))
        return temp

    def lower_print(self, stmt: ast.PrintStmt) -> None:
        labels: list[str] = []
        values: list[SSAValue] = []
        for item in stmt.items:
            if isinstance(item, ast.StringLit):
                labels.append(item.value)
            else:
                values.append(self.lower_expr(item))
        self.builder.insert(fir.PrintOp(values, " ".join(labels)))

    # -- OpenMP ---------------------------------------------------------------------------

    def emit_map_info(self, name: str, map_type: str) -> SSAValue:
        """Emit ``omp.bounds`` + ``omp.map_info`` for a variable."""
        sym = self.symbol(name)
        if name in self.scope.overrides:
            storage = self._materialize_temp(self.scope.overrides[name], name)
        else:
            storage = self.scope.storage[name]
        bounds: list[SSAValue] = []
        for dim in sym.dims:
            lower = self.constant_index(0)
            const = _fold_const(dim, self.info.symbols)
            if const is not None:
                extent = self.constant_index(int(const))
            else:
                extent = self.to_index(self.lower_expr(dim))
            one = self.constant_index(1)
            upper = self.builder.insert(arith.SubI(extent, one)).results[0]
            bounds.append(
                self.builder.insert(omp.BoundsOp(lower, upper)).results[0]
            )
        info_op = self.builder.insert(
            omp.MapInfoOp(storage, name, map_type, bounds)
        )
        return info_op.results[0]

    def emit_clause_maps(
        self, clauses: ast.OmpClauses, default_type: str
    ) -> list[SSAValue]:
        maps = []
        for clause in clauses.maps:
            for name in clause.vars:
                maps.append(self.emit_map_info(name, clause.map_type))
        return maps

    def lower_target_data(self, stmt: ast.OmpTargetData) -> None:
        maps = self.emit_clause_maps(stmt.clauses, default_type="tofrom")
        op = self.builder.insert(omp.TargetDataOp(maps))
        saved = self.builder
        self.builder = self._enter(op.body)
        self.lower_stmts(stmt.body)
        self.builder.insert(omp.TerminatorOp())
        self.builder = saved

    # data-mapping classification -------------------------------------------------------

    def _classify_target_vars(
        self, stmt: ast.OmpTarget
    ) -> tuple[list[tuple[str, str]], list[str]]:
        """Returns (mapped [(name, map_type)], private scalar names)."""
        explicit: dict[str, str] = {}
        for clause in stmt.clauses.maps:
            for name in clause.vars:
                explicit[name] = clause.map_type
        reduction_names = {
            name for red in stmt.clauses.reductions for name in red.vars
        }
        read, written, loop_vars = _collect_usage(stmt.body)
        mapped: list[tuple[str, str]] = []
        private: list[str] = []
        seen: set[str] = set()
        for name in list(explicit) + sorted((read | written) - set(explicit)):
            if name in seen:
                continue
            seen.add(name)
            if name in loop_vars and name not in explicit:
                continue  # loop variables are private by construction
            sym = self.info.symbols.get(name)
            if sym is None or sym.is_parameter:
                continue  # parameters fold to constants
            if name in explicit:
                mapped.append((name, explicit[name]))
            elif name in reduction_names:
                mapped.append((name, "tofrom,implicit"))
            elif sym.is_array:
                mapped.append((name, "tofrom,implicit"))
            elif name in written:
                private.append(name)
            else:
                mapped.append((name, "to,implicit"))
        return mapped, private

    def lower_target(self, stmt: ast.OmpTarget) -> None:
        mapped, private = self._classify_target_vars(stmt)
        map_values = [
            self.emit_map_info(name, map_type) for name, map_type in mapped
        ]
        # Bounds lowering may have drifted the location to a declaration
        # line; the construct itself belongs to the directive's line.
        if stmt.line > 0:
            self.builder.loc = stmt.line
        target = self.builder.insert(omp.TargetOp(map_values))
        for (name, _), block_arg in zip(mapped, target.body.args):
            block_arg.name_hint = name
        saved_builder = self.builder
        saved_scope = self.scope
        self.scope = _Scope()
        self.builder = self._enter(target.body)
        for (name, _), block_arg in zip(mapped, target.body.args):
            self.scope.storage[name] = block_arg
        for name in private:
            sym = self.info.symbols[name]
            alloca = self.builder.insert(
                fir.AllocaOp(storage_type(sym, self.info.symbols), name)
            ).results[0]
            self.scope.storage[name] = alloca
        try:
            if stmt.parallel_do:
                loop = stmt.body[0]
                assert isinstance(loop, ast.DoLoop)
                self._emit_parallel_loop(stmt, loop)
            else:
                self.lower_stmts(stmt.body)
            self.builder.insert(omp.TerminatorOp())
        finally:
            self.builder = saved_builder
            self.scope = saved_scope

    def lower_host_parallel_do(self, stmt: ast.OmpTarget) -> None:
        loop = stmt.body[0]
        assert isinstance(loop, ast.DoLoop)
        self._emit_parallel_loop(stmt, loop)

    def _collapse_loops(
        self, stmt: ast.OmpTarget, loop: ast.DoLoop
    ) -> list[ast.DoLoop]:
        """The ``collapse(n)``-deep perfect nest rooted at ``loop``."""
        depth = stmt.clauses.collapse or 1
        loops = [loop]
        while len(loops) < depth:
            body = loops[-1].body
            if len(body) != 1 or not isinstance(body[0], ast.DoLoop):
                raise LoweringError(
                    f"collapse({depth}) requires a perfect nest of "
                    f"{depth} do loops",
                    loops[-1].line,
                )
            inner = body[0]
            outer_vars = {nested.var for nested in loops}
            for bound in (inner.start, inner.stop, inner.step):
                if bound is None:
                    continue
                refs, _, _ = _collect_usage(
                    [ast.Assign(line=inner.line,
                                target=ast.VarRef(line=inner.line, name="_"),
                                value=bound)]
                )
                if refs & outer_vars:
                    raise LoweringError(
                        "collapse bounds may not reference outer collapsed "
                        "loop variables",
                        inner.line,
                    )
            loops.append(inner)
        return loops

    def _emit_parallel_loop(self, stmt: ast.OmpTarget, loop: ast.DoLoop) -> None:
        """Emit omp.parallel{omp.wsloop{[omp.simd{]omp.loop_nest}}}.

        ``collapse(n)`` collects the perfect nest of n loops into one
        rank-n ``omp.loop_nest`` (outermost dimension first)."""
        loops = self._collapse_loops(stmt, loop)
        lbs, ubs, steps = [], [], []
        for nest_loop in loops:
            lbs.append(self.to_index(self.lower_expr(nest_loop.start)))
            ubs.append(self.to_index(self.lower_expr(nest_loop.stop)))
            steps.append(
                self.to_index(self.lower_expr(nest_loop.step))
                if nest_loop.step is not None
                else self.constant_index(1)
            )
        if loop.line > 0:
            self.builder.loc = loop.line
        parallel = self.builder.insert(omp.ParallelOp())
        outer_builder = self.builder
        self.builder = self._enter(parallel.body)

        reduction_vars: list[SSAValue] = []
        reduction_kinds: list[str] = []
        kind_of = {"+": "add", "*": "mul", "max": "max", "min": "min"}
        for red in stmt.clauses.reductions:
            for name in red.vars:
                reduction_vars.append(self.scope.storage[name])
                reduction_kinds.append(kind_of[red.operator])

        wsloop = self.builder.insert(
            omp.WsLoopOp(
                reduction_vars=reduction_vars, reduction_kinds=reduction_kinds
            )
        )
        self.builder = self._enter(wsloop.body)
        if stmt.simd:
            simdlen = stmt.clauses.simdlen or 4
            simd_op = self.builder.insert(omp.SimdOp(simdlen))
            self.builder.insert(omp.TerminatorOp())
            self.builder = self._enter(simd_op.body)
        nest = self.builder.insert(omp.LoopNestOp(lbs, ubs, steps, inclusive=True))
        self.builder.insert(omp.TerminatorOp())
        self.builder = self._enter(nest.body)
        previous: dict[str, SSAValue | None] = {}
        for nest_loop, iv in zip(loops, nest.induction_vars):
            iv.name_hint = nest_loop.var
            iv_i32 = self.convert(iv, i32)
            previous[nest_loop.var] = self.scope.overrides.get(nest_loop.var)
            self.scope.overrides[nest_loop.var] = iv_i32
        try:
            self.lower_stmts(loops[-1].body)
            self.builder.insert(omp.YieldOp())
        finally:
            for var, old in previous.items():
                if old is None:
                    self.scope.overrides.pop(var, None)
                else:
                    self.scope.overrides[var] = old
        # close the parallel region
        self.builder = Builder.at_end(parallel.body)
        if self.builder.block.last_op is None or not isinstance(
            self.builder.block.last_op, omp.TerminatorOp
        ):
            self.builder.insert(omp.TerminatorOp())
        self.builder = outer_builder

    # -- expressions ------------------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> SSAValue:
        if expr.line > 0:
            self.builder.loc = expr.line
        if isinstance(expr, ast.IntLit):
            return self.constant_i32(expr.value)
        if isinstance(expr, ast.RealLit):
            width = 64 if expr.kind == 8 else 32
            return self.builder.insert(
                arith.Constant.float(expr.value, width)
            ).results[0]
        if isinstance(expr, ast.LogicalLit):
            return self.builder.insert(arith.Constant.bool(expr.value)).results[0]
        if isinstance(expr, ast.VarRef):
            if expr.name in self.scope.overrides:
                return self.scope.overrides[expr.name]
            sym = self.symbol(expr.name, expr.line)
            if sym.is_parameter:
                return self._parameter_constant(sym)
            return self.builder.insert(
                fir.LoadOp(self.scope.storage[expr.name])
            ).results[0]
        if isinstance(expr, ast.ArrayRef):
            indices = [
                self.convert(self.lower_expr(i), i32) for i in expr.indices
            ]
            return self.builder.insert(
                fir.CoordinateOp(self.scope.storage[expr.name], indices)
            ).results[0]
        if isinstance(expr, ast.UnOp):
            return self.lower_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self.lower_binop(expr)
        if isinstance(expr, ast.IntrinsicCall):
            return self.lower_intrinsic(expr)
        raise LoweringError(
            f"cannot lower expression {type(expr).__name__}", expr.line
        )

    def _parameter_constant(self, sym: Symbol) -> SSAValue:
        value = sym.param_value
        if sym.type.base == "integer":
            return self.constant_i32(int(value))  # type: ignore[arg-type]
        width = 64 if sym.type.kind == 8 else 32
        return self.builder.insert(
            arith.Constant.float(float(value), width)  # type: ignore[arg-type]
        ).results[0]

    def _promote(self, lhs: SSAValue, rhs: SSAValue) -> tuple[SSAValue, SSAValue]:
        """Usual arithmetic conversions: int -> float, narrow -> wide."""
        lt, rt = lhs.type, rhs.type
        if lt == rt:
            return lhs, rhs
        if isinstance(lt, FloatType) and isinstance(rt, FloatType):
            target = lt if lt.width >= rt.width else rt
        elif isinstance(lt, FloatType):
            target = lt
        elif isinstance(rt, FloatType):
            target = rt
        else:
            assert isinstance(lt, IntegerType) and isinstance(rt, IntegerType)
            target = lt if lt.width >= rt.width else rt
        return self.convert(lhs, target), self.convert(rhs, target)

    def lower_unop(self, expr: ast.UnOp) -> SSAValue:
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            if isinstance(operand.type, FloatType):
                zero = self.builder.insert(
                    arith.Constant.float(0.0, operand.type.width)
                ).results[0]
                return self.builder.insert(arith.SubF(zero, operand)).results[0]
            zero_width = (
                operand.type.width if isinstance(operand.type, IntegerType) else 32
            )
            zero = self.builder.insert(
                arith.Constant.int(0, zero_width)
            ).results[0]
            return self.builder.insert(arith.SubI(zero, operand)).results[0]
        if expr.op == ".not.":
            true = self.builder.insert(arith.Constant.bool(True)).results[0]
            return self.builder.insert(arith.XOrI(operand, true)).results[0]
        raise LoweringError(f"unsupported unary op {expr.op!r}", expr.line)

    _INT_OPS = {"+": arith.AddI, "-": arith.SubI, "*": arith.MulI, "/": arith.DivSI}
    _FLOAT_OPS = {"+": arith.AddF, "-": arith.SubF, "*": arith.MulF, "/": arith.DivF}
    _CMP_PRED = {"==": "eq", "/=": "ne", "<": "slt", "<=": "sle",
                 ">": "sgt", ">=": "sge"}
    _FCMP_PRED = {"==": "eq", "/=": "ne", "<": "olt", "<=": "ole",
                  ">": "ogt", ">=": "oge"}

    def lower_binop(self, expr: ast.BinOp) -> SSAValue:
        if expr.op in (".and.", ".or."):
            lhs = self.convert(self.lower_expr(expr.lhs), i1)
            rhs = self.convert(self.lower_expr(expr.rhs), i1)
            cls = arith.AndI if expr.op == ".and." else arith.OrI
            return self.builder.insert(cls(lhs, rhs)).results[0]
        lhs, rhs = self._promote(self.lower_expr(expr.lhs), self.lower_expr(expr.rhs))
        is_float = isinstance(lhs.type, FloatType)
        if expr.op in self._CMP_PRED:
            if is_float:
                return self.builder.insert(
                    arith.CmpF(self._FCMP_PRED[expr.op], lhs, rhs)
                ).results[0]
            return self.builder.insert(
                arith.CmpI(self._CMP_PRED[expr.op], lhs, rhs)
            ).results[0]
        if expr.op == "**":
            if isinstance(expr.rhs, ast.IntLit) and expr.rhs.value == 2:
                cls = arith.MulF if is_float else arith.MulI
                return self.builder.insert(cls(lhs, lhs)).results[0]
            base = self.convert(lhs, f64)
            exponent = self.convert(rhs, f64)
            result = self.builder.insert(math_d.Powf(base, exponent)).results[0]
            return self.convert(result, lhs.type)
        ops = self._FLOAT_OPS if is_float else self._INT_OPS
        if expr.op not in ops:
            raise LoweringError(f"unsupported operator {expr.op!r}", expr.line)
        fastmath = "contract" if is_float else None
        op_cls = ops[expr.op]
        if is_float:
            return self.builder.insert(op_cls(lhs, rhs, fastmath=fastmath)).results[0]
        return self.builder.insert(op_cls(lhs, rhs)).results[0]

    def lower_intrinsic(self, expr: ast.IntrinsicCall) -> SSAValue:
        name = expr.name
        args = [self.lower_expr(a) for a in expr.args]
        if name == "mod":
            lhs, rhs = self._promote(args[0], args[1])
            if isinstance(lhs.type, FloatType):
                raise LoweringError("real mod is not supported", expr.line)
            return self.builder.insert(arith.RemSI(lhs, rhs)).results[0]
        if name in ("min", "max"):
            result = args[0]
            for other in args[1:]:
                lhs, rhs = self._promote(result, other)
                if isinstance(lhs.type, FloatType):
                    cls = arith.MinF if name == "min" else arith.MaxF
                else:
                    cls = arith.MinSI if name == "min" else arith.MaxSI
                result = self.builder.insert(cls(lhs, rhs)).results[0]
            return result
        if name == "abs":
            value = args[0]
            if isinstance(value.type, FloatType):
                return self.builder.insert(math_d.Absf(value)).results[0]
            zero = self.builder.insert(
                arith.Constant.int(0, value.type.width)
            ).results[0]
            neg = self.builder.insert(arith.SubI(zero, value)).results[0]
            is_neg = self.builder.insert(arith.CmpI("slt", value, zero)).results[0]
            return self.builder.insert(arith.Select(is_neg, neg, value)).results[0]
        if name in ("sqrt", "exp", "log", "sin", "cos"):
            value = args[0]
            if not isinstance(value.type, FloatType):
                value = self.convert(value, f32)
            cls = {
                "sqrt": math_d.Sqrt, "exp": math_d.Exp, "log": math_d.Log,
                "sin": math_d.Sin, "cos": math_d.Cos,
            }[name]
            return self.builder.insert(cls(value)).results[0]
        if name in ("real", "float"):
            return self.convert(args[0], f32)
        if name == "dble":
            return self.convert(args[0], f64)
        if name == "int":
            return self.convert(args[0], i32)
        if name == "size":
            arg_expr = expr.args[0]
            if not isinstance(arg_expr, ast.VarRef):
                raise LoweringError("size() requires an array variable", expr.line)
            sym = self.symbol(arg_expr.name, expr.line)
            if not sym.is_array:
                raise LoweringError("size() of a scalar", expr.line)
            if sym.rank != 1:
                raise LoweringError("size() supports rank-1 arrays", expr.line)
            # The extent expression is re-evaluated (constant or dummy var).
            saved = self.scope.overrides
            extent_value = self.lower_expr(sym.dims[0])
            self.scope.overrides = saved
            return self.convert(extent_value, i32)
        raise LoweringError(f"unsupported intrinsic {name!r}", expr.line)


# -- free helpers ----------------------------------------------------------------------


def _collect_usage(
    stmts: Sequence[ast.Stmt],
) -> tuple[set[str], set[str], set[str]]:
    """(names read, names written, do-variables) referenced in a body."""
    read: set[str] = set()
    written: set[str] = set()
    loop_vars: set[str] = set()

    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef):
            read.add(expr.name)
        elif isinstance(expr, ast.ArrayRef):
            read.add(expr.name)
            for i in expr.indices:
                visit_expr(i)
        elif isinstance(expr, ast.BinOp):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, ast.UnOp):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.IntrinsicCall):
            for a in expr.args:
                visit_expr(a)

    def visit_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            visit_expr(stmt.value)
            if isinstance(stmt.target, ast.VarRef):
                written.add(stmt.target.name)
            elif isinstance(stmt.target, ast.ArrayRef):
                written.add(stmt.target.name)
                for i in stmt.target.indices:
                    visit_expr(i)
        elif isinstance(stmt, ast.DoLoop):
            loop_vars.add(stmt.var)
            visit_expr(stmt.start)
            visit_expr(stmt.stop)
            if stmt.step is not None:
                visit_expr(stmt.step)
            for s in stmt.body:
                visit_stmt(s)
        elif isinstance(stmt, ast.IfBlock):
            for c in stmt.conditions:
                visit_expr(c)
            for body in stmt.bodies:
                for s in body:
                    visit_stmt(s)
            for s in stmt.else_body:
                visit_stmt(s)
        elif isinstance(stmt, ast.CallStmt):
            for a in stmt.args:
                visit_expr(a)
        elif isinstance(stmt, ast.PrintStmt):
            for item in stmt.items:
                visit_expr(item)
        elif isinstance(stmt, (ast.OmpTarget, ast.OmpTargetData)):
            for s in stmt.body:
                visit_stmt(s)

    for stmt in stmts:
        visit_stmt(stmt)
    read -= loop_vars  # loop variables are private
    return read, written, loop_vars


def lower_program(program: ProgramInfo) -> builtin.ModuleOp:
    """Lower all units of an analyzed program into a FIR+omp module."""
    module = builtin.ModuleOp()
    for info in program.units.values():
        module.body.add_op(UnitLowering(info, program).lower())
    return module

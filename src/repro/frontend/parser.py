"""Recursive-descent parser for the Fortran subset.

Produces the AST of :mod:`repro.frontend.ast_nodes`.  OpenMP structured
constructs (``target data``, ``target`` regions, combined
``target parallel do``) consume statements until their matching ``end``
directive and nest them as the construct's body.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    CompilationUnit,
    CycleStmt,
    Declaration,
    DoLoop,
    ExitStmt,
    Expr,
    IfBlock,
    IntLit,
    LogicalLit,
    OmpTarget,
    OmpTargetData,
    OmpTargetEnterData,
    OmpTargetExitData,
    OmpTargetUpdate,
    PrintStmt,
    RealLit,
    ReturnStmt,
    StringLit,
    SubprogramUnit,
    TypeSpec,
    UnOp,
    VarRef,
)
from repro.frontend.directives import parse_directive
from repro.frontend.lexer import FortranSyntaxError, Token, TokenKind, tokenize

_LOGICAL_BINOPS = {
    ".and.": ".and.", ".or.": ".or.",
    ".lt.": "<", ".le.": "<=", ".gt.": ">", ".ge.": ">=",
    ".eq.": "==", ".ne.": "/=",
}

#: a host-parallel-do marker used internally (bare ``!$omp parallel do``)
HOST_PARALLEL = "host parallel do"


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing ---------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tok
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def at(self, text: str) -> bool:
        return (
            self.tok.kind in (TokenKind.IDENT, TokenKind.OP)
            and self.tok.text == text
        )

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise FortranSyntaxError(
                f"expected {text!r}, found {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind != TokenKind.IDENT:
            raise FortranSyntaxError(
                f"expected identifier, found {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.tok.kind == TokenKind.NEWLINE:
            self.advance()

    def expect_newline(self) -> None:
        if self.tok.kind not in (TokenKind.NEWLINE, TokenKind.EOF):
            raise FortranSyntaxError(
                f"unexpected token at end of statement: {self.tok.text!r}",
                self.tok.line,
            )
        self.skip_newlines()

    # -- compilation unit ------------------------------------------------------------

    def parse(self) -> CompilationUnit:
        unit = CompilationUnit()
        self.skip_newlines()
        while self.tok.kind != TokenKind.EOF:
            unit.units.append(self.parse_subprogram())
            self.skip_newlines()
        if not unit.units:
            raise FortranSyntaxError("empty source file", self.tok.line)
        return unit

    def parse_subprogram(self) -> SubprogramUnit:
        line = self.tok.line
        if self.accept("program"):
            kind = "program"
            name = self.expect_ident().text
            dummy_args: list[str] = []
        elif self.accept("subroutine"):
            kind = "subroutine"
            name = self.expect_ident().text
            dummy_args = []
            if self.accept("("):
                while not self.at(")"):
                    dummy_args.append(self.expect_ident().text)
                    if not self.accept(","):
                        break
                self.expect(")")
        else:
            raise FortranSyntaxError(
                f"expected 'program' or 'subroutine', found {self.tok.text!r}",
                self.tok.line,
            )
        self.expect_newline()
        unit = SubprogramUnit(kind=kind, name=name, dummy_args=dummy_args, line=line)

        # Specification part.
        while True:
            self.skip_newlines()
            if self.accept("use"):
                self.expect_ident()
                self.expect_newline()
                continue
            if self.accept("implicit"):
                self.expect("none")
                self.expect_newline()
                continue
            if self.tok.kind == TokenKind.IDENT and self.tok.text in (
                "integer", "real", "double", "logical",
            ):
                unit.decls.extend(self.parse_declaration())
                continue
            break

        # Execution part.
        unit.body = self.parse_statements(end_keywords=("end",))
        self.expect("end")
        if self.tok.kind == TokenKind.IDENT and self.tok.text in (
            "program", "subroutine",
        ):
            self.advance()
            if self.tok.kind == TokenKind.IDENT:
                self.advance()  # optional repeated unit name
        self.expect_newline()
        return unit

    # -- declarations -----------------------------------------------------------------

    def parse_declaration(self) -> list[Declaration]:
        line = self.tok.line
        type_spec = self.parse_type_spec()
        intent: Optional[str] = None
        is_parameter = False
        dimension: Optional[list[Expr]] = None
        while self.accept(","):
            attr = self.expect_ident().text
            if attr == "intent":
                self.expect("(")
                word = self.expect_ident().text
                if word == "in" and self.accept("out"):
                    word = "inout"
                if word not in ("in", "out", "inout"):
                    raise FortranSyntaxError(f"bad intent {word!r}", line)
                intent = word
                self.expect(")")
            elif attr == "parameter":
                is_parameter = True
            elif attr == "dimension":
                self.expect("(")
                dimension = self.parse_dim_list()
                self.expect(")")
            else:
                raise FortranSyntaxError(f"unsupported attribute {attr!r}", line)
        self.expect("::")
        decls: list[Declaration] = []
        while True:
            name = self.expect_ident().text
            dims: list[Expr] = list(dimension or [])
            if self.accept("("):
                dims = self.parse_dim_list()
                self.expect(")")
            init: Optional[Expr] = None
            if self.accept("="):
                init = self.parse_expr()
            decls.append(
                Declaration(
                    line=line,
                    type=type_spec,
                    name=name,
                    dims=dims,
                    intent=intent,
                    is_parameter=is_parameter,
                    init=init,
                )
            )
            if not self.accept(","):
                break
        self.expect_newline()
        return decls

    def parse_type_spec(self) -> TypeSpec:
        word_tok = self.expect_ident()
        word = word_tok.text
        if word == "double":
            self.expect("precision")
            return TypeSpec("real", 8)
        kind = 4
        if word in ("integer", "real", "logical") and self.accept("("):
            if self.accept("kind"):
                self.expect("=")
            kind_tok = self.advance()
            if kind_tok.kind != TokenKind.INT:
                raise FortranSyntaxError(
                    f"bad kind {kind_tok.text!r}", kind_tok.line
                )
            kind = int(kind_tok.text)
            self.expect(")")
        if word not in ("integer", "real", "logical"):
            raise FortranSyntaxError(f"unsupported type {word!r}", word_tok.line)
        return TypeSpec(word, kind)

    def parse_dim_list(self) -> list[Expr]:
        dims = [self.parse_expr()]
        while self.accept(","):
            dims.append(self.parse_expr())
        return dims

    # -- statements ---------------------------------------------------------------------

    def parse_statements(self, end_keywords: tuple[str, ...]) -> list:
        statements = []
        while True:
            self.skip_newlines()
            if self.tok.kind == TokenKind.EOF:
                break
            if self.tok.kind == TokenKind.IDENT and self.tok.text in end_keywords:
                break
            if self.tok.kind == TokenKind.OMP_DIRECTIVE:
                directive = parse_directive(self.tok.text, self.tok.line)
                if directive.is_end:
                    break  # structured construct close: caller consumes
                statements.append(self.parse_omp_construct())
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self):
        tok = self.tok
        if tok.kind != TokenKind.IDENT:
            raise FortranSyntaxError(
                f"unexpected token {tok.text!r}", tok.line
            )
        if tok.text == "do":
            return self.parse_do()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "call":
            return self.parse_call()
        if tok.text == "print":
            return self.parse_print()
        if tok.text == "return":
            self.advance()
            self.expect_newline()
            return ReturnStmt(line=tok.line)
        if tok.text == "exit":
            self.advance()
            self.expect_newline()
            return ExitStmt(line=tok.line)
        if tok.text == "cycle":
            self.advance()
            self.expect_newline()
            return CycleStmt(line=tok.line)
        return self.parse_assignment()

    def parse_do(self) -> DoLoop:
        line = self.expect("do").line
        var = self.expect_ident().text
        self.expect("=")
        start = self.parse_expr()
        self.expect(",")
        stop = self.parse_expr()
        step: Optional[Expr] = None
        if self.accept(","):
            step = self.parse_expr()
        self.expect_newline()
        body = self.parse_statements(end_keywords=("end", "enddo"))
        if self.accept("enddo"):
            pass
        else:
            self.expect("end")
            self.expect("do")
        self.expect_newline()
        return DoLoop(line=line, var=var, start=start, stop=stop, step=step, body=body)

    def parse_if(self) -> IfBlock:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        if not self.accept("then"):
            # one-line if
            stmt = self.parse_statement()
            return IfBlock(line=line, conditions=[cond], bodies=[[stmt]])
        self.expect_newline()
        block = IfBlock(line=line, conditions=[cond], bodies=[])
        block.bodies.append(
            self.parse_statements(end_keywords=("end", "endif", "else", "elseif"))
        )
        while True:
            is_elseif = False
            if self.at("elseif"):
                self.advance()
                is_elseif = True
            elif self.at("else") and self.tokens[self.index + 1].text == "if":
                self.advance()
                self.advance()
                is_elseif = True
            if is_elseif:
                self.expect("(")
                block.conditions.append(self.parse_expr())
                self.expect(")")
                self.expect("then")
                self.expect_newline()
                block.bodies.append(
                    self.parse_statements(
                        end_keywords=("end", "endif", "else", "elseif")
                    )
                )
                continue
            if self.accept("else"):
                self.expect_newline()
                block.else_body = self.parse_statements(
                    end_keywords=("end", "endif")
                )
            break
        if self.accept("endif"):
            pass
        else:
            self.expect("end")
            self.expect("if")
        self.expect_newline()
        return block

    def parse_call(self) -> CallStmt:
        line = self.expect("call").line
        name = self.expect_ident().text
        args: list[Expr] = []
        if self.accept("("):
            while not self.at(")"):
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
            self.expect(")")
        self.expect_newline()
        return CallStmt(line=line, name=name, args=args)

    def parse_print(self) -> PrintStmt:
        line = self.expect("print").line
        self.expect("*")
        items: list[Expr] = []
        while self.accept(","):
            items.append(self.parse_expr())
        self.expect_newline()
        return PrintStmt(line=line, items=items)

    def parse_assignment(self) -> Assign:
        line = self.tok.line
        name = self.expect_ident().text
        target: Expr
        if self.accept("("):
            indices = [self.parse_expr()]
            while self.accept(","):
                indices.append(self.parse_expr())
            self.expect(")")
            target = ArrayRef(line=line, name=name, indices=indices)
        else:
            target = VarRef(line=line, name=name)
        self.expect("=")
        value = self.parse_expr()
        self.expect_newline()
        return Assign(line=line, target=target, value=value)

    # -- OpenMP constructs ------------------------------------------------------------------

    def parse_omp_construct(self):
        tok = self.advance()  # the OMP_DIRECTIVE token
        directive = parse_directive(tok.text, tok.line)
        self.skip_newlines()
        if directive.construct == "target enter data":
            return OmpTargetEnterData(line=tok.line, clauses=directive.clauses)
        if directive.construct == "target exit data":
            return OmpTargetExitData(line=tok.line, clauses=directive.clauses)
        if directive.construct == "target update":
            return OmpTargetUpdate(
                line=tok.line,
                to_vars=directive.to_vars,
                from_vars=directive.from_vars,
            )
        if directive.construct == "target data":
            body = self.parse_statements(end_keywords=("end",))
            self.consume_end_directive("target data", tok.line)
            return OmpTargetData(line=tok.line, clauses=directive.clauses, body=body)
        if directive.construct == "target":
            if directive.parallel_do:
                # Combined construct: body is exactly one do loop.
                loop = self.parse_do()
                self.maybe_consume_end_directive("target")
                return OmpTarget(
                    line=tok.line,
                    clauses=directive.clauses,
                    parallel_do=True,
                    simd=directive.simd,
                    body=[loop],
                )
            body = self.parse_statements(end_keywords=("end",))
            self.consume_end_directive("target", tok.line)
            return OmpTarget(
                line=tok.line,
                clauses=directive.clauses,
                parallel_do=False,
                simd=directive.simd,
                body=body,
            )
        if directive.construct == "parallel do":
            # Host construct: annotate the following loop; we lower it as a
            # target-less parallel loop (runs on CPU path).
            loop = self.parse_do()
            self.maybe_consume_end_directive("parallel do")
            return OmpTarget(
                line=tok.line,
                clauses=directive.clauses,
                parallel_do=True,
                simd=directive.simd,
                is_target=False,
                body=[loop],
            )
        raise FortranSyntaxError(
            f"unhandled OpenMP construct {directive.construct!r}", tok.line
        )

    def consume_end_directive(self, construct: str, open_line: int) -> None:
        self.skip_newlines()
        if self.tok.kind != TokenKind.OMP_DIRECTIVE:
            raise FortranSyntaxError(
                f"missing '!$omp end {construct}' for directive at line "
                f"{open_line}",
                self.tok.line,
            )
        directive = parse_directive(self.tok.text, self.tok.line)
        if not directive.is_end or directive.construct != construct:
            raise FortranSyntaxError(
                f"expected '!$omp end {construct}', found {self.tok.text!r}",
                self.tok.line,
            )
        self.advance()
        self.expect_newline()

    def maybe_consume_end_directive(self, construct: str) -> None:
        self.skip_newlines()
        if self.tok.kind != TokenKind.OMP_DIRECTIVE:
            return
        directive = parse_directive(self.tok.text, self.tok.line)
        if directive.is_end and directive.construct == construct:
            self.advance()
            self.expect_newline()

    # -- expressions ----------------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        lhs = self.parse_and()
        while self.tok.kind == TokenKind.LOGICAL_OP and self.tok.text == ".or.":
            line = self.advance().line
            lhs = BinOp(line=line, op=".or.", lhs=lhs, rhs=self.parse_and())
        return lhs

    def parse_and(self) -> Expr:
        lhs = self.parse_not()
        while self.tok.kind == TokenKind.LOGICAL_OP and self.tok.text == ".and.":
            line = self.advance().line
            lhs = BinOp(line=line, op=".and.", lhs=lhs, rhs=self.parse_not())
        return lhs

    def parse_not(self) -> Expr:
        if self.tok.kind == TokenKind.LOGICAL_OP and self.tok.text == ".not.":
            line = self.advance().line
            return UnOp(line=line, op=".not.", operand=self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        lhs = self.parse_additive()
        ops = {"==", "/=", "<", "<=", ">", ">="}
        while True:
            op: Optional[str] = None
            line = self.tok.line
            if self.tok.kind == TokenKind.OP and self.tok.text in ops:
                op = self.advance().text
            elif (
                self.tok.kind == TokenKind.LOGICAL_OP
                and self.tok.text in _LOGICAL_BINOPS
                and self.tok.text not in (".and.", ".or.")
            ):
                op = _LOGICAL_BINOPS[self.advance().text]
            if op is None:
                return lhs
            lhs = BinOp(line=line, op=op, lhs=lhs, rhs=self.parse_additive())

    def parse_additive(self) -> Expr:
        if self.at("-"):
            line = self.advance().line
            lhs: Expr = UnOp(line=line, op="-", operand=self.parse_multiplicative())
        elif self.at("+"):
            self.advance()
            lhs = self.parse_multiplicative()
        else:
            lhs = self.parse_multiplicative()
        while self.tok.kind == TokenKind.OP and self.tok.text in ("+", "-"):
            op_tok = self.advance()
            lhs = BinOp(
                line=op_tok.line, op=op_tok.text, lhs=lhs,
                rhs=self.parse_multiplicative(),
            )
        return lhs

    def parse_multiplicative(self) -> Expr:
        lhs = self.parse_power()
        while self.tok.kind == TokenKind.OP and self.tok.text in ("*", "/"):
            op_tok = self.advance()
            lhs = BinOp(
                line=op_tok.line, op=op_tok.text, lhs=lhs,
                rhs=self.parse_power(),
            )
        return lhs

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.tok.kind == TokenKind.OP and self.tok.text == "**":
            line = self.advance().line
            # right-associative
            return BinOp(line=line, op="**", lhs=base, rhs=self.parse_power())
        return base

    def parse_primary(self) -> Expr:
        tok = self.tok
        if tok.kind == TokenKind.INT:
            self.advance()
            return IntLit(line=tok.line, value=int(tok.text.split("_")[0]))
        if tok.kind == TokenKind.REAL:
            self.advance()
            text = tok.text.lower()
            kind = 4
            if "_" in text:
                base, kind_text = text.rsplit("_", 1)
                kind = int(kind_text)
                text = base
            if "d" in text:
                kind = 8
                text = text.replace("d", "e")
            return RealLit(line=tok.line, value=float(text), kind=kind)
        if tok.kind == TokenKind.STRING:
            self.advance()
            return StringLit(line=tok.line, value=tok.text[1:-1])
        if tok.kind == TokenKind.LOGICAL_OP and tok.text in (".true.", ".false."):
            self.advance()
            return LogicalLit(line=tok.line, value=tok.text == ".true.")
        if tok.kind == TokenKind.OP and tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == TokenKind.OP and tok.text == "-":
            self.advance()
            return UnOp(line=tok.line, op="-", operand=self.parse_primary())
        if tok.kind == TokenKind.IDENT:
            self.advance()
            if self.at("("):
                self.advance()
                indices: list[Expr] = []
                while not self.at(")"):
                    indices.append(self.parse_expr())
                    if not self.accept(","):
                        break
                self.expect(")")
                return ArrayRef(line=tok.line, name=tok.text, indices=indices)
            return VarRef(line=tok.line, name=tok.text)
        raise FortranSyntaxError(
            f"unexpected token in expression: {tok.text!r}", tok.line
        )


def parse_source(source: str) -> CompilationUnit:
    """Parse Fortran source text into an AST."""
    return Parser(source).parse()

"""Kernel static analysis: source-located diagnostics over frontend IR.

Three pillars (all sharing the ``loc`` line attribute the lowering
threads from the Fortran lexer):

* :mod:`repro.analysis.diagnostics` — the rule catalogue,
  :class:`Diagnostic`/:class:`DiagnosticEngine` and :class:`LintReport`;
* :mod:`repro.analysis.checker` — the OpenMP race/dependence/type rules
  and the composable ``check-kernels`` pass;
* :mod:`repro.lint` — the CLI (``python -m repro.lint file.f90``).
"""

from repro.analysis.checker import (
    CheckKernelsPass,
    KernelCheckError,
    check_module,
    op_line,
)
from repro.analysis.diagnostics import (
    RULES,
    SEVERITIES,
    Diagnostic,
    DiagnosticEngine,
    LintReport,
)

__all__ = [
    "CheckKernelsPass",
    "Diagnostic",
    "DiagnosticEngine",
    "KernelCheckError",
    "LintReport",
    "RULES",
    "SEVERITIES",
    "check_module",
    "op_line",
]

"""Diagnostics engine: source-located findings with stable rule codes.

A :class:`Diagnostic` is one finding of the kernel static analysis —
severity, a stable rule code (``RACE001``, ``DEP002``, ``TYPE003``...),
a human message, the kernel (function) it was found in and the Fortran
source line it points at (threaded from the lexer through lowering as
the ``loc`` IR attribute).  :class:`DiagnosticEngine` collects them and
is the single surface the checker pass, ``Session.diagnostics()`` and
the ``python -m repro.lint`` CLI share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels in decreasing order of gravity.
SEVERITIES = ("error", "warning", "note")

#: Stable rule-code catalogue: code -> (default severity, summary).
#: ``tests/README.md`` documents each rule with its firing/silent
#: fixtures; adding a rule means adding a row here plus both fixtures.
RULES: dict[str, tuple[str, str]] = {
    "RACE001": (
        "error",
        "write-write race: parallel iterations store to the same cell "
        "without a matching reduction clause",
    ),
    "RACE002": (
        "error",
        "reduction combiner contradicts the declared reduction kind",
    ),
    "RACE003": (
        "warning",
        "indirect store with no static injectivity basis: will be "
        "runtime-proved or bail scalar",
    ),
    "DEP001": (
        "warning",
        "loop-carried read-write dependence constrains the pipeline "
        "initiation interval",
    ),
    "DEP002": (
        "warning",
        "loop-carried read-write dependence under simd: vectorized "
        "lanes would overlap the recurrence",
    ),
    "TYPE001": (
        "error",
        "operand/result element types disagree on an arith/math op",
    ),
    "TYPE002": (
        "error",
        "memref rank does not match the subscript count on load/store",
    ),
    "TYPE003": (
        "error",
        "scf.for iter_args types disagree between init, body and yield",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: severity, stable rule code, message and location."""

    severity: str
    code: str
    message: str
    kernel: str = ""
    line: int = 0

    def format(self) -> str:
        """One-line human rendering (the lint CLI's text format)."""
        where = f"line {self.line}" if self.line > 0 else "unknown line"
        kernel = f" in '{self.kernel}'" if self.kernel else ""
        return f"{self.severity}[{self.code}]{kernel} at {where}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready rendering (the lint CLI's json format)."""
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "kernel": self.kernel,
            "line": self.line,
        }


class DiagnosticEngine:
    """Collects diagnostics for one analyzed module."""

    def __init__(self):
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        *,
        kernel: str = "",
        line: int = 0,
        severity: str | None = None,
    ) -> Diagnostic:
        """Record a finding under a catalogued rule code.

        ``severity`` defaults to the rule's catalogued severity; passing
        one explicitly (e.g. promoting a warning under ``--werror`` is
        done at the CLI layer, not here) must still be a known level.
        """
        if code not in RULES:
            raise ValueError(f"unknown rule code {code!r}")
        level = severity or RULES[code][0]
        if level not in SEVERITIES:
            raise ValueError(f"unknown severity {level!r}")
        diag = Diagnostic(level, code, message, kernel=kernel, line=line)
        self.diagnostics.append(diag)
        return diag

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # -- queries -----------------------------------------------------------------

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def error_count(self) -> int:
        return self.count("error")

    @property
    def warning_count(self) -> int:
        return self.count("warning")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def sorted(self) -> list[Diagnostic]:
        """Deterministic presentation order: kernel, line, code."""
        return sorted(
            self.diagnostics, key=lambda d: (d.kernel, d.line, d.code)
        )

    def clear(self) -> None:
        self.diagnostics.clear()

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


@dataclass
class LintReport:
    """A lint run's outcome for one source: diagnostics + exit disposition."""

    source_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    def failed(self, werror: bool = False) -> bool:
        if self.errors:
            return True
        return werror and self.warnings > 0

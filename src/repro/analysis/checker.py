"""The kernel race/dependence checker and the ``check-kernels`` pass.

Analyzes the *frontend* module (post ``fir-to-core``: ``memref`` +
``omp`` form, every op still carrying its Fortran ``loc``) and reports
:class:`~repro.analysis.diagnostics.Diagnostic`\\ s instead of wrong
answers at runtime:

* ``RACE001`` — parallel iterations of an ``omp.loop_nest`` store to a
  provably identical cell with no reduction clause covering it;
* ``RACE002`` — the store into a declared reduction variable does not
  combine through the declared kind (wrong op, or a plain overwrite);
* ``RACE003`` — an indirect (scatter) store whose index chain has no
  static injectivity basis — the vectorizer will runtime-prove or bail;
* ``DEP001``/``DEP002`` — an affine loop-carried read/write recurrence
  that bounds the pipeline initiation interval (``DEP002`` when the
  nest is additionally ``omp.simd``: vector lanes overlap it);
* ``TYPE001``–``TYPE003`` — :func:`repro.ir.verifier.typed_check_op`
  findings, reported with source locations instead of raising.

The same analysis composes into declarative pipelines as
``PassManager.parse("check-kernels")`` (option ``fail_on_error`` turns
error-severity findings into a :class:`KernelCheckError`), and backs
``Session.diagnostics()`` and the ``python -m repro.lint`` CLI.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, DiagnosticEngine
from repro.dialects.omp import LoopNestOp, SimdOp, WsLoopOp
from repro.ir.attributes import IntegerAttr, StringAttr
from repro.ir.core import (
    LOC_ATTR,
    Block,
    IRError,
    Operation,
    OpResult,
    SSAValue,
)
from repro.ir.pass_manager import ModulePass, PassOption, register_pass
from repro.ir.verifier import typed_check_op
from repro.transforms.loop_analysis import (
    IndexPattern,
    _defined_inside,
    _exact_offset,
    classify_index,
    float_chain_latency,
    index_values_equal,
    root_memref,
)


class KernelCheckError(IRError):
    """Raised by ``check-kernels{fail_on_error=true}`` on error findings."""


#: Store-value op -> the OpenMP reduction kind it implements.  ``subf``/
#: ``subi`` combine under ``add``: OpenMP defines ``reduction(-)`` with
#: the ``+`` combiner.
_COMBINERS = {
    "arith.addf": "add",
    "arith.addi": "add",
    "arith.subf": "add",
    "arith.subi": "add",
    "arith.mulf": "mul",
    "arith.muli": "mul",
    "arith.maximumf": "max",
    "arith.maxsi": "max",
    "arith.minimumf": "min",
    "arith.minsi": "min",
}


def op_line(op: Operation) -> int:
    """The Fortran line an op was lowered from (its ``loc``), or 0."""
    attr = op.attributes.get(LOC_ATTR)
    if isinstance(attr, IntegerAttr):
        return attr.value
    return 0


def _parent_op(op: Operation) -> Operation | None:
    if op.parent is None or op.parent.parent is None:
        return None
    return op.parent.parent.parent


def _enclosing(op: Operation, name: str) -> Operation | None:
    parent = _parent_op(op)
    while parent is not None:
        if parent.name == name:
            return parent
        parent = _parent_op(parent)
    return None


def _static_value(value: SSAValue) -> int | None:
    if isinstance(value, OpResult) and value.op.name == "arith.constant":
        attr = value.op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return attr.value
    return None


def _walk_stores(body: Block):
    """Every ``memref.store`` in ``body``, including inside nested serial
    loops — those still execute once per parallel iteration."""
    for op in body.ops:
        for nested in op.walk():
            if nested.name == "memref.store":
                yield nested


def _walk_loads_same_level(body: Block):
    from repro.transforms.loop_analysis import walk_same_loop_level

    for op in walk_same_loop_level(body):
        if op.name == "memref.load":
            yield op


def _consumes_load_of(value: SSAValue, root: SSAValue, body: Block) -> Operation | None:
    """The ``memref.load`` of ``root`` among ``value``'s defining op's
    direct operands, or None."""
    if not isinstance(value, OpResult):
        return None
    for operand in value.op.operands:
        if (
            isinstance(operand, OpResult)
            and operand.op.name == "memref.load"
            and root_memref(operand.op.operands[0]) is root
        ):
            return operand.op
    return None


def _gather_chain_impure(value: SSAValue, iv: SSAValue, body: Block) -> bool:
    """True when an indirect subscript chain multiplies the gathered index
    by a value that is loop-invariant but *not* a compile-time constant —
    a runtime zero scale would collapse every index onto one cell, so the
    chain has no static injectivity basis."""
    if not isinstance(value, OpResult):
        return False
    op = value.op
    name = op.name
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return _gather_chain_impure(op.operands[0], iv, body)
    if name in ("arith.addi", "arith.subi", "arith.muli"):
        impure = False
        for operand in op.operands:
            pattern = classify_index(operand, iv, body)
            if pattern.kind == "invariant":
                if name == "arith.muli" and not _exact_offset(operand, iv, body):
                    impure = True
                continue
            impure = impure or _gather_chain_impure(operand, iv, body)
        return impure
    return False


class _NestContext:
    """One analyzed ``omp.loop_nest``: its parallel IVs, reduction map and
    the privatization scopes that exempt per-iteration temporaries."""

    def __init__(self, nest: LoopNestOp, wsloop: WsLoopOp | None, is_simd: bool):
        self.nest = nest
        self.is_simd = is_simd
        self.body = nest.body
        self.ivs = nest.induction_vars
        self.reductions: dict[int, tuple[SSAValue, str]] = {}
        if wsloop is not None:
            for var, kind in zip(wsloop.reduction_vars, wsloop.reduction_kinds):
                root = root_memref(var)
                self.reductions[id(root)] = (root, kind)
        target = _enclosing(nest, "omp.target")
        parallel = _enclosing(nest, "omp.parallel")
        self._private_scopes = [
            scope.regions[0].block
            for scope in (target, parallel)
            if scope is not None and scope.regions and scope.regions[0].blocks
        ]

    def reduction_kind(self, root: SSAValue) -> str | None:
        entry = self.reductions.get(id(root))
        return entry[1] if entry else None

    def is_private(self, root: SSAValue) -> bool:
        """Per-iteration temporaries: the frontend materializes privatized
        scalars as allocas inside the target/parallel region, while shared
        (mapped) buffers enter ``omp.target`` as block arguments."""
        if not isinstance(root, OpResult):
            return False
        return any(
            _defined_inside(root.op, scope) for scope in self._private_scopes
        )

    def static_step(self, dim: int) -> int | None:
        return _static_value(self.nest.steps[dim])


def check_module(
    module: Operation, engine: DiagnosticEngine | None = None
) -> DiagnosticEngine:
    """Run every rule over ``module`` (frontend core+omp form)."""
    if engine is None:  # not `or`: an empty engine is falsy (len 0)
        engine = DiagnosticEngine()
    for func in module.walk():
        if func.name != "func.func":
            continue
        attr = func.attributes.get("sym_name")
        kernel = attr.value if isinstance(attr, StringAttr) else "<anonymous>"
        _check_types(func, kernel, engine)
        for op in func.walk():
            if isinstance(op, WsLoopOp):
                try:
                    nest = op.loop_nest()
                except IRError:
                    continue
                is_simd = isinstance(_parent_op(nest), SimdOp)
                _check_nest(_NestContext(nest, op, is_simd), kernel, engine)
            elif isinstance(op, SimdOp) and _enclosing(op, "omp.wsloop") is None:
                try:
                    nest = op.loop_nest()
                except IRError:
                    continue
                _check_nest(_NestContext(nest, None, True), kernel, engine)
    return engine


def _check_types(func: Operation, kernel: str, engine: DiagnosticEngine) -> None:
    for op in func.walk():
        finding = typed_check_op(op)
        if finding is not None:
            code, message = finding
            engine.emit(code, message, kernel=kernel, line=op_line(op))


def _first_access_is_load(root: SSAValue, body: Block) -> bool:
    """True when ``body`` (in document order) reads ``root`` before any
    store to it — for a privatized scalar this means each parallel
    iteration starts from a stale/undefined value."""
    for op in body.ops:
        for nested in op.walk():
            if (
                nested.name == "memref.load"
                and root_memref(nested.operands[0]) is root
            ):
                return True
            if (
                nested.name == "memref.store"
                and root_memref(nested.operands[1]) is root
            ):
                return False
    return False


def _check_nest(ctx: _NestContext, kernel: str, engine: DiagnosticEngine) -> None:
    shared_affine: dict[int, list] = {}  # root id -> [(store, patterns)]
    reported_private: set[int] = set()
    for store in _walk_stores(ctx.body):
        root = root_memref(store.operands[1])
        kind = ctx.reduction_kind(root)
        if kind is not None:
            _check_reduction_store(ctx, store, root, kind, kernel, engine)
            continue
        if ctx.is_private(root):
            # A privatized scalar that is *read before written* each
            # iteration accumulates into per-thread copies whose values
            # never merge — the missing-reduction-clause shape.  A temp
            # initialized before use (spmv's row accumulator) is fine.
            if (
                not store.operands[2:]
                and id(root) not in reported_private
                and _first_access_is_load(root, ctx.body)
            ):
                reported_private.add(id(root))
                engine.emit(
                    "RACE001",
                    "accumulation into an implicitly private scalar: each "
                    "iteration reads it before storing, but there is no "
                    "reduction clause to combine the per-thread copies",
                    kernel=kernel,
                    line=op_line(store),
                )
            continue
        dims = store.operands[2:]
        # patterns[d][iv_index]: dim d as a function of parallel IV i
        patterns = [
            [classify_index(dim, iv, ctx.body) for iv in ctx.ivs]
            for dim in dims
        ]
        if _check_same_cell_store(ctx, store, dims, patterns, kernel, engine):
            continue
        if _check_indirect_store(ctx, store, root, dims, patterns, kernel, engine):
            continue
        shared_affine.setdefault(id(root), []).append((store, patterns))
    _check_overlapping_stores(ctx, shared_affine, kernel, engine)
    _check_carried_recurrences(ctx, kernel, engine)


# ---------------------------------------------------------------------------
# RACE001 — write-write races
# ---------------------------------------------------------------------------


def _varies(pattern: IndexPattern) -> bool:
    """Could this subscript name a different cell in a different parallel
    iteration?  ``unknown``/``indirect`` count as varying — they are not
    *provably* the same cell, so they are RACE003's business, not
    RACE001's."""
    return pattern.kind != "invariant"


def _check_same_cell_store(
    ctx: _NestContext,
    store: Operation,
    dims,
    patterns,
    kernel: str,
    engine: DiagnosticEngine,
) -> bool:
    line = op_line(store)
    if not dims:
        engine.emit(
            "RACE001",
            "every parallel iteration stores to the same scalar; "
            "declare it in a reduction clause or privatize it",
            kernel=kernel,
            line=line,
        )
        return True
    for iv_index in range(len(ctx.ivs)):
        if not any(_varies(patterns[d][iv_index]) for d in range(len(dims))):
            engine.emit(
                "RACE001",
                "subscripts are invariant in parallel induction variable "
                f"{iv_index}: its iterations all store to one cell",
                kernel=kernel,
                line=line,
            )
            return True
    for d in range(len(dims)):
        for iv_index in range(len(ctx.ivs)):
            pattern = patterns[d][iv_index]
            if pattern.kind == "periodic":
                engine.emit(
                    "RACE001",
                    f"subscript {d} is periodic (mod {pattern.parameter}) in "
                    "a parallel induction variable: iterations a period "
                    "apart store to the same cell",
                    kernel=kernel,
                    line=line,
                )
                return True
    return False


def _check_overlapping_stores(
    ctx: _NestContext,
    shared_affine: dict[int, list],
    kernel: str,
    engine: DiagnosticEngine,
) -> None:
    """Pairwise RACE001: two stores to one buffer whose affine subscripts
    land on the same lattice with different offsets (``a(i)`` next to
    ``a(i+1)``) collide across iterations."""
    for entries in shared_affine.values():
        for first_index in range(len(entries)):
            store_a, patterns_a = entries[first_index]
            for store_b, patterns_b in entries[first_index + 1 :]:
                if len(patterns_a) != len(patterns_b):
                    continue
                if _stores_collide(ctx, store_a, patterns_a, store_b, patterns_b):
                    engine.emit(
                        "RACE001",
                        "two stores to the same buffer hit the same cell in "
                        "different parallel iterations (affine subscripts "
                        "with equal stride, distinct offsets)",
                        kernel=kernel,
                        line=max(op_line(store_a), op_line(store_b)),
                    )
                    break


def _stores_collide(ctx, store_a, patterns_a, store_b, patterns_b) -> bool:
    dims_a = store_a.operands[2:]
    dims_b = store_b.operands[2:]
    for d in range(len(dims_a)):
        for iv_index, iv in enumerate(ctx.ivs):
            pa, pb = patterns_a[d][iv_index], patterns_b[d][iv_index]
            if not (pa.kind == "affine" and pb.kind == "affine"):
                continue
            if pa.parameter != pb.parameter or pa.parameter == 0:
                continue
            if not (
                _exact_offset(dims_a[d], iv, ctx.body)
                and _exact_offset(dims_b[d], iv, ctx.body)
            ):
                continue
            delta = pa.offset - pb.offset
            if delta == 0:
                continue
            step = ctx.static_step(iv_index)
            if step is None:
                continue
            stride = pa.parameter * step
            if delta % stride != 0:
                continue  # disjoint lattices never collide
            # Colliding dim found; every other dim must name the same
            # cell for the accesses to actually alias.
            others_equal = all(
                other == d
                or index_values_equal(dims_a[other], dims_b[other], ctx.body)
                for other in range(len(dims_a))
            )
            if others_equal:
                return True
    return False


# ---------------------------------------------------------------------------
# RACE002 — reduction combiner checks
# ---------------------------------------------------------------------------


def _check_reduction_store(
    ctx: _NestContext,
    store: Operation,
    root: SSAValue,
    kind: str,
    kernel: str,
    engine: DiagnosticEngine,
) -> None:
    line = op_line(store)
    value = store.operands[0]
    combiner = (
        _COMBINERS.get(value.op.name) if isinstance(value, OpResult) else None
    )
    if combiner is None:
        engine.emit(
            "RACE002",
            f"store into a reduction({kind}) variable does not combine "
            "through a reduction op: parallel contributions overwrite "
            "each other",
            kernel=kernel,
            line=line,
        )
        return
    if combiner != kind:
        engine.emit(
            "RACE002",
            f"combiner {value.op.name} implements reduction({combiner}) "
            f"but the loop declares reduction({kind})",
            kernel=kernel,
            line=line,
        )
        return
    if _consumes_load_of(value, root, ctx.body) is None:
        engine.emit(
            "RACE002",
            f"reduction({kind}) combiner does not read the reduction "
            "variable back: each iteration overwrites the accumulated "
            "value",
            kernel=kernel,
            line=line,
        )


# ---------------------------------------------------------------------------
# RACE003 — indirect stores without a static injectivity basis
# ---------------------------------------------------------------------------


def _check_indirect_store(
    ctx: _NestContext,
    store: Operation,
    root: SSAValue,
    dims,
    patterns,
    kernel: str,
    engine: DiagnosticEngine,
) -> bool:
    """Handle stores with indirect/unanalyzable subscripts.  Returns True
    when the store was consumed by this rule (fired or exempted)."""
    line = op_line(store)
    indirect_dims = [
        d
        for d in range(len(dims))
        if any(p.kind == "indirect" for p in patterns[d])
    ]
    unknown_dims = [
        d
        for d in range(len(dims))
        if all(p.kind == "unknown" for p in patterns[d])
    ]
    if not indirect_dims and not unknown_dims:
        return False
    if unknown_dims:
        engine.emit(
            "RACE003",
            f"subscript {unknown_dims[0]} of an indirect store is not "
            "analyzable: no injectivity basis, the vectorizer will bail "
            "scalar",
            kernel=kernel,
            line=line,
        )
        return True
    # Accumulate-fold shape (h(bins(i)) = h(bins(i)) + w(i)): the runtime
    # folds repeated indices in iteration order, no injectivity needed.
    folded = _consumes_load_of(store.operands[0], root, ctx.body)
    if folded is not None and all(
        index_values_equal(a, b, ctx.body)
        for a, b in zip(store.operands[2:], folded.operands[1:])
    ):
        return True
    for d in indirect_dims:
        for iv_index, iv in enumerate(ctx.ivs):
            if patterns[d][iv_index].kind != "indirect":
                continue
            if _gather_chain_impure(dims[d], iv, ctx.body):
                engine.emit(
                    "RACE003",
                    f"indirect subscript {d} scales the gathered index by "
                    "a runtime value: a zero scale collapses every store "
                    "onto one cell, so injectivity must be proved at "
                    "runtime (or the loop runs scalar)",
                    kernel=kernel,
                    line=line,
                )
                return True
    # Pure gather chain (permutation scatter): each iteration reads a
    # fresh index-array cell and the chain preserves distinctness up to
    # the runtime proof the vectorizer already runs — silent.
    return True


# ---------------------------------------------------------------------------
# DEP001 / DEP002 — affine loop-carried recurrences
# ---------------------------------------------------------------------------


def _check_carried_recurrences(
    ctx: _NestContext, kernel: str, engine: DiagnosticEngine
) -> None:
    """Affine read/write recurrences (``a(i+1) = f(a(i))``) on the
    *parallel* dimension of a rank-1 nest: same stride, offsets a whole
    number of iterations apart.  Indirect or invariant-vs-affine pairs
    are out of scope here (RACE/other rules own those shapes)."""
    if ctx.nest.rank != 1:
        return
    iv = ctx.ivs[0]
    step = ctx.static_step(0)
    if step is None or step == 0:
        return
    body = ctx.body
    from repro.transforms.loop_analysis import walk_same_loop_level

    stores = [
        op
        for op in walk_same_loop_level(body)
        if op.name == "memref.store"
    ]
    loads = list(_walk_loads_same_level(body))
    latency = None
    for store in stores:
        root = root_memref(store.operands[1])
        if ctx.reduction_kind(root) is not None or ctx.is_private(root):
            continue
        dims = store.operands[2:]
        if len(dims) != 1:
            continue
        wp = classify_index(dims[0], iv, body)
        if wp.kind != "affine" or not _exact_offset(dims[0], iv, body):
            continue
        for load in loads:
            if root_memref(load.operands[0]) is not root:
                continue
            indices = load.operands[1:]
            if len(indices) != 1:
                continue
            rp = classify_index(indices[0], iv, body)
            if (
                rp.kind != "affine"
                or rp.parameter != wp.parameter
                or not _exact_offset(indices[0], iv, body)
            ):
                continue
            delta = wp.offset - rp.offset
            stride = wp.parameter * step
            if delta == 0 or delta % stride != 0:
                continue
            distance = abs(delta // stride)
            if latency is None:
                latency = max(1, float_chain_latency(body, float_only=True))
            ii = -(-latency // distance)  # ceil division
            if ctx.is_simd:
                engine.emit(
                    "DEP002",
                    f"loop-carried recurrence at distance {distance} under "
                    "simd: vector lanes overlap the dependence "
                    f"(II >= {ii} from a {latency}-cycle combiner chain)",
                    kernel=kernel,
                    line=op_line(store),
                )
            else:
                engine.emit(
                    "DEP001",
                    f"loop-carried recurrence at distance {distance} "
                    f"bounds the pipeline II to >= {ii} "
                    f"({latency}-cycle combiner chain)",
                    kernel=kernel,
                    line=op_line(store),
                )
            break  # one finding per store is enough


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@register_pass
class CheckKernelsPass(ModulePass):
    """``check-kernels`` — run the race/dependence/type rules and collect
    diagnostics on the pass instance (``.engine``); composes anywhere in
    a declarative pipeline since it never mutates the module."""

    name = "check-kernels"
    options = (
        PassOption(
            "fail_on_error",
            bool,
            False,
            help="raise KernelCheckError when an error-severity rule fires",
        ),
    )

    def __init__(self, fail_on_error: bool = False):
        self.fail_on_error = fail_on_error
        self.engine = DiagnosticEngine()

    def apply(self, module: Operation) -> None:
        self.engine.clear()
        check_module(module, self.engine)
        if self.fail_on_error and self.engine.has_errors:
            first = next(
                d for d in self.engine.sorted() if d.severity == "error"
            )
            raise KernelCheckError(
                f"check-kernels found {self.engine.error_count} error(s); "
                f"first: {first.format()}"
            )

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return self.engine.sorted()

"""Reporting helpers: paper-style tables and the Table 7 LoC census.

The benchmarks print every reproduced table in the paper's row/column
layout next to the published values, so EXPERIMENTS.md can be regenerated
mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Repository source root (src/repro).
_SRC_ROOT = Path(__file__).resolve().parent

#: Paper Table 7: component -> (published LoC, our module globs).
TABLE7_COMPONENTS: dict[str, tuple[int, tuple[str, ...]]] = {
    "OpenMP to HLS dialect (this work)": (
        2363,
        (
            "dialects/device.py",
            "transforms/lower_omp_mapped_data.py",
            "transforms/lower_omp_target_region.py",
            "transforms/extract_device_module.py",
            "transforms/lower_omp_to_hls.py",
            "transforms/loop_analysis.py",
        ),
    ),
    "HLS dialect and lowering from [20]": (
        2382,
        (
            "dialects/hls.py",
            "transforms/lower_hls_to_func.py",
            "backend/vitis.py",
        ),
    ),
    "Integrating LLVM and AMD HLS backend [19]": (
        1654,
        (
            "backend/llvm_ir.py",
            "backend/amd_hls.py",
        ),
    ),
    "Lowering from HLFIR & FIR to core dialects [3]": (
        5956,
        (
            "frontend/lexer.py",
            "frontend/ast_nodes.py",
            "frontend/parser.py",
            "frontend/directives.py",
            "frontend/sema.py",
            "frontend/lowering.py",
            "frontend/fir_to_core.py",
            "frontend/driver.py",
        ),
    ),
}


def count_loc(path: Path) -> int:
    """Physical non-blank lines of code in a file."""
    return sum(
        1 for line in path.read_text().splitlines() if line.strip()
    )


@dataclass
class LocRow:
    component: str
    paper_loc: int
    our_loc: int
    files: tuple[str, ...]


def table7_loc() -> list[LocRow]:
    """Lines-of-code census mapped onto the paper's Table 7 components."""
    rows = []
    for component, (paper_loc, files) in TABLE7_COMPONENTS.items():
        total = 0
        for rel in files:
            path = _SRC_ROOT / rel
            if not path.exists():
                raise FileNotFoundError(f"Table 7 census: missing {path}")
            total += count_loc(path)
        rows.append(LocRow(component, paper_loc, total, files))
    return rows


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Monospace table with a title rule (used by every benchmark)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def relative_difference(ours: float, reference: float) -> float:
    """Signed relative difference in percent (reference vs ours)."""
    return (reference / ours - 1.0) * 100.0


def pass_timing_table(instrumentation) -> str:
    """Per-pass wall-clock of an instrumented compilation, aggregated by
    pass name (a :class:`~repro.ir.pass_manager.Instrumentation` consumer
    — the Figure-2 benchmark prints this next to the stage trace)."""
    totals: dict[str, tuple[int, float]] = {}
    for trace in instrumentation.pass_traces:
        runs, seconds = totals.get(trace.pass_name, (0, 0.0))
        totals[trace.pass_name] = (runs + 1, seconds + trace.duration_s)
    rows = [
        (name, runs, f"{seconds * 1e3:.3f}")
        for name, (runs, seconds) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        )
    ]
    return format_table(
        "Pass timings", ["pass", "runs", "total (ms)"], rows
    )


def stage_trace_table(instrumentation) -> str:
    """The captured pipeline-stage snapshots as a summary table (stage
    name + IR size), for reports that trace the Figure-2 flow."""
    rows = [
        (snap.name, len(snap.ir.splitlines()), len(snap.ir))
        for snap in instrumentation.snapshots
    ]
    return format_table(
        "Pipeline stages", ["stage", "IR lines", "IR bytes"], rows
    )


def counter_table(instrumentation) -> str:
    """Artifact-build counters (frontend/host/device) — the DSE
    artifact-reuse evidence in human-readable form."""
    rows = sorted(instrumentation.counters.items())
    return format_table("Build counters", ["event", "count"], rows)


def service_stats_table(stats) -> str:
    """Aggregate :class:`~repro.service.service.ServiceStats` counters
    as a table (requests, tier hits, coalesced, builds, rejections)."""
    rows = sorted(stats.as_dict().items())
    return format_table("Compile service", ["counter", "count"], rows)


def service_request_table(responses) -> str:
    """Per-request :class:`~repro.service.service.ServiceMetrics` rows
    for a batch of :class:`ServiceResponse` objects — the coalesced
    burst evidence in human-readable form."""
    rows = [
        (
            r.metrics.digest[:12],
            r.metrics.outcome,
            f"{r.metrics.queue_wait_s * 1e3:.3f}",
            f"{r.metrics.build_s * 1e3:.3f}",
            f"{r.metrics.total_s * 1e3:.3f}",
        )
        for r in responses
    ]
    return format_table(
        "Service requests",
        ["digest", "outcome", "queue (ms)", "build (ms)", "total (ms)"],
        rows,
    )


def store_stats_table(stats) -> str:
    """Tier-level :class:`~repro.service.store.StoreStats` counters."""
    rows = sorted(stats.as_dict().items())
    return format_table("Artifact store", ["counter", "count"], rows)


def gallery_table() -> str:
    """The workload gallery as a paper-style table (name, loop shape,
    entry point, size sweep) — regenerated from the registry so reports
    can never drift from the code."""
    from repro.workloads import all_workloads

    rows = [
        (
            w.name,
            w.loop_shape,
            w.entry,
            ", ".join(str(s) for s in w.sizes),
            w.description,
        )
        for w in all_workloads()
    ]
    return format_table(
        "Workload gallery",
        ["workload", "loop shape", "entry", "sizes", "description"],
        rows,
    )


def scaling_table(curves: dict[str, Sequence[tuple[int, float]]]) -> str:
    """Multi-compute-unit scaling curves as a report table.

    ``curves`` maps a workload label to its ``(compute_units,
    device_time_s)`` samples; each row reports the modelled time at that
    CU count, the speedup over the curve's 1-CU sample and the parallel
    efficiency (``speedup / CUs``).  This is the human-readable twin of
    the ``scaling_tiers`` section the perf-smoke bench gates on.
    """
    rows = []
    for label in sorted(curves):
        samples = sorted(curves[label])
        base = next(
            (time_s for units, time_s in samples if units == 1), None
        )
        for units, time_s in samples:
            speedup = base / time_s if base else float("nan")
            rows.append(
                (
                    label,
                    units,
                    f"{time_s * 1e3:.3f}",
                    f"{speedup:.2f}x",
                    f"{100.0 * speedup / units:.1f}%",
                )
            )
    if not rows:
        rows = [("-", "-", "-", "-", "no samples")]
    return format_table(
        "Multi-CU scaling",
        ["workload", "CUs", "time (ms)", "speedup", "efficiency"],
        rows,
    )


def diagnostics_table(diagnostics) -> str:
    """Kernel static-analysis findings (``Session.diagnostics()`` /
    ``check-kernels``) as a report table, one row per finding."""
    rows = [
        (d.severity, d.code, d.kernel, d.line if d.line > 0 else "-", d.message)
        for d in diagnostics
    ]
    if not rows:
        rows = [("-", "-", "-", "-", "no findings")]
    return format_table(
        "Kernel diagnostics",
        ["severity", "code", "kernel", "line", "message"],
        rows,
    )

"""Hand-written Vitis HLS SGESL baseline (paper §4, Tables 2/4/6).

The offloaded piece is the inner update loop of the LINPACK SGESL
back-substitution (paper Listing 6): ``b(j) = b(j) + t*a(j)`` for
``j = k+1, n``.  The hand-written HLS C version:

.. code-block:: c

    void sgesl_update(float *b, float *a, float t, int k, int n) {
      for (int j = k; j < n; ++j) {
    #pragma HLS PIPELINE II=1
        b[j] += t * a[j];
      }
    }

Written this way, AMD's Clang frontend emits the fused multiply-add
pattern Vitis recognises, so the MAC binds to DSP slices — the Fortran
flow's IR misses the pattern and builds the MAC from LUTs.  That is the
Table 4 difference (DSP 0.23 % vs 0.10 %) the paper analyses.

The host driver performs the same per-``k`` data movement the OpenMP
implicit maps cause (b, a, t, k, n to device; b, a back every launch),
which is what makes Table 2 scale quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.vitis import Bitstream, VitisCompiler
from repro.baselines.builder import add_kernel, mac, new_device_module
from repro.dialects import arith, func as func_d, hls, memref, scf
from repro.fpga.board import U280Board
from repro.ir.builder import Builder
from repro.ir.types import DYNAMIC, MemRefType, f32, i32, index
from repro.runtime.executor import ExecutionResult, _flow_jitter
from repro.runtime.kernel_runner import KernelRunner
from repro.runtime.opencl import ClContext

KERNEL_NAME = "sgesl_update_hls"


def build_sgesl_module():
    """Device module with the hand-written SGESL update kernel."""
    module = new_device_module()
    vec_ty = MemRefType(f32, [DYNAMIC], 1)
    scalar_f = MemRefType(f32, [], 1)
    scalar_i = MemRefType(i32, [], 1)
    fn, b = add_kernel(
        module, KERNEL_NAME, [vec_ty, vec_ty, scalar_f, scalar_i, scalar_i]
    )
    b_arg, a_arg, t_arg, k_arg, n_arg = fn.body.args
    for arg, hint in zip(fn.body.args, ("b", "a", "t", "k", "n")):
        arg.name_hint = hint

    t_val = b.insert(memref.Load(t_arg, [])).results[0]
    k_i32 = b.insert(memref.Load(k_arg, [])).results[0]
    n_i32 = b.insert(memref.Load(n_arg, [])).results[0]
    lb = b.insert(arith.IndexCast(k_i32, index)).results[0]  # 0-based k
    ub = b.insert(arith.IndexCast(n_i32, index)).results[0]
    one = b.insert(arith.Constant.index(1)).results[0]

    loop = b.insert(scf.For(lb, ub, one))
    inner = Builder.at_end(loop.body)
    ii = inner.insert(arith.Constant.int(1, 32)).results[0]
    inner.insert(hls.PipelineOp(ii))
    a_val = inner.insert(memref.Load(a_arg, [loop.induction_var])).results[0]
    b_val = inner.insert(memref.Load(b_arg, [loop.induction_var])).results[0]
    new_b = mac(inner, b_val, t_val, a_val, clang_idiom=True)
    inner.insert(memref.Store(new_b, b_arg, [loop.induction_var]))
    inner.insert(scf.Yield())
    b.insert(func_d.ReturnOp())
    return module


@dataclass
class HandwrittenSgesl:
    """Compiled baseline + a hand-written-style host driver."""

    board: U280Board
    bitstream: Bitstream

    @staticmethod
    def build(board: U280Board | None = None) -> "HandwrittenSgesl":
        board = board or U280Board()
        module = build_sgesl_module()
        return HandwrittenSgesl(board, VitisCompiler(board).compile(module))

    def run(
        self, a_matrix: np.ndarray, b_vec: np.ndarray, ipvt: np.ndarray
    ) -> ExecutionResult:
        """Full SGESL solve (job=0): forward elimination with the recorded
        pivots, then back substitution — both update loops offloaded, one
        launch per k, with the same per-launch data movement the OpenMP
        implicit maps cause (paper Listing 6 structure)."""
        n = len(b_vec)
        context = ClContext(self.board)
        runner = KernelRunner(self.bitstream)
        buf_b = context.create_buffer("b", (n,), np.float32, 1)
        buf_a = context.create_buffer("a", (n,), np.float32, 1)
        buf_t = context.create_buffer("t", (), np.float32, 1)
        buf_k = context.create_buffer("k", (), np.int32, 1)
        buf_n = context.create_buffer("n", (), np.int32, 1)

        self._time_s = 0.0
        self._transfer_s = 0.0
        self._kernel_s = 0.0
        self._cycles = 0.0
        self._bytes_h2d = self._bytes_d2h = 0
        self._launches = self._transfers = 0

        b_host = b_vec
        # forward elimination: b(k+1:) += t * a(k+1:, k)
        for k in range(n - 1):
            pivot = int(ipvt[k])
            t = float(b_host[pivot])
            if pivot != k:
                b_host[pivot] = b_host[k]
                b_host[k] = t
            self._launch(
                runner, b_host, a_matrix[:, k], t, k + 1, n,
                buf_b, buf_a, buf_t, buf_k, buf_n,
            )
        # back substitution: b(:k) += t * a(:k, k)
        for k in range(n - 1, -1, -1):
            b_host[k] = b_host[k] / a_matrix[k, k]
            t = -float(b_host[k])
            self._launch(
                runner, b_host, a_matrix[:, k], t, 0, k,
                buf_b, buf_a, buf_t, buf_k, buf_n,
            )

        time_s = self._time_s * _flow_jitter(f"hand-hls:sgesl:{n}")
        return ExecutionResult(
            device_time_s=time_s,
            kernel_time_s=self._kernel_s,
            transfer_time_s=self._transfer_s,
            launches=self._launches,
            transfers=self._transfers,
            bytes_h2d=self._bytes_h2d,
            bytes_d2h=self._bytes_d2h,
            kernel_cycles=self._cycles,
        )

    def _launch(
        self, runner, b_host, column, t, start, stop,
        buf_b, buf_a, buf_t, buf_k, buf_n,
    ) -> None:
        """One offloaded update: b(start:stop) += t * a(start:stop)."""
        for buffer, host in (
            (buf_b, b_host),
            (buf_a, column),
            (buf_t, np.float32(t)),
            (buf_k, np.int32(start)),
            (buf_n, np.int32(stop)),
        ):
            np.copyto(buffer.data, host)
            dt = self.board.dma_time_s(buffer.nbytes)
            self._time_s += dt
            self._transfer_s += dt
            self._bytes_h2d += buffer.nbytes
            self._transfers += 1
        run = runner.run(
            KERNEL_NAME, buf_b.data, buf_a.data, buf_t.data,
            buf_k.data, buf_n.data,
        )
        self._kernel_s += run.seconds
        self._cycles += run.cycles
        self._time_s += self.board.kernel_launch_overhead_s + run.seconds
        self._launches += 1
        for buffer, host in ((buf_b, b_host), (buf_a, column)):
            np.copyto(host, buffer.data)
            dt = self.board.dma_time_s(buffer.nbytes)
            self._time_s += dt
            self._transfer_s += dt
            self._bytes_d2h += buffer.nbytes
            self._transfers += 1

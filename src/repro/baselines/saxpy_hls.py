"""Hand-written Vitis HLS SAXPY baseline (paper §4, Tables 1/3/5).

The kernel mirrors hand-written HLS C:

.. code-block:: c

    void saxpy(float a, float *x, float *y, int n) {
      for (int i = 0; i < n; i += 10) {
    #pragma HLS PIPELINE II=1
    #pragma HLS UNROLL factor=10
        for (int j = 0; j < 10; ++j) y[i+j] += a * x[i+j];
      }
      /* remainder loop */
    }

i.e. the same partially-unrolled pipelined structure the Fortran OpenMP
flow generates from ``parallel do simd simdlen(10)``.  The multiply-add
here is written so Vitis does *not* fuse it (separate temporaries), which
is why Table 3 reports identical resources for both flows.

The host driver mirrors the OpenMP data movement (a, x, y to device; x, y
back) so the runtime comparison isolates the kernel path — matching the
sub-1 % deltas of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.vitis import Bitstream, VitisCompiler
from repro.baselines.builder import add_kernel, mac, new_device_module
from repro.dialects import arith, hls, memref, scf
from repro.fpga.board import U280Board
from repro.ir.builder import Builder
from repro.ir.types import DYNAMIC, MemRefType, f32, i32, index
from repro.runtime.executor import ExecutionResult, _flow_jitter
from repro.runtime.kernel_runner import KernelRunner
from repro.runtime.opencl import ClContext

KERNEL_NAME = "saxpy_hls"


def build_saxpy_module(unroll: int = 10):
    """Device module holding the hand-written SAXPY kernel."""
    module = new_device_module()
    a_ty = MemRefType(f32, [], 1)
    vec_ty = MemRefType(f32, [DYNAMIC], 1)
    n_ty = MemRefType(i32, [], 1)
    fn, b = add_kernel(module, KERNEL_NAME, [a_ty, vec_ty, vec_ty, n_ty])
    a_arg, x_arg, y_arg, n_arg = fn.body.args
    a_arg.name_hint, x_arg.name_hint = "a", "x"
    y_arg.name_hint, n_arg.name_hint = "y", "n"

    a_val = b.insert(memref.Load(a_arg, [])).results[0]
    n_i32 = b.insert(memref.Load(n_arg, [])).results[0]
    n_idx = b.insert(arith.IndexCast(n_i32, index)).results[0]

    zero = b.insert(arith.Constant.index(0)).results[0]
    one = b.insert(arith.Constant.index(1)).results[0]
    factor = b.insert(arith.Constant.index(unroll)).results[0]
    main_trips = b.insert(arith.DivSI(n_idx, factor)).results[0]
    main_ub = b.insert(arith.MulI(main_trips, factor)).results[0]

    main = b.insert(scf.For(zero, main_ub, factor))
    inner = Builder.at_end(main.body)
    ii = inner.insert(arith.Constant.int(1, 32)).results[0]
    inner.insert(hls.PipelineOp(ii))
    inner.insert(hls.UnrollOp(unroll))
    for j in range(unroll):
        off = inner.insert(arith.Constant.index(j)).results[0]
        idx = inner.insert(arith.AddI(main.induction_var, off)).results[0]
        x_val = inner.insert(memref.Load(x_arg, [idx])).results[0]
        y_val = inner.insert(memref.Load(y_arg, [idx])).results[0]
        new_y = mac(inner, y_val, a_val, x_val, clang_idiom=False)
        inner.insert(memref.Store(new_y, y_arg, [idx]))
    inner.insert(scf.Yield())

    remainder = b.insert(scf.For(main_ub, n_idx, one))
    rem = Builder.at_end(remainder.body)
    x_val = rem.insert(memref.Load(x_arg, [remainder.induction_var])).results[0]
    y_val = rem.insert(memref.Load(y_arg, [remainder.induction_var])).results[0]
    new_y = mac(rem, y_val, a_val, x_val, clang_idiom=False)
    rem.insert(memref.Store(new_y, y_arg, [remainder.induction_var]))
    rem.insert(scf.Yield())

    from repro.dialects import func as func_d

    b.insert(func_d.ReturnOp())
    return module


@dataclass
class HandwrittenSaxpy:
    """Compiled baseline: bitstream + a hand-written-style host driver."""

    board: U280Board
    bitstream: Bitstream

    @staticmethod
    def build(board: U280Board | None = None, unroll: int = 10) -> "HandwrittenSaxpy":
        board = board or U280Board()
        module = build_saxpy_module(unroll)
        return HandwrittenSaxpy(board, VitisCompiler(board).compile(module))

    def run(self, a: float, x: np.ndarray, y: np.ndarray) -> ExecutionResult:
        """One SAXPY offload, mirroring the OpenMP transfer pattern."""
        n = len(x)
        context = ClContext(self.board)
        runner = KernelRunner(self.bitstream)
        buf_a = context.create_buffer("a", (), np.float32, 1)
        buf_x = context.create_buffer("x", (n,), np.float32, 1)
        buf_y = context.create_buffer("y", (n,), np.float32, 1)
        buf_n = context.create_buffer("n", (), np.int32, 1)

        time_s = 0.0
        transfer_s = 0.0
        bytes_h2d = bytes_d2h = 0
        # host -> device (a, x, y map "to"; n via axilite register write)
        for buffer, host in ((buf_a, np.float32(a)), (buf_x, x), (buf_y, y)):
            np.copyto(buffer.data, host)
            dt = self.board.dma_time_s(buffer.nbytes)
            time_s += dt
            transfer_s += dt
            bytes_h2d += buffer.nbytes
        buf_n.data[()] = n

        run = runner.run(
            KERNEL_NAME, buf_a.data, buf_x.data, buf_y.data, buf_n.data
        )
        time_s += self.board.kernel_launch_overhead_s + run.seconds

        # device -> host (x, y map "from" under tofrom)
        for buffer, host in ((buf_x, x), (buf_y, y)):
            np.copyto(host, buffer.data)
            dt = self.board.dma_time_s(buffer.nbytes)
            time_s += dt
            transfer_s += dt
            bytes_d2h += buffer.nbytes

        time_s *= _flow_jitter(f"hand-hls:saxpy:{n}")
        return ExecutionResult(
            device_time_s=time_s,
            kernel_time_s=run.seconds,
            transfer_time_s=transfer_s,
            launches=1,
            transfers=5,
            bytes_h2d=bytes_h2d,
            bytes_d2h=bytes_d2h,
            kernel_cycles=run.cycles,
        )

"""Shared IR-building helpers for the hand-written HLS baseline kernels.

These kernels are constructed directly in the ``hls``+core dialects, the
way AMD's Clang frontend would emit them from hand-written Vitis HLS C —
including the ``clang_mac`` idiom marker on multiply-accumulate patterns
that Vitis recognises and binds to DSP cascades (paper §4 / Table 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.dialects import arith, builtin, func, hls
from repro.ir.attributes import StringAttr, UnitAttr
from repro.ir.builder import Builder
from repro.ir.core import SSAValue
from repro.ir.types import FunctionType, MemRefType


def new_device_module() -> builtin.ModuleOp:
    return builtin.ModuleOp(attributes={"target": StringAttr("fpga")})


def add_kernel(
    module: builtin.ModuleOp,
    name: str,
    arg_types: Sequence[MemRefType],
) -> tuple[func.FuncOp, Builder]:
    """Create a kernel function with Vitis-style interface bindings."""
    fn = func.FuncOp(name, FunctionType(list(arg_types), []))
    module.body.add_op(fn)
    builder = Builder.at_end(fn.body)
    m_axi_code = builder.insert(arith.Constant.int(hls.M_AXI, 32)).results[0]
    m_axi = builder.insert(hls.AxiProtocolOp(m_axi_code)).results[0]
    axilite_code = builder.insert(
        arith.Constant.int(hls.AXILITE, 32)
    ).results[0]
    axilite = builder.insert(hls.AxiProtocolOp(axilite_code)).results[0]
    bundle = 0
    for arg in fn.body.args:
        assert isinstance(arg.type, MemRefType)
        if arg.type.rank == 0:
            builder.insert(hls.InterfaceOp(arg, axilite, "control"))
        else:
            builder.insert(hls.InterfaceOp(arg, m_axi, f"gmem{bundle}"))
            bundle += 1
    return fn, builder


def mac(
    builder: Builder,
    acc: SSAValue,
    lhs: SSAValue,
    rhs: SSAValue,
    *,
    clang_idiom: bool,
) -> SSAValue:
    """acc + lhs*rhs; with ``clang_idiom`` the mul carries the marker
    Vitis pattern-matches into a DSP MAC."""
    mul = builder.insert(arith.MulF(lhs, rhs, fastmath="contract"))
    if clang_idiom:
        mul.attributes["clang_mac"] = UnitAttr()
    return builder.insert(
        arith.AddF(acc, mul.results[0], fastmath="contract")
    ).results[0]

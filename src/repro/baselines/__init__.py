"""Hand-written HLS baselines (the paper's comparison points)."""

from repro.baselines.saxpy_hls import HandwrittenSaxpy, build_saxpy_module
from repro.baselines.sgesl_hls import HandwrittenSgesl, build_sgesl_module

__all__ = [
    "HandwrittenSaxpy",
    "build_saxpy_module",
    "HandwrittenSgesl",
    "build_sgesl_module",
]

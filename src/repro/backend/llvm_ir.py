"""LLVM-IR emission from the (HLS-lowered) device module.

Translates core-dialect functions into textual LLVM-IR: structured
control flow becomes basic blocks with phi nodes, memrefs become typed
pointers (row-major linearised indexing).  The output is what gets handed
to the AMD HLS backend bridge (:mod:`repro.backend.amd_hls`), mirroring
how the real flow feeds ``mlir-opt``-produced LLVM-IR into the Vitis
toolchain (paper §3).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.dialects import func
from repro.ir.attributes import FloatAttr, IntegerAttr, StringAttr, SymbolRefAttr
from repro.ir.core import Block, IRError, Operation, SSAValue
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TypeAttribute,
)


def llvm_type(ty: TypeAttribute) -> str:
    if isinstance(ty, FloatType):
        return "float" if ty.width == 32 else "double"
    if isinstance(ty, IntegerType):
        return f"i{ty.width}"
    if isinstance(ty, IndexType):
        return "i64"
    if isinstance(ty, MemRefType):
        return llvm_type(ty.element_type) + "*"
    if isinstance(ty, NoneType):
        return "void"
    # Opaque dialect types (protocol tokens) become i8* handles.
    return "i8*"


@dataclass
class _FuncEmitter:
    out: io.StringIO
    names: dict[SSAValue, str] = field(default_factory=dict)
    counter: int = 0
    block_names: dict[int, str] = field(default_factory=dict)
    block_counter: int = 0

    def value(self, v: SSAValue) -> str:
        if v not in self.names:
            self.names[v] = f"%v{self.counter}"
            self.counter += 1
        return self.names[v]

    def fresh(self, stem: str = "v") -> str:
        name = f"%{stem}{self.counter}"
        self.counter += 1
        return name

    def block_label(self, key: int) -> str:
        if key not in self.block_names:
            self.block_names[key] = f"bb{self.block_counter}"
            self.block_counter += 1
        return self.block_names[key]

    def line(self, text: str) -> None:
        self.out.write(f"  {text}\n")

    def label(self, name: str) -> None:
        self.out.write(f"{name}:\n")


_BIN_OPS = {
    "arith.addi": "add", "arith.subi": "sub", "arith.muli": "mul",
    "arith.divsi": "sdiv", "arith.remsi": "srem",
    "arith.andi": "and", "arith.ori": "or", "arith.xori": "xor",
    "arith.addf": "fadd", "arith.subf": "fsub",
    "arith.mulf": "fmul", "arith.divf": "fdiv",
}
_CMP = {"eq": "eq", "ne": "ne", "slt": "slt", "sle": "sle",
        "sgt": "sgt", "sge": "sge"}
_FCMP = {"eq": "oeq", "ne": "one", "olt": "olt", "ole": "ole",
         "ogt": "ogt", "oge": "oge"}


class LlvmEmitter:
    """Emits a module's functions as textual LLVM-IR."""

    def __init__(self, llvm_version: int = 20):
        self.llvm_version = llvm_version

    def emit_module(self, module: Operation) -> str:
        out = io.StringIO()
        out.write("; ModuleID = 'device'\n")
        out.write('source_filename = "device.mlir"\n')
        out.write(
            'target datalayout = "e-m:e-i64:64-i128:128-n32:64-S128"\n'
        )
        out.write('target triple = "fpga64-xilinx-none"\n\n')
        declared: set[str] = set()
        for op in module.walk():
            if isinstance(op, func.FuncOp):
                if op.regions and op.regions[0].blocks and op.body.ops:
                    self._emit_func(op, out)
                else:
                    self._emit_decl(op, out, declared)
                out.write("\n")
        return out.getvalue()

    # -- declarations -----------------------------------------------------------------

    def _emit_decl(self, fn: func.FuncOp, out: io.StringIO, seen: set[str]) -> None:
        if fn.sym_name in seen:
            return
        seen.add(fn.sym_name)
        ft = fn.function_type
        args = ", ".join(llvm_type(t) for t in ft.inputs)
        ret = llvm_type(ft.results[0]) if ft.results else "void"
        out.write(f"declare {ret} @{fn.sym_name}({args})\n")

    # -- function bodies ---------------------------------------------------------------

    def _emit_func(self, fn: func.FuncOp, out: io.StringIO) -> None:
        ft = fn.function_type
        emitter = _FuncEmitter(out)
        params = []
        for i, (arg, ty) in enumerate(zip(fn.body.args, ft.inputs)):
            name = f"%arg{i}"
            emitter.names[arg] = name
            params.append(f"{llvm_type(ty)} {name}")
        ret = llvm_type(ft.results[0]) if ft.results else "void"
        out.write(f"define {ret} @{fn.sym_name}({', '.join(params)}) {{\n")
        emitter.label("entry")
        self._emit_block_ops(fn.body, emitter)
        out.write("}\n")

    def _emit_block_ops(self, block: Block, emitter: _FuncEmitter) -> None:
        for op in block.ops:
            self._emit_op(op, emitter)

    def _emit_op(self, op: Operation, emitter: _FuncEmitter) -> None:
        name = op.name
        if name == "arith.constant":
            self._emit_constant(op, emitter)
        elif name in _BIN_OPS:
            lhs = emitter.value(op.operands[0])
            rhs = emitter.value(op.operands[1])
            result = emitter.value(op.results[0])
            ty = llvm_type(op.results[0].type)
            fast = (
                " fast"
                if _BIN_OPS[name].startswith("f")
                and "fastmath" in op.attributes
                else ""
            )
            emitter.line(f"{result} = {_BIN_OPS[name]}{fast} {ty} {lhs}, {rhs}")
        elif name in ("arith.cmpi", "arith.cmpf"):
            predicate = op.attributes["predicate"]
            assert isinstance(predicate, StringAttr)
            lhs = emitter.value(op.operands[0])
            rhs = emitter.value(op.operands[1])
            result = emitter.value(op.results[0])
            ty = llvm_type(op.operands[0].type)
            if name == "arith.cmpi":
                emitter.line(
                    f"{result} = icmp {_CMP[predicate.value]} {ty} {lhs}, {rhs}"
                )
            else:
                emitter.line(
                    f"{result} = fcmp {_FCMP[predicate.value]} {ty} {lhs}, {rhs}"
                )
        elif name == "arith.select":
            c, t, f = (emitter.value(o) for o in op.operands)
            result = emitter.value(op.results[0])
            ty = llvm_type(op.results[0].type)
            emitter.line(f"{result} = select i1 {c}, {ty} {t}, {ty} {f}")
        elif name == "arith.index_cast":
            self._emit_int_resize(op, emitter)
        elif name in ("arith.extsi", "arith.trunci"):
            self._emit_int_resize(op, emitter)
        elif name == "arith.sitofp":
            value = emitter.value(op.operands[0])
            result = emitter.value(op.results[0])
            src = llvm_type(op.operands[0].type)
            dst = llvm_type(op.results[0].type)
            emitter.line(f"{result} = sitofp {src} {value} to {dst}")
        elif name == "arith.fptosi":
            value = emitter.value(op.operands[0])
            result = emitter.value(op.results[0])
            src = llvm_type(op.operands[0].type)
            dst = llvm_type(op.results[0].type)
            emitter.line(f"{result} = fptosi {src} {value} to {dst}")
        elif name == "arith.extf":
            value = emitter.value(op.operands[0])
            result = emitter.value(op.results[0])
            emitter.line(f"{result} = fpext float {value} to double")
        elif name == "arith.truncf":
            value = emitter.value(op.operands[0])
            result = emitter.value(op.results[0])
            emitter.line(f"{result} = fptrunc double {value} to float")
        elif name in ("arith.minimumf", "arith.maximumf",
                      "arith.minsi", "arith.maxsi"):
            self._emit_minmax(op, emitter)
        elif name.startswith("math."):
            self._emit_math(op, emitter)
        elif name == "memref.load":
            self._emit_load(op, emitter)
        elif name == "memref.store":
            self._emit_store(op, emitter)
        elif name in ("memref.alloca", "memref.alloc"):
            self._emit_alloca(op, emitter)
        elif name == "memref.cast":
            emitter.names[op.results[0]] = emitter.value(op.operands[0])
        elif name == "scf.for":
            self._emit_for(op, emitter)
        elif name == "scf.if":
            self._emit_if(op, emitter)
        elif name == "scf.yield":
            pass  # handled by the parent structured op
        elif name == "func.call":
            self._emit_call(op, emitter)
        elif name == "func.return":
            if op.operands:
                value = emitter.value(op.operands[0])
                emitter.line(f"ret {llvm_type(op.operands[0].type)} {value}")
            else:
                emitter.line("ret void")
        elif name in ("hls.axi_protocol", "hls.interface", "hls.pipeline",
                      "hls.unroll"):
            raise IRError(
                "hls ops must be lowered to func.call before LLVM emission "
                "(run lower-hls-to-func)"
            )
        else:
            raise IRError(f"LLVM emission: unsupported op {name}")

    # -- op helpers ------------------------------------------------------------------------

    def _emit_constant(self, op: Operation, emitter: _FuncEmitter) -> None:
        attr = op.attributes["value"]
        result = emitter.value(op.results[0])
        ty = llvm_type(op.results[0].type)
        if isinstance(attr, IntegerAttr):
            emitter.line(f"{result} = add {ty} 0, {attr.value}")
        elif isinstance(attr, FloatAttr):
            emitter.line(f"{result} = fadd {ty} 0.0, {attr.value:e}")
        else:
            raise IRError(f"bad constant {attr}")

    def _emit_int_resize(self, op: Operation, emitter: _FuncEmitter) -> None:
        value = emitter.value(op.operands[0])
        result = emitter.value(op.results[0])
        src_bits = _bits(op.operands[0].type)
        dst_bits = _bits(op.results[0].type)
        src = llvm_type(op.operands[0].type)
        dst = llvm_type(op.results[0].type)
        if src_bits == dst_bits:
            emitter.line(f"{result} = add {dst} 0, {value}")
        elif src_bits < dst_bits:
            emitter.line(f"{result} = sext {src} {value} to {dst}")
        else:
            emitter.line(f"{result} = trunc {src} {value} to {dst}")

    def _emit_minmax(self, op: Operation, emitter: _FuncEmitter) -> None:
        lhs = emitter.value(op.operands[0])
        rhs = emitter.value(op.operands[1])
        result = emitter.value(op.results[0])
        ty = llvm_type(op.results[0].type)
        cond = emitter.fresh("c")
        if op.name in ("arith.minimumf", "arith.maximumf"):
            predicate = "olt" if op.name == "arith.minimumf" else "ogt"
            emitter.line(f"{cond} = fcmp {predicate} {ty} {lhs}, {rhs}")
        else:
            predicate = "slt" if op.name == "arith.minsi" else "sgt"
            emitter.line(f"{cond} = icmp {predicate} {ty} {lhs}, {rhs}")
        emitter.line(f"{result} = select i1 {cond}, {ty} {lhs}, {ty} {rhs}")

    def _emit_math(self, op: Operation, emitter: _FuncEmitter) -> None:
        fn = {
            "math.sqrt": "llvm.sqrt", "math.absf": "llvm.fabs",
            "math.exp": "llvm.exp", "math.log": "llvm.log",
            "math.sin": "llvm.sin", "math.cos": "llvm.cos",
            "math.powf": "llvm.pow",
        }[op.name]
        ty = llvm_type(op.results[0].type)
        suffix = ".f32" if ty == "float" else ".f64"
        args = ", ".join(f"{ty} {emitter.value(o)}" for o in op.operands)
        result = emitter.value(op.results[0])
        emitter.line(f"{result} = call {ty} @{fn}{suffix}({args})")

    def _linear_index(
        self, op: Operation, memref_value: SSAValue, indices, emitter: _FuncEmitter
    ) -> str:
        ty = memref_value.type
        assert isinstance(ty, MemRefType)
        if not indices:
            return emitter.value(memref_value)
        # Row-major linearisation with static extents (dynamic extents use
        # the index values directly — rank-1 in practice).
        linear = None
        for dim, idx in enumerate(indices):
            idx64 = emitter.fresh("i")
            emitter.line(
                f"{idx64} = add i64 0, {emitter.value(idx)}"
            )
            if linear is None:
                linear = idx64
            else:
                extent = ty.shape[dim]
                scaled = emitter.fresh("s")
                emitter.line(f"{scaled} = mul i64 {linear}, {extent}")
                summed = emitter.fresh("s")
                emitter.line(f"{summed} = add i64 {scaled}, {idx64}")
                linear = summed
        elem = llvm_type(ty.element_type)
        gep = emitter.fresh("p")
        emitter.line(
            f"{gep} = getelementptr inbounds {elem}, {elem}* "
            f"{emitter.value(memref_value)}, i64 {linear}"
        )
        return gep

    def _emit_load(self, op: Operation, emitter: _FuncEmitter) -> None:
        ptr = self._linear_index(op, op.operands[0], op.operands[1:], emitter)
        result = emitter.value(op.results[0])
        elem = llvm_type(op.results[0].type)
        emitter.line(f"{result} = load {elem}, {elem}* {ptr}")

    def _emit_store(self, op: Operation, emitter: _FuncEmitter) -> None:
        ptr = self._linear_index(op, op.operands[1], op.operands[2:], emitter)
        elem = llvm_type(op.operands[0].type)
        emitter.line(f"store {elem} {emitter.value(op.operands[0])}, {elem}* {ptr}")

    def _emit_alloca(self, op: Operation, emitter: _FuncEmitter) -> None:
        ty = op.results[0].type
        assert isinstance(ty, MemRefType)
        count = ty.num_elements() if ty.has_static_shape else 1
        elem = llvm_type(ty.element_type)
        result = emitter.value(op.results[0])
        emitter.line(f"{result} = alloca {elem}, i64 {max(count, 1)}")

    def _emit_call(self, op: Operation, emitter: _FuncEmitter) -> None:
        callee = op.attributes["callee"]
        assert isinstance(callee, SymbolRefAttr)
        args = ", ".join(
            f"{llvm_type(o.type)} {emitter.value(o)}" for o in op.operands
        )
        if op.results:
            result = emitter.value(op.results[0])
            ret = llvm_type(op.results[0].type)
            emitter.line(f"{result} = call {ret} @{callee.symbol}({args})")
        else:
            emitter.line(f"call void @{callee.symbol}({args})")

    # -- structured control flow --------------------------------------------------------------

    def _emit_for(self, op: Operation, emitter: _FuncEmitter) -> None:
        lb = emitter.value(op.operands[0])
        ub = emitter.value(op.operands[1])
        step = emitter.value(op.operands[2])
        body = op.regions[0].block
        iv = body.args[0]
        key = id(op)
        header = emitter.block_label(key) + "_header"
        body_label = emitter.block_label(key) + "_body"
        latch = emitter.block_label(key) + "_latch"
        exit_label = emitter.block_label(key) + "_exit"
        iv_name = emitter.fresh("iv")
        emitter.names[iv] = iv_name
        next_iv = emitter.fresh("ivnext")
        pre = emitter.block_label(key) + "_pre"
        emitter.line(f"br label %{pre}")
        emitter.label(pre)
        emitter.line(f"br label %{header}")
        emitter.label(header)
        emitter.line(
            f"{iv_name} = phi i64 [ {lb}, %{pre} ], [ {next_iv}, %{latch} ]"
        )
        cond = emitter.fresh("c")
        emitter.line(f"{cond} = icmp slt i64 {iv_name}, {ub}")
        emitter.line(f"br i1 {cond}, label %{body_label}, label %{exit_label}")
        emitter.label(body_label)
        for inner in body.ops:
            if inner.name != "scf.yield":
                self._emit_op(inner, emitter)
        emitter.line(f"br label %{latch}")
        emitter.label(latch)
        emitter.line(f"{next_iv} = add i64 {iv_name}, {step}")
        emitter.line(f"br label %{header}")
        emitter.label(exit_label)

    def _emit_if(self, op: Operation, emitter: _FuncEmitter) -> None:
        cond = emitter.value(op.operands[0])
        key = id(op)
        then_label = emitter.block_label(key) + "_then"
        else_label = emitter.block_label(key) + "_else"
        join_label = emitter.block_label(key) + "_join"
        emitter.line(
            f"br i1 {cond}, label %{then_label}, label %{else_label}"
        )
        emitter.label(then_label)
        for inner in op.regions[0].block.ops:
            if inner.name != "scf.yield":
                self._emit_op(inner, emitter)
        emitter.line(f"br label %{join_label}")
        emitter.label(else_label)
        for inner in op.regions[1].block.ops:
            if inner.name != "scf.yield":
                self._emit_op(inner, emitter)
        emitter.line(f"br label %{join_label}")
        emitter.label(join_label)


def _bits(ty: TypeAttribute) -> int:
    if isinstance(ty, IntegerType):
        return ty.width
    if isinstance(ty, IndexType):
        return 64
    raise IRError(f"not an integer-like type: {ty.print()}")


def emit_llvm_ir(module: Operation) -> str:
    """Emit LLVM-IR text for a device module (post lower-hls-to-func)."""
    return LlvmEmitter().emit_module(module)

"""Bridge to the AMD HLS backend (the work of reference [19]).

Two jobs, as in the paper:

1. **Primitive mapping** — the ``xlx_*`` runtime calls produced by
   *lower-hls-to-func* become AMD's bespoke ``_ssdm_op_*`` HLS LLVM-IR
   primitives that Vitis HLS's scheduler understands
   (``_ssdm_op_SpecPipeline``, ``_ssdm_op_SpecInterface``, ...).
2. **Downgrade to LLVM 7** — AMD's backend is frozen at LLVM 7, so the
   modern-IR features that Flang-era LLVM emits are rewritten into their
   LLVM-7 spellings.

Both are implemented as textual IR rewrites, exactly the level the [19]
tooling works at.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: xlx runtime symbol -> AMD HLS primitive
SSDM_PRIMITIVES = {
    "xlx_pipeline": "_ssdm_op_SpecPipeline",
    "xlx_unroll": "_ssdm_op_SpecLoopUnroll",
    "xlx_interface": "_ssdm_op_SpecInterface",
    "xlx_axi_protocol": "_ssdm_op_SpecPort",
    "xlx_stream_read": "_ssdm_op_Read.ap_fifo",
    "xlx_stream_write": "_ssdm_op_Write.ap_fifo",
}

#: Modern-IR constructs rewritten for LLVM 7 compatibility.
_DOWNGRADES: list[tuple[str, str]] = [
    # fneg did not exist before LLVM 8.
    (r"(\S+) = fneg (float|double) (\S+)", r"\1 = fsub \2 -0.0, \3"),
    # 'freeze' (LLVM 10+) drops to a move.
    (r"(\S+) = freeze (\S+) (\S+)", r"\1 = add \2 0, \3"),
    # fast-math flag set spelled differently pre-8 (nnan+contract subset).
    (r"\bfadd fast\b", "fadd nnan contract"),
    (r"\bfsub fast\b", "fsub nnan contract"),
    (r"\bfmul fast\b", "fmul nnan contract"),
    (r"\bfdiv fast\b", "fdiv nnan contract"),
]


@dataclass
class AmdHlsArtifact:
    """The LLVM-7 IR handed to the Vitis HLS backend."""

    llvm_ir: str
    primitives_used: list[str] = field(default_factory=list)
    llvm_version: int = 7


def map_to_amd_primitives(llvm_ir: str) -> tuple[str, list[str]]:
    """Replace ``xlx_*`` calls/declares with ``_ssdm_op_*`` primitives."""
    used = []
    text = llvm_ir
    for symbol, primitive in SSDM_PRIMITIVES.items():
        if f"@{symbol}" in text:
            used.append(primitive)
            text = text.replace(f"@{symbol}", f"@{primitive}")
    return text, used


def downgrade_to_llvm7(llvm_ir: str) -> str:
    """Rewrite modern LLVM-IR spellings to LLVM-7-compatible ones."""
    text = llvm_ir
    # LLVM 7 has no opaque pointers; our emitter already uses typed
    # pointers.  Strip source_filename (added in 3.9 but AMD's reader is
    # picky about interleaving) and pin the data layout AMD ships.
    text = re.sub(r'^source_filename = .*\n', "", text, flags=re.MULTILINE)
    for pattern, replacement in _DOWNGRADES:
        text = re.sub(pattern, replacement, text)
    return text


def prepare_for_vitis(llvm_ir: str) -> AmdHlsArtifact:
    """Full [19] path: primitive mapping + LLVM-7 downgrade + runtime
    library linkage (the precompiled stream/conversion helpers)."""
    mapped, used = map_to_amd_primitives(llvm_ir)
    downgraded = downgrade_to_llvm7(mapped)
    linked = downgraded + _runtime_library_ir()
    return AmdHlsArtifact(llvm_ir=linked, primitives_used=used)


def _runtime_library_ir() -> str:
    """Precompiled runtime-library IR (data conversion + stream helpers)
    appended to every kernel, as the paper's flow links its runtime."""
    return (
        "\n; --- ftn runtime library (precompiled) ---\n"
        "define float @ftn_rt_itof(i32 %x) {\n"
        "  %r = sitofp i32 %x to float\n"
        "  ret float %r\n"
        "}\n"
        "define i32 @ftn_rt_ftoi(float %x) {\n"
        "  %r = fptosi float %x to i32\n"
        "  ret i32 %r\n"
        "}\n"
        "define double @ftn_rt_ftod(float %x) {\n"
        "  %r = fpext float %x to double\n"
        "  ret double %r\n"
        "}\n"
        "define float @ftn_rt_stream_read(float* %s) {\n"
        "  %v = load float, float* %s\n"
        "  ret float %v\n"
        "}\n"
        "define void @ftn_rt_stream_write(float* %s, float %v) {\n"
        "  store float %v, float* %s\n"
        "  ret void\n"
        "}\n"
    )

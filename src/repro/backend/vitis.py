"""Simulated Vitis toolchain (``v++``).

Takes the device module (in HLS-dialect form), runs the full backend
path the paper describes — *lower HLS to func call* -> LLVM-IR ->
AMD-primitive mapping + LLVM-7 downgrade -> HLS synthesis -> "RTL"
packaging — and returns a :class:`Bitstream`: kernel schedules, a
utilisation report and the build artifacts.

The synthesis step is the :class:`~repro.fpga.scheduler.HlsScheduler`;
place-and-route is abstracted into the resource totals (shell + kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.backend.amd_hls import AmdHlsArtifact, prepare_for_vitis
from repro.backend.llvm_ir import emit_llvm_ir
from repro.dialects import builtin, func
from repro.fpga.board import U280Board
from repro.fpga.resources import (
    ResourcePercentages,
    ResourceUsage,
    cu_budget_violation,
    shell_usage,
)
from repro.fpga.scheduler import HlsScheduler, KernelSchedule
from repro.reliability.errors import DeviceBuildError, wrap_error


@dataclass
class Bitstream:
    """Result of a (simulated) v++ hardware build."""

    kernels: dict[str, KernelSchedule]
    device_module: builtin.ModuleOp
    board: U280Board
    amd_artifact: AmdHlsArtifact
    #: the post-HLS-lowering LLVM IR before AMD mapping (for inspection)
    llvm_ir: str = ""
    #: physical copies of every kernel on the device; the runtime shards
    #: each kernel's outermost loop across the copies and prices the
    #: launch as the makespan over CUs (see ``runtime/kernel_runner.py``)
    compute_units: int = 1
    #: double-buffered DMA streaming tile size (None = whole-array
    #: transfers); arrays above the tile stream through in tiles whose
    #: transfer overlaps kernel compute in the executor's cycle model
    stream_tile_bytes: int | None = None

    # -- pickling ----------------------------------------------------------
    #
    # ``KernelSchedule.loops`` is keyed by ``id(loop op)`` — the fastest
    # lookup for the kernel runner's per-execution cycle observer, but
    # meaningless once the module is pickled into another process (every
    # op gets a new identity there).  The pickle form therefore re-keys
    # each schedule by the loop op's position in the *deterministic*
    # ``device_module.walk()`` order and restores the identity keys
    # against the unpickled module, so a loaded bitstream charges exactly
    # the same cycles as the one that was saved.

    def __getstate__(self):
        state = dict(self.__dict__)
        walk_index = {
            id(op): i for i, op in enumerate(self.device_module.walk())
        }
        kernels = {}
        for name, kernel in self.kernels.items():
            loops = {}
            for op_id, schedule in kernel.loops.items():
                index = walk_index.get(op_id)
                if index is None:
                    raise DeviceBuildError(
                        f"kernel {name!r} schedules a loop that is not in "
                        "the bitstream's device module; the bitstream "
                        "cannot be serialized consistently"
                    )
                loops[index] = schedule
            kernels[name] = replace(kernel, loops=loops)
        state["kernels"] = kernels
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        ops = list(self.device_module.walk())
        for kernel in self.kernels.values():
            kernel.loops = {
                id(ops[index]): schedule
                for index, schedule in kernel.loops.items()
            }

    @property
    def resources(self) -> ResourceUsage:
        total = shell_usage()
        for kernel in self.kernels.values():
            total = total + kernel.kernel_resources.replicated(
                self.compute_units
            )
        return total

    def utilization(self) -> ResourcePercentages:
        return self.resources.percentages(self.board.resources)

    def report(self) -> str:
        """Vitis-style utilisation summary."""
        pct = self.utilization()
        lines = [
            "== Vitis (simulated) utilization report ==",
            f"Platform: xilinx_u280  kernels: {sorted(self.kernels)}"
            + (
                f"  (x{self.compute_units} compute units)"
                if self.compute_units > 1
                else ""
            ),
            f"LUT : {self.resources.luts:>9}  ({pct.lut:.2f}%)",
            f"BRAM: {self.resources.bram_36k:>9}  ({pct.bram:.2f}%)",
            f"DSP : {self.resources.dsp:>9}  ({pct.dsp:.2f}%)",
        ]
        for name, kernel in sorted(self.kernels.items()):
            for loop_schedule in kernel.loops.values():
                lines.append(
                    f"  {name}: loop II={loop_schedule.achieved_ii} "
                    f"(dep={loop_schedule.dependence_ii}, "
                    f"mem={loop_schedule.memory_ii}, "
                    f"unroll={loop_schedule.unroll_factor})"
                )
        return "\n".join(lines)


class VitisCompiler:
    """The ``v++`` command-line tool, as a class."""

    def __init__(self, board: U280Board | None = None):
        self.board = board or U280Board()

    def compile(
        self,
        device_module: builtin.ModuleOp,
        *,
        compute_units: int = 1,
        stream_tile_bytes: int | None = None,
    ) -> Bitstream:
        """Hardware build: schedule/bind every kernel, produce artifacts.

        The module must already be in HLS-dialect form (post
        *lower-omp-to-hls*); this method does not mutate it — the LLVM
        path runs on a clone so the scheduler sees the ``hls`` ops.

        ``compute_units=N`` replicates every kernel N× on the fabric;
        the replicated design is validated against the board's LUT/DSP/
        BRAM place-and-route budgets and an over-budget N raises a typed
        :class:`DeviceBuildError` (the build never silently clamps).
        ``stream_tile_bytes`` records the double-buffered streaming tile
        the executor's DMA model uses.
        """
        if device_module.target != "fpga":
            raise DeviceBuildError(
                "VitisCompiler.compile expects the target=\"fpga\" module"
            )
        if not isinstance(compute_units, int) or compute_units < 1:
            raise DeviceBuildError(
                f"compute_units must be a positive integer, got "
                f"{compute_units!r}"
            )
        if stream_tile_bytes is not None and (
            not isinstance(stream_tile_bytes, int) or stream_tile_bytes < 1
        ):
            raise DeviceBuildError(
                f"stream_tile_bytes must be a positive integer or None, "
                f"got {stream_tile_bytes!r}"
            )
        scheduler = HlsScheduler(self.board)
        kernels: dict[str, KernelSchedule] = {}
        for fn in device_module.walk_type(func.FuncOp):
            if not fn.body.ops:
                continue  # declaration
            try:
                kernels[fn.sym_name] = scheduler.schedule(fn)
            except DeviceBuildError:
                raise
            except Exception as error:
                raise wrap_error(
                    error,
                    DeviceBuildError,
                    kernel=fn.sym_name,
                    context="hls scheduling",
                ) from error

        # Budget validation: the replicated kernel logic must fit the
        # device.  Checked per build (not per kernel) because all CUs of
        # all kernels share one fabric.
        kernel_total = ResourceUsage()
        for kernel in kernels.values():
            kernel_total = kernel_total + kernel.kernel_resources
        violation = cu_budget_violation(
            kernel_total, self.board.resources, compute_units
        )
        if violation is not None:
            raise DeviceBuildError(
                f"multi-CU build does not fit the device: {violation}",
                context=f"kernels={sorted(kernels)}",
            )

        # LLVM path (on a clone, preserving the HLS-form module).
        from repro.transforms.lower_hls_to_func import LowerHlsToFuncPass

        clone = device_module.clone()
        LowerHlsToFuncPass().apply(clone)
        llvm_ir = emit_llvm_ir(clone)
        artifact = prepare_for_vitis(llvm_ir)

        return Bitstream(
            kernels=kernels,
            device_module=device_module,
            board=self.board,
            amd_artifact=artifact,
            llvm_ir=llvm_ir,
            compute_units=compute_units,
            stream_tile_bytes=stream_tile_bytes,
        )

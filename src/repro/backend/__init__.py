"""Backend: host C++/OpenCL printer, LLVM-IR emission, AMD HLS bridge,
and the simulated Vitis toolchain."""

from repro.backend.amd_hls import (
    AmdHlsArtifact,
    downgrade_to_llvm7,
    map_to_amd_primitives,
    prepare_for_vitis,
)
from repro.backend.host_codegen import HostCodePrinter, generate_host_code
from repro.backend.llvm_ir import LlvmEmitter, emit_llvm_ir
from repro.backend.vitis import Bitstream, VitisCompiler

__all__ = [
    "AmdHlsArtifact",
    "downgrade_to_llvm7",
    "map_to_amd_primitives",
    "prepare_for_vitis",
    "HostCodePrinter",
    "generate_host_code",
    "LlvmEmitter",
    "emit_llvm_ir",
    "Bitstream",
    "VitisCompiler",
]

"""Compile service subsystem: content-addressed artifact store + pool.

Public surface:

* :class:`~repro.service.store.ArtifactStore` /
  :class:`~repro.service.store.ArtifactKey` — two-tier (memory LRU over
  disk) content-addressed storage of pickled stage artifacts with
  integrity-checked loads;
* :class:`~repro.service.service.CompileService` /
  :class:`~repro.service.service.CompileRequest` — the request front
  door: cache lookup, request coalescing, bounded admission into a
  process pool of build workers;
* :class:`~repro.service.service.ServiceMetrics` /
  :class:`~repro.service.service.ServiceStats` — per-request and
  aggregate accounting, rendered by :mod:`repro.reporting`.
"""

from repro.service.service import (
    CompileRequest,
    CompileService,
    ServiceMetrics,
    ServiceResponse,
    ServiceStats,
    build_stage_payload,
    reset_worker_sessions,
)
from repro.service.store import (
    STAGES,
    STORE_VERSION,
    ArtifactKey,
    ArtifactStore,
    StoredArtifact,
    StoreStats,
    canonical_source,
)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CompileRequest",
    "CompileService",
    "ServiceMetrics",
    "ServiceResponse",
    "ServiceStats",
    "StoreStats",
    "StoredArtifact",
    "STAGES",
    "STORE_VERSION",
    "build_stage_payload",
    "canonical_source",
    "reset_worker_sessions",
]

"""Content-addressed artifact store for compiled stage artifacts.

Every cacheable pipeline product — a frontend module, a host/device
split, a device build, an assembled :class:`~repro.session.CompiledProgram`
— is addressed by an :class:`ArtifactKey`: a stable SHA-256 digest of
(canonical source text, :class:`~repro.session.TargetConfig`, stage
name, :class:`~repro.session.KernelOverrides`).  Identical requests from
any process therefore resolve to the same address, which is what lets
the compile service (:mod:`repro.service.service`) serve a cache hit
instead of recompiling.

Two tiers:

* an **in-memory LRU** of pickled payloads (bounded entry count), and
* an **on-disk tier** persisting ``<digest>.pkl`` payloads next to a
  ``<digest>.json`` metadata record (stage, modelled metrics, payload
  SHA-256), surviving process restarts and shared between workers.

**Integrity is checked on load**: a disk payload whose SHA-256 does not
match its metadata record — or a metadata record addressing a different
key — raises a typed
:class:`~repro.reliability.errors.DataIntegrityError`.  The store never
deserializes a corrupt payload, so a flipped bit on disk costs a rebuild,
never a silently wrong artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.reliability.errors import DataIntegrityError
from repro.session import KernelOverrides, TargetConfig

#: Bump together with the on-disk layout / key serialization.
STORE_VERSION = 1

#: Stage names the store addresses, in pipeline order.
STAGES = ("frontend", "host_device", "device_build", "program")


def canonical_source(text: str) -> str:
    """Canonical form of a Fortran source: normalized line endings,
    trailing whitespace stripped per line, no leading/trailing blank
    lines.  Requests differing only in incidental whitespace share one
    artifact address."""
    lines = [
        line.rstrip() for line in text.replace("\r\n", "\n").split("\n")
    ]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class ArtifactKey:
    """Content address of one stage artifact.

    ``overrides`` only participates for device-side stages (the frontend
    and host/device split do not depend on it), so a DSE sweep's points
    share their frontend/host addresses.
    """

    source: str
    target: TargetConfig = field(default_factory=TargetConfig)
    stage: str = "program"
    overrides: KernelOverrides = field(default_factory=KernelOverrides)

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(
                f"unknown stage {self.stage!r}; expected one of {STAGES}"
            )

    @property
    def digest(self) -> str:
        """The stable content address (SHA-256 hex)."""
        source_digest = hashlib.sha256(
            canonical_source(self.source).encode()
        ).hexdigest()
        overrides_digest = (
            self.overrides.digest()
            if self.stage in ("device_build", "program")
            else "-"
        )
        text = "|".join(
            (
                f"artifact/v{STORE_VERSION}",
                source_digest,
                self.target.digest(),
                self.stage,
                overrides_digest,
            )
        )
        return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class StoredArtifact:
    """One store hit: the pickled payload plus its metadata record."""

    digest: str
    payload: bytes
    metadata: dict
    #: which tier served it ("memory" or "disk")
    tier: str = "memory"

    def load(self):
        """Deserialize a *fresh* artifact object.

        Every caller gets an independent object graph — two requests
        never share mutable IR state through the cache.
        """
        return pickle.loads(self.payload)


@dataclass
class StoreStats:
    """Tier-level counters (the service adds request-level metrics)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    integrity_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
        }


class ArtifactStore:
    """Two-tier (memory LRU over disk) content-addressed artifact store.

    Thread-safe: the service front door calls it from request threads
    and pool callbacks concurrently.  ``root=None`` disables the disk
    tier (a pure in-process cache).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_entries: int = 64,
    ):
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        self._lock = threading.Lock()
        #: digest -> (payload, metadata); ordered oldest-first
        self._memory: OrderedDict[str, tuple[bytes, dict]] = OrderedDict()
        self.stats = StoreStats()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _paths(self, digest: str) -> tuple[Path, Path]:
        assert self.root is not None
        shard = self.root / digest[:2]
        return shard / f"{digest}.pkl", shard / f"{digest}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, key: "ArtifactKey | str") -> StoredArtifact | None:
        """The stored artifact for ``key``, or ``None`` on a miss.

        Raises :class:`DataIntegrityError` when the on-disk entry fails
        its checksum — the caller decides whether to rebuild (the
        compile service does, after evicting the corrupt entry).
        """
        digest = key if isinstance(key, str) else key.digest
        with self._lock:
            entry = self._memory.get(digest)
            if entry is not None:
                self._memory.move_to_end(digest)
                self.stats.memory_hits += 1
                payload, metadata = entry
                return StoredArtifact(digest, payload, metadata, "memory")
        stored = self._read_disk(digest)
        if stored is None:
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.disk_hits += 1
            self._remember(digest, stored.payload, stored.metadata)
        return stored

    def _read_disk(self, digest: str) -> StoredArtifact | None:
        if self.root is None:
            return None
        payload_path, meta_path = self._paths(digest)
        if not payload_path.exists() or not meta_path.exists():
            return None
        try:
            metadata = json.loads(meta_path.read_text())
        except (OSError, ValueError) as error:
            with self._lock:
                self.stats.integrity_failures += 1
            raise DataIntegrityError(
                f"artifact store: unreadable metadata for {digest}",
                context=str(meta_path),
            ) from error
        payload = payload_path.read_bytes()
        actual = hashlib.sha256(payload).hexdigest()
        if (
            metadata.get("payload_sha256") != actual
            or metadata.get("key_digest") != digest
        ):
            with self._lock:
                self.stats.integrity_failures += 1
            raise DataIntegrityError(
                f"artifact store: payload checksum mismatch for {digest} "
                f"(recorded {metadata.get('payload_sha256')!r}, actual "
                f"{actual!r})",
                context=str(payload_path),
            )
        return StoredArtifact(digest, payload, metadata, "disk")

    # -- insertion ---------------------------------------------------------

    def put(
        self,
        key: "ArtifactKey | str",
        artifact_or_payload,
        metrics: dict | None = None,
        *,
        stage: str | None = None,
    ) -> StoredArtifact:
        """Store an artifact (object, pickled here — or pre-pickled
        ``bytes`` from a worker) with its modelled ``metrics`` record."""
        digest = key if isinstance(key, str) else key.digest
        if stage is None and isinstance(key, ArtifactKey):
            stage = key.stage
        payload = (
            artifact_or_payload
            if isinstance(artifact_or_payload, bytes)
            else pickle.dumps(
                artifact_or_payload, protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        metadata = {
            "store_version": STORE_VERSION,
            "key_digest": digest,
            "stage": stage,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "metrics": dict(metrics or {}),
        }
        self._write_disk(digest, payload, metadata)
        with self._lock:
            self.stats.puts += 1
            self._remember(digest, payload, metadata)
        return StoredArtifact(digest, payload, metadata, "memory")

    def _write_disk(self, digest: str, payload: bytes, metadata: dict):
        if self.root is None:
            return
        payload_path, meta_path = self._paths(digest)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publication: payload first, metadata (the commit record)
        # second — a crash between the two leaves an entry whose partner
        # is missing, which reads as a miss, never as corruption.
        for path, data in (
            (payload_path, payload),
            (meta_path, (json.dumps(metadata, indent=1) + "\n").encode()),
        ):
            tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
            tmp.write_bytes(data)
            os.replace(tmp, path)

    def _remember(self, digest: str, payload: bytes, metadata: dict):
        """Insert into the memory LRU (caller holds the lock)."""
        if self.memory_entries == 0:
            return
        self._memory[digest] = (payload, metadata)
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- management --------------------------------------------------------

    def delete(self, key: "ArtifactKey | str") -> bool:
        """Drop an entry from both tiers (used by the service to evict a
        corrupt disk record before rebuilding)."""
        digest = key if isinstance(key, str) else key.digest
        with self._lock:
            removed = self._memory.pop(digest, None) is not None
        if self.root is not None:
            for path in self._paths(digest):
                try:
                    path.unlink()
                    removed = True
                except FileNotFoundError:
                    pass
        return removed

    def clear_memory(self) -> None:
        """Empty the in-memory tier (disk entries survive) — the warm
        vs cold bench uses this to time a pure disk hit."""
        with self._lock:
            self._memory.clear()

    def __contains__(self, key: "ArtifactKey | str") -> bool:
        digest = key if isinstance(key, str) else key.digest
        with self._lock:
            if digest in self._memory:
                return True
        if self.root is None:
            return False
        payload_path, meta_path = self._paths(digest)
        return payload_path.exists() and meta_path.exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

"""The multi-tenant compile service: cache front door + worker pool.

:class:`CompileService` fronts the content-addressed
:class:`~repro.service.store.ArtifactStore` with a
``concurrent.futures`` **process pool** that executes cache-miss stage
builds::

    with CompileService(store=ArtifactStore(root)) as service:
        response = service.compile(CompileRequest(source))
        response.artifact.run(...)          # a fresh CompiledProgram
        print(response.metrics.outcome)     # "built" | "memory_hit" | ...

Request lifecycle:

1. the request's :class:`~repro.service.store.ArtifactKey` digest is
   computed — identical (source, target, stage, overrides) requests get
   identical addresses;
2. if a build for that digest is already **in flight**, the request
   *coalesces*: it attaches as a waiter and the one build's result fans
   out to every waiter (N concurrent identical requests = 1 build);
3. otherwise the store is consulted (memory tier, then disk with
   integrity checking — a corrupt entry is evicted and rebuilt, never
   served);
4. a miss is admitted to the pool only while the number of in-flight
   builds is below ``queue_depth``; past that the request is rejected
   with a typed, transient
   :class:`~repro.reliability.errors.AdmissionRejected`;
5. the worker builds the stage artifact in its own process and returns
   the pickled payload + modelled metrics; the parent persists it to the
   store and resolves every waiter with an independently deserialized
   artifact.

Every response carries per-request :class:`ServiceMetrics` (queue wait,
build time, outcome) and the service aggregates :class:`ServiceStats`
counters; :mod:`repro.reporting` renders both.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

from repro.reliability.errors import (
    AdmissionRejected,
    DataIntegrityError,
    ServiceError,
)
from repro.service.store import ArtifactKey, ArtifactStore, StoredArtifact
from repro.session import KernelOverrides, Session, TargetConfig


@dataclass(frozen=True)
class CompileRequest:
    """One compile/run request: what to build, addressed by content."""

    source: str
    target: TargetConfig = field(default_factory=TargetConfig)
    overrides: KernelOverrides = field(default_factory=KernelOverrides)
    stage: str = "program"

    def key(self) -> ArtifactKey:
        return ArtifactKey(
            source=self.source,
            target=self.target,
            stage=self.stage,
            overrides=self.overrides,
        )


@dataclass
class ServiceMetrics:
    """Per-request accounting, attached to every response."""

    digest: str
    outcome: str  # "memory_hit" | "disk_hit" | "built" | "coalesced"
    queue_wait_s: float = 0.0
    build_s: float = 0.0
    total_s: float = 0.0


@dataclass
class ServiceStats:
    """Service-level counters across all requests."""

    requests: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    coalesced: int = 0
    builds: int = 0
    build_failures: int = 0
    rejected: int = 0
    integrity_rebuilds: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "builds": self.builds,
            "build_failures": self.build_failures,
            "rejected": self.rejected,
            "integrity_rebuilds": self.integrity_rebuilds,
        }


@dataclass
class ServiceResponse:
    """A resolved request: the (freshly deserialized) artifact + metrics."""

    artifact: object
    metrics: ServiceMetrics
    #: the store metadata record (stage, modelled metrics, payload size)
    metadata: dict = field(default_factory=dict)


#: Per-process staged-session cache: a pool worker keeps its frontend +
#: host/device artifacts warm across builds of the same source, so a DSE
#: sweep's points (same source, different overrides) cost one frontend
#: compile per worker instead of one per point.
_WORKER_SESSIONS: "OrderedDict[tuple[str, str], Session]" = OrderedDict()
_WORKER_SESSION_LIMIT = 4


def _worker_session(source: str, target: TargetConfig) -> Session:
    key = (source, target.digest())
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        while len(_WORKER_SESSIONS) >= _WORKER_SESSION_LIMIT:
            _WORKER_SESSIONS.popitem(last=False)
        session = Session(source, target=target)
        _WORKER_SESSIONS[key] = session
    else:
        _WORKER_SESSIONS.move_to_end(key)
    return session


def reset_worker_sessions() -> None:
    """Drop this process's staged-session cache (benchmarks call this to
    time a genuinely cold build; workers never need to)."""
    _WORKER_SESSIONS.clear()


def build_stage_payload(
    source: str,
    target: TargetConfig,
    overrides: KernelOverrides,
    stage: str,
) -> tuple[bytes, dict]:
    """Build one stage artifact and return (pickled payload, metrics).

    Runs inside a pool worker (module-level so it pickles by reference);
    also the inline build path when the service runs with
    ``max_workers=0``.  A failure raises into the parent — the
    reliability taxonomy's wrapped errors survive that pickling hop.
    """
    start = perf_counter()
    session = _worker_session(source, target)
    if stage == "frontend":
        artifact = session.frontend()
    elif stage == "host_device":
        artifact = session.host_device()
    elif stage == "device_build":
        artifact = session.device_build(overrides)
    elif stage == "program":
        artifact = session.program(overrides)
    else:
        raise ServiceError(f"unknown build stage {stage!r}")
    payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    metrics: dict = {"build_s": round(perf_counter() - start, 6)}
    bitstream = getattr(artifact, "bitstream", None)
    if bitstream is not None:
        utilization = bitstream.utilization()
        metrics["lut_pct"] = utilization.lut
        metrics["dsp_pct"] = utilization.dsp
        metrics["achieved_iis"] = [
            sched.achieved_ii
            for kernel in bitstream.kernels.values()
            for sched in kernel.loops.values()
        ]
    if stage in ("device_build", "program"):
        # the payload holds the pickled copy; drop the live build so the
        # long-lived worker session stays flat across a sweep
        session.release_build(overrides)
    return payload, metrics


class _PendingBuild:
    """One in-flight build: the primary waiter plus coalesced joiners."""

    __slots__ = ("key", "waiters")

    def __init__(self, key: ArtifactKey):
        self.key = key
        #: (future, submit time, outcome label) per waiter
        self.waiters: list[tuple[Future, float, str]] = []


class CompileService:
    """Content-addressed compile service over a process pool of workers.

    ``max_workers=0`` builds inline in the submitting thread (no pool) —
    deterministic and fork-free, for tests and single-user embedding;
    any positive count spins up a ``ProcessPoolExecutor``.  Thread-safe:
    ``submit``/``compile`` may be called from many request threads.
    """

    def __init__(
        self,
        *,
        store: ArtifactStore | None = None,
        max_workers: int = 2,
        queue_depth: int = 8,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.store = store if store is not None else ArtifactStore()
        self.queue_depth = queue_depth
        self._pool = (
            ProcessPoolExecutor(max_workers=max_workers)
            if max_workers > 0
            else None
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, _PendingBuild] = {}
        self.stats = ServiceStats()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def warm_pool(self) -> None:
        """Spin the worker processes up eagerly (benchmarks call this so
        pool start-up cost is not attributed to the first request)."""
        if self._pool is not None:
            list(self._pool.map(_noop, range(self._pool._max_workers)))

    # -- the front door ----------------------------------------------------

    def compile(self, request: CompileRequest) -> ServiceResponse:
        """Submit and block for the response."""
        return self.submit(request).result()

    def submit(self, request: CompileRequest) -> "Future[ServiceResponse]":
        """Resolve a request through cache / coalescing / the pool.

        Returns a future; raises :class:`AdmissionRejected` *immediately*
        (never via the future) when the bounded build queue is full.
        """
        t0 = perf_counter()
        key = request.key()
        digest = key.digest
        future: Future = Future()

        with self._lock:
            if self._closed:
                raise ServiceError("compile service is closed")
            self.stats.requests += 1
            pending = self._inflight.get(digest)
            if pending is not None:
                # Coalesce: ride the in-flight build, no new work.
                self.stats.coalesced += 1
                pending.waiters.append((future, t0, "coalesced"))
                return future

        stored = self._lookup(key)
        if stored is not None:
            outcome = f"{stored.tier}_hit"
            with self._lock:
                if stored.tier == "memory":
                    self.stats.memory_hits += 1
                else:
                    self.stats.disk_hits += 1
            self._resolve(future, stored, outcome, t0)
            return future

        with self._lock:
            # Re-check under the lock: another thread may have started
            # (or even finished) the same build while we probed the store.
            pending = self._inflight.get(digest)
            if pending is not None:
                self.stats.coalesced += 1
                pending.waiters.append((future, t0, "coalesced"))
                return future
            if len(self._inflight) >= self.queue_depth:
                self.stats.rejected += 1
                raise AdmissionRejected(
                    f"admission queue full ({self.queue_depth} builds in "
                    "flight); resubmit after a backoff",
                    context=f"digest={digest[:12]}",
                )
            self.stats.misses += 1
            pending = _PendingBuild(key)
            pending.waiters.append((future, t0, "built"))
            self._inflight[digest] = pending

        self._start_build(request, digest)
        return future

    # -- internals ---------------------------------------------------------

    def _lookup(self, key: ArtifactKey) -> StoredArtifact | None:
        """Store probe; a corrupt disk entry is evicted for rebuild."""
        try:
            return self.store.get(key)
        except DataIntegrityError:
            with self._lock:
                self.stats.integrity_rebuilds += 1
            self.store.delete(key)
            return None

    def _start_build(self, request: CompileRequest, digest: str) -> None:
        args = (
            request.source, request.target, request.overrides, request.stage,
        )
        if self._pool is None:
            done: Future = Future()
            try:
                done.set_result(build_stage_payload(*args))
            except BaseException as error:  # noqa: BLE001 — fan out as-is
                done.set_exception(error)
            self._on_built(digest, done)
        else:
            pool_future = self._pool.submit(build_stage_payload, *args)
            pool_future.add_done_callback(
                lambda f: self._on_built(digest, f)
            )

    def _on_built(self, digest: str, pool_future: Future) -> None:
        with self._lock:
            pending = self._inflight.pop(digest, None)
        if pending is None:  # pragma: no cover - defensive
            return
        error = pool_future.exception()
        if error is not None:
            with self._lock:
                self.stats.build_failures += 1
            for future, _, _ in pending.waiters:
                future.set_exception(error)
            return
        payload, build_metrics = pool_future.result()
        stored = self.store.put(pending.key, payload, build_metrics)
        with self._lock:
            self.stats.builds += 1
        for future, t0, outcome in pending.waiters:
            self._resolve(future, stored, outcome, t0)

    def _resolve(
        self,
        future: Future,
        stored: StoredArtifact,
        outcome: str,
        t0: float,
    ) -> None:
        try:
            artifact = stored.load()
            total = perf_counter() - t0
            build_s = float(
                stored.metadata.get("metrics", {}).get("build_s", 0.0)
            )
            charged_build = build_s if outcome == "built" else 0.0
            metrics = ServiceMetrics(
                digest=stored.digest,
                outcome=outcome,
                build_s=charged_build,
                queue_wait_s=max(0.0, total - charged_build),
                total_s=total,
            )
            future.set_result(
                ServiceResponse(
                    artifact=artifact,
                    metrics=metrics,
                    metadata=stored.metadata,
                )
            )
        except BaseException as error:  # noqa: BLE001 — surface, don't hang
            if not future.done():
                future.set_exception(error)


def _noop(_index: int) -> None:
    """Pool warm-up task (module-level so it pickles)."""
    return None

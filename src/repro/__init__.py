"""repro — an MLIR pipeline for offloading Fortran to FPGAs via OpenMP.

Reproduction of Rodriguez-Canal, Katz & Brown (SC Workshops '25): a pure
Python implementation of the complete flow — an MLIR/xDSL-style IR
infrastructure, a Fortran+OpenMP frontend, the paper's ``device`` dialect
and transformation passes, the HLS dialect of Stencil-HMLS, the AMD HLS
backend bridge, a simulated Vitis toolchain and U280 board, and the
OpenCL-style host runtime.

The public API is the staged session (each stage computed once, cached
by its options, later stages re-runnable with different overrides)::

    from repro import KernelOverrides, Session

    session = Session(FORTRAN_SOURCE)
    program = session.program()            # full Figure-2 flow
    result = program.run()                 # simulated U280 execution
    print(program.bitstream.report())      # Vitis-style utilisation

    wide = session.program(KernelOverrides(simdlen=8))  # device build only

:func:`compile_fortran` remains as the one-shot convenience over a fresh
session.  Pass pipelines are declarative
(``PassManager.parse("lower-omp-to-hls{reduction_copies=4},cse")``) and
observable through :class:`Instrumentation` (stage snapshots, per-pass
timing, artifact-build counters).

Cross-process, the compile service (:mod:`repro.service`) fronts a
content-addressed :class:`~repro.service.ArtifactStore` with a process
pool — identical requests hit cache (or coalesce into one in-flight
build) instead of recompiling::

    from repro import ArtifactStore, CompileRequest, CompileService

    with CompileService(store=ArtifactStore("/var/cache/repro")) as svc:
        program = svc.compile(CompileRequest(FORTRAN_SOURCE)).artifact
"""

from repro.analysis import Diagnostic, DiagnosticEngine
from repro.ir.pass_manager import Instrumentation, PassManager, PipelineStage
from repro.pipeline import CompiledProgram, compile_fortran, compile_workload
from repro.service import (
    ArtifactKey,
    ArtifactStore,
    CompileRequest,
    CompileService,
)
from repro.session import (
    DeviceBuild,
    FrontendArtifact,
    HostDeviceArtifact,
    KernelOverrides,
    Session,
    TargetConfig,
    device_pipeline,
    host_device_pipeline,
)

__version__ = "1.3.0"

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CompileRequest",
    "CompileService",
    "CompiledProgram",
    "DeviceBuild",
    "Diagnostic",
    "DiagnosticEngine",
    "FrontendArtifact",
    "HostDeviceArtifact",
    "Instrumentation",
    "KernelOverrides",
    "PassManager",
    "PipelineStage",
    "Session",
    "TargetConfig",
    "compile_fortran",
    "compile_workload",
    "device_pipeline",
    "host_device_pipeline",
    "__version__",
]

"""repro — an MLIR pipeline for offloading Fortran to FPGAs via OpenMP.

Reproduction of Rodriguez-Canal, Katz & Brown (SC Workshops '25): a pure
Python implementation of the complete flow — an MLIR/xDSL-style IR
infrastructure, a Fortran+OpenMP frontend, the paper's ``device`` dialect
and transformation passes, the HLS dialect of Stencil-HMLS, the AMD HLS
backend bridge, a simulated Vitis toolchain and U280 board, and the
OpenCL-style host runtime.

Quickstart::

    from repro import compile_fortran

    program = compile_fortran(FORTRAN_SOURCE)
    result = program.run()                 # simulated U280 execution
    print(program.bitstream.report())      # Vitis-style utilisation
"""

from repro.pipeline import CompiledProgram, PipelineStage, compile_fortran

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "PipelineStage",
    "compile_fortran",
    "__version__",
]

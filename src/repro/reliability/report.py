"""Per-run reliability reports: what faulted, what was retried, what
degraded.

A :class:`RunReport` is created fresh for every
:meth:`~repro.runtime.executor.FpgaExecutor.run` and attached to the
returned :class:`~repro.runtime.executor.ExecutionResult` as
``result.report``.  Retries and backoff are *priced into the report* —
never into ``device_time_ms`` / ``kernel_cycles`` — so a run that
recovers from transient faults stays bit-identical to the fault-free
baseline in every modelled value.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

logger = logging.getLogger("repro.reliability")


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence observed during a run."""

    site: str          # alloc | dma_start | dma_wait | kernel_launch
    kind: str          # fail | hang | bitflip
    transient: bool
    attempt: int       # 1-based attempt number that hit the fault
    kernel: str | None = None
    detail: str = ""


@dataclass(frozen=True)
class Degradation:
    """One engine-tier fallback taken during a run."""

    tier_from: str     # "vectorized" | "block-jit"
    tier_to: str       # "scalar"
    where: str         # function / loop the degradation happened in
    reason: str


@dataclass
class RunReport:
    """Reliability record of one executor run (see module docstring)."""

    faults: list[FaultEvent] = field(default_factory=list)
    degradations: list[Degradation] = field(default_factory=list)
    #: retries performed after transient faults (all sites combined)
    retries: int = 0
    #: simulated backoff accumulated across retries — a *separate* clock
    #: from the command queue, so modelled device time stays fault-free
    backoff_s: float = 0.0
    #: the kernel watchdog step budget in force, if any
    watchdog_budget: int | None = None
    #: whether the run reached the end of the host program
    completed: bool = False

    # -- recording ---------------------------------------------------------------------

    def record_fault(
        self,
        site: str,
        kind: str,
        transient: bool,
        attempt: int,
        kernel: str | None = None,
        detail: str = "",
    ) -> None:
        self.faults.append(
            FaultEvent(site, kind, transient, attempt, kernel, detail)
        )

    def record_retry(self, backoff_s: float) -> None:
        self.retries += 1
        self.backoff_s += backoff_s

    def record_degradation(
        self, tier_from: str, tier_to: str, where: str, reason: str
    ) -> None:
        self.degradations.append(
            Degradation(tier_from, tier_to, where, reason)
        )

    # -- introspection -----------------------------------------------------------------

    @property
    def faults_hit(self) -> int:
        return len(self.faults)

    @property
    def recovered(self) -> bool:
        """True when faults were hit but the run still completed."""
        return self.completed and bool(self.faults or self.degradations)

    def summary(self) -> str:
        parts = [
            f"completed={self.completed}",
            f"faults={len(self.faults)}",
            f"retries={self.retries}",
            f"backoff_s={self.backoff_s:.6f}",
            f"degradations={len(self.degradations)}",
        ]
        return "RunReport(" + ", ".join(parts) + ")"


def record_degradation(interp, tier_from: str, tier_to: str, where: str,
                       error: BaseException) -> None:
    """Log an engine-tier fallback and record it on the interpreter's
    attached :class:`RunReport` (if an executor armed one).

    This is the reliability counterpart of the *reasoned* bail-out log on
    ``repro.ir.vectorize``: a reasoned bail is expected and logged at
    DEBUG there; a degradation means an engine **crashed** and the next
    tier took over, so it is logged at WARNING here.
    """
    logger.warning(
        "engine degradation: %s -> %s at %s: %r",
        tier_from, tier_to, where, error,
    )
    report = getattr(interp, "reliability_report", None)
    if report is not None:
        report.record_degradation(tier_from, tier_to, where, repr(error))

"""Deterministic retry/backoff policy for transient device faults.

Backoff is *simulated-clock*: the delay for attempt ``k`` is a pure
function of the policy parameters and ``k`` (no wall clock, no RNG), and
it accumulates on :attr:`RunReport.backoff_s` rather than the command
queue — recovered runs therefore reproduce the fault-free
``device_time_ms`` bit-for-bit while the report still prices the
recovery work.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff."""

    #: total attempts (first try included); 3 means "retry twice"
    max_attempts: int = 3
    #: simulated delay before the first retry
    backoff_base_s: float = 1e-3
    #: multiplier applied per subsequent retry
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor <= 0:
            raise ValueError("backoff parameters must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Simulated delay after failed attempt ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


#: policy used when an executor arms faults without choosing one
DEFAULT_RETRY_POLICY = RetryPolicy()

"""Seeded, deterministic fault injection for the simulated device runtime.

A :class:`FaultPlan` is a set of :class:`FaultSpec` entries, each naming
an injection *site* (a device-op class the executor runs), the dynamic
*occurrence* of that site to hit, a fault *kind*, and whether it is
transient (recoverable by a bounded retry) or persistent.  Arm a plan on
an executor::

    plan = FaultPlan.from_seed(7)                 # or hand-written specs
    executor = program.executor(fault_plan=plan)
    result = executor.run("saxpy", *args)
    result.report.faults                           # what was injected

The hook mirrors the :class:`~repro.ir.pass_manager.Instrumentation`
pattern: when no plan is armed the executor's fault slot is ``None`` and
every site costs exactly one attribute check — no behavioural or
accounting difference.  The chaos conformance suite
(``tests/reliability/``) asserts the contract: under *any* plan a run
either completes **bit-identical** to the fault-free baseline (outputs
and ``steps``/``device_time_ms``/``kernel_cycles``; retries and backoff
priced into the :class:`~repro.reliability.report.RunReport` only) or
raises a typed :class:`~repro.reliability.errors.ReproError` — never a
silently wrong result.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.reliability.errors import (
    DeviceAllocationError,
    DeviceRuntimeError,
    DmaError,
)
from repro.reliability.report import RunReport
from repro.reliability.retry import DEFAULT_RETRY_POLICY, RetryPolicy

#: injection sites: the device-op classes the executor guards
SITES = ("alloc", "dma_start", "dma_wait", "kernel_launch")
#: fault kinds; "hang" and "bitflip" are kernel_launch-only
KINDS = ("fail", "hang", "bitflip")

#: typed error raised per site when a "fail" fault wins
SITE_ERRORS: dict[str, type[DeviceRuntimeError]] = {
    "alloc": DeviceAllocationError,
    "dma_start": DmaError,
    "dma_wait": DmaError,
    "kernel_launch": DeviceRuntimeError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault (see module docstring)."""

    #: injection site (one of :data:`SITES`)
    site: str
    #: "fail" (op errors before doing work), "hang" (kernel runs out of
    #: step budget mid-execution) or "bitflip" (kernel output corrupted,
    #: detected on readback) — the latter two only at kernel_launch
    kind: str = "fail"
    #: which dynamic occurrence of the site fires (0-based)
    index: int = 0
    #: transient faults recover once retried past ``fail_count``
    transient: bool = True
    #: failing attempts before a transient fault clears (1-based)
    fail_count: int = 1
    #: restrict kernel-site faults to one kernel name (None = any)
    kernel: str | None = None
    #: bitflip target buffer name (None = first array argument)
    buffer: str | None = None
    #: injected step budget simulating the hang (must be small enough
    #: that the kernel cannot finish inside it)
    hang_steps: int = 16
    #: which bit to flip (modulo the target's size)
    bit: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind != "fail" and self.site != "kernel_launch":
            raise ValueError(
                f"{self.kind!r} faults only apply to kernel_launch"
            )
        if self.fail_count < 1:
            raise ValueError("fail_count must be >= 1")


class FaultPlan:
    """An immutable, seed-reproducible collection of faults."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int | None = None):
        self.specs = tuple(specs)
        self.seed = seed

    def __repr__(self) -> str:
        label = f"seed={self.seed}, " if self.seed is not None else ""
        return f"FaultPlan({label}{list(self.specs)!r})"

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        n_faults: int = 1,
        sites: Sequence[str] = SITES,
        max_index: int = 4,
        transient_ratio: float = 0.5,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan: same seed, same plan."""
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            site = rng.choice(list(sites))
            kind = (
                rng.choice(list(KINDS)) if site == "kernel_launch" else "fail"
            )
            transient = rng.random() < transient_ratio
            specs.append(
                FaultSpec(
                    site=site,
                    kind=kind,
                    index=rng.randrange(max_index),
                    transient=transient,
                    fail_count=rng.randint(1, 2) if transient else 1,
                    hang_steps=rng.randint(8, 32),
                    bit=rng.randrange(256),
                )
            )
        return cls(specs, seed=seed)

    def controller(
        self,
        report: RunReport,
        policy: RetryPolicy | None = None,
    ) -> "FaultController":
        """Fresh per-run controller (occurrence counters reset)."""
        return FaultController(self, report, policy or DEFAULT_RETRY_POLICY)


class FaultController:
    """Per-run matching + retry bookkeeping for one armed plan.

    Occurrence counters advance once per *logical* site event; retries of
    the same event re-consult the matched spec via :meth:`fires` rather
    than consuming a new occurrence, so transient recovery is
    deterministic across tiers.
    """

    def __init__(
        self, plan: FaultPlan, report: RunReport, policy: RetryPolicy
    ):
        self.plan = plan
        self.report = report
        self.policy = policy
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in plan.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._counts: Counter = Counter()

    def poll(self, site: str, kernel: str | None = None) -> FaultSpec | None:
        """Advance the site's occurrence counter; return the matched
        spec, if any."""
        occurrence = self._counts[site]
        self._counts[site] = occurrence + 1
        for spec in self._by_site.get(site, ()):
            if spec.index != occurrence:
                continue
            if spec.kernel is not None and spec.kernel != kernel:
                continue
            return spec
        return None

    @staticmethod
    def fires(spec: FaultSpec, attempt: int) -> bool:
        """Whether the fault still manifests on 1-based ``attempt``."""
        return (not spec.transient) or attempt <= spec.fail_count

    def resolve(
        self, spec: FaultSpec, site: str, kernel: str | None = None
    ) -> None:
        """Simulated detect->retry->backoff loop for faults that fire
        *before* the op's work begins (alloc OOM, DMA command errors,
        kernel launch failures).  Returns normally when a transient
        fault clears within the retry budget — the op then executes its
        fault-free semantics, so accounting stays bit-identical; raises
        the site's typed error otherwise.
        """
        policy = self.policy
        error_cls = SITE_ERRORS[site]
        for attempt in range(1, policy.max_attempts + 1):
            if not self.fires(spec, attempt):
                return  # recovered
            self.report.record_fault(
                site, spec.kind, spec.transient, attempt, kernel=kernel
            )
            if not spec.transient or attempt == policy.max_attempts:
                raise error_cls(
                    f"injected {spec.kind} fault at {site} "
                    f"(occurrence {spec.index}, attempt {attempt})",
                    kernel=kernel,
                    transient=spec.transient,
                )
            self.report.record_retry(policy.backoff_s(attempt))

"""Reliability layer: error taxonomy, fault injection, retry, reports.

See :mod:`repro.reliability.errors` for the typed error hierarchy,
:mod:`repro.reliability.faults` for seeded deterministic fault plans,
:mod:`repro.reliability.retry` for the deterministic backoff policy and
:mod:`repro.reliability.report` for the per-run :class:`RunReport`.
"""

from repro.reliability.errors import (
    AdmissionRejected,
    DataIntegrityError,
    DeviceAllocationError,
    DeviceBuildError,
    DeviceRuntimeError,
    DmaError,
    EngineError,
    FrontendError,
    LoweringError,
    ReproError,
    ServiceError,
    WatchdogTimeout,
    wrap_error,
)
from repro.reliability.faults import (
    KINDS,
    SITES,
    FaultController,
    FaultPlan,
    FaultSpec,
)
from repro.reliability.report import (
    Degradation,
    FaultEvent,
    RunReport,
    record_degradation,
)
from repro.reliability.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "AdmissionRejected",
    "ServiceError",
    "DataIntegrityError",
    "DeviceAllocationError",
    "DeviceBuildError",
    "DeviceRuntimeError",
    "DmaError",
    "EngineError",
    "FrontendError",
    "LoweringError",
    "ReproError",
    "WatchdogTimeout",
    "wrap_error",
    "KINDS",
    "SITES",
    "FaultController",
    "FaultPlan",
    "FaultSpec",
    "Degradation",
    "FaultEvent",
    "RunReport",
    "record_degradation",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
]

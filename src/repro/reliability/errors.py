"""Structured error taxonomy for the whole pipeline.

Every failure the reproduction can raise toward a user is a
:class:`ReproError` carrying *where* it happened (``stage``), *which
kernel* was involved when known (``kernel``) and a short source/op
``context`` string.  The concrete classes mirror the pipeline stages::

    ReproError
      +-- FrontendError       (parse / sema / Fortran->core lowering)
      +-- LoweringError       (device-dialect + omp->HLS transforms)
      +-- DeviceBuildError    (simulated Vitis synthesis)
      +-- DeviceRuntimeError  (simulated board execution)
      |     +-- DeviceAllocationError   (device.alloc out-of-memory)
      |     +-- DmaError               (DMA start/wait failure)
      |     +-- DataIntegrityError     (bit-flip detected on readback)
      |     +-- WatchdogTimeout        (kernel step budget exhausted)
      +-- EngineError         (execution-tier internal failure)

``LoweringError`` and ``DeviceBuildError`` also subclass
:class:`~repro.ir.core.IRError` so existing callers catching ``IRError``
keep working; :func:`wrap_error` upgrades a foreign exception into the
taxonomy *while preserving its original type* (the wrapped class
inherits from both), so ``except SemanticError`` and ``except
FrontendError`` both match the same raised object.

Transient vs. persistent: errors produced by the fault-injection layer
carry ``transient=True`` when a bounded retry is expected to succeed;
the retry machinery in :mod:`repro.reliability.faults` keys off that
flag.  Errors that escape to the caller are final — a transient fault
that exhausted its retries is raised with the flag still set so reports
can distinguish "gave up retrying" from "never retryable".
"""

from __future__ import annotations

from repro.ir.core import IRError


class ReproError(Exception):
    """Base of the pipeline error taxonomy (see module docstring)."""

    #: default stage name for the subclass (overridden per class)
    default_stage: str | None = None
    #: whether a bounded retry is expected to succeed
    transient: bool = False

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        kernel: str | None = None,
        context: str | None = None,
        transient: bool | None = None,
        line: int = -1,
    ):
        self.stage = stage if stage is not None else self.default_stage
        self.kernel = kernel
        self.context = context
        if transient is not None:
            self.transient = transient
        detail = []
        if self.stage:
            detail.append(f"stage={self.stage}")
        if kernel:
            detail.append(f"kernel={kernel}")
        if context:
            detail.append(f"context={context}")
        if line >= 0:
            detail.append(f"line={line}")
        text = f"{message} [{', '.join(detail)}]" if detail else message
        super().__init__(text)
        #: originating source line (Fortran, 1-based); -1 when unknown.
        #: Assigned after super().__init__: in wrapped hybrids (see
        #: wrap_error) the cooperative chain reaches the original class's
        #: __init__, whose default would clobber an earlier assignment.
        self.line = line


class FrontendError(ReproError):
    """Parse/sema/lowering failure in the Fortran frontend."""

    default_stage = "frontend"


class LoweringError(ReproError, IRError):
    """Failure inside the device-dialect / omp->HLS transform passes."""

    default_stage = "lowering"


class DeviceBuildError(ReproError, IRError):
    """Failure during the simulated Vitis hardware build."""

    default_stage = "device_build"


class DeviceRuntimeError(ReproError):
    """Failure on the simulated board at execution time."""

    default_stage = "device_runtime"


class DeviceAllocationError(DeviceRuntimeError):
    """``device.alloc`` could not satisfy the request (simulated OOM)."""


class DmaError(DeviceRuntimeError):
    """A DMA start/wait command failed on the simulated queue."""


class DataIntegrityError(DeviceRuntimeError):
    """Readback checksum mismatch: a buffer was corrupted in flight."""


class WatchdogTimeout(DeviceRuntimeError):
    """A kernel exceeded its watchdog step budget (simulated hang)."""


class EngineError(ReproError):
    """Internal failure of an execution tier (vectorizer / block-JIT)."""

    default_stage = "engine"


class ServiceError(ReproError):
    """Failure inside the compile service (:mod:`repro.service`)."""

    default_stage = "service"


class AdmissionRejected(ServiceError):
    """The service's bounded admission queue is full.

    Transient by construction: the request was never started, so
    resubmitting after a backoff is expected to succeed once the queue
    drains — callers can key retry loops off :attr:`transient`.
    """

    transient = True


# ---------------------------------------------------------------------------
# Foreign-exception adoption
# ---------------------------------------------------------------------------

#: (taxonomy base, original class) -> combined class
_WRAPPED: dict[tuple[type, type], type] = {}


def _restore_wrapped(
    base: type, original: type, args: tuple, state: dict
) -> BaseException:
    """Pickle reconstructor for a dynamically created wrapped class.

    The combined class cannot be found by the default ``module.qualname``
    lookup (it exists only in the ``_WRAPPED`` cache), so the wrapped
    instance pickles as *this function plus the (base, original) key*:
    unpickling re-creates (or reuses) the cached class in the receiving
    process and restores the instance without re-running ``__init__`` —
    exactly what lets a worker process raise a wrapped error across the
    process-pool boundary.
    """
    cls = _wrapped_class(base, original)
    err = cls.__new__(cls)
    err.args = tuple(args)
    err.__dict__.update(state)
    return err


def _wrapped_class(base: type, cls: type) -> type:
    """The cached ``(base, cls)`` combined class (create on first use)."""
    key = (base, cls)
    wrapped = _WRAPPED.get(key)
    if wrapped is None:

        def __reduce__(self, _base=base, _cls=cls):
            return (
                _restore_wrapped,
                (_base, _cls, self.args, dict(self.__dict__)),
            )

        try:
            wrapped = type(
                f"{base.__name__}:{cls.__name__}",
                (base, cls),
                {"__reduce__": __reduce__},
            )
        except TypeError:  # incompatible layout: fall back to the base
            wrapped = base
        _WRAPPED[key] = wrapped
    return wrapped


def wrap_error(
    error: BaseException,
    base: type[ReproError],
    *,
    stage: str | None = None,
    kernel: str | None = None,
    context: str | None = None,
) -> ReproError:
    """A taxonomy error that is *also* an instance of ``type(error)``.

    Callers catching the original class (``SemanticError``,
    ``IRError``, ...) and callers catching the taxonomy class both match
    the returned object, so adopting an error into the taxonomy never
    breaks an existing ``except`` clause.  Raise the result ``from
    error`` so the originating traceback (source line, op context) stays
    on the chain.  Wrapped instances survive pickling (e.g. a worker
    raising across a process pool): they reconstruct through the class
    cache via :func:`_restore_wrapped`.
    """
    if isinstance(error, base):
        return error
    wrapped = _wrapped_class(base, type(error))
    line = getattr(error, "line", -1)
    return wrapped(
        str(error),
        stage=stage,
        kernel=kernel,
        context=context,
        line=line if isinstance(line, int) else -1,
    )

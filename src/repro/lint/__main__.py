"""Entry point for ``python -m repro.lint``."""

import sys

from repro.lint import main

sys.exit(main())

"""``python -m repro.lint`` — kernel static analysis from the shell.

Runs the :mod:`repro.analysis` checker (races, carried dependences,
typed IR verification) over Fortran sources and prints source-located
diagnostics::

    python -m repro.lint kernel.f90                  # text report
    python -m repro.lint examples/ --format=json     # machine-readable
    python -m repro.lint --gallery --werror          # CI gate

Inputs may be ``.f90``/``.f`` files, directories (scanned recursively
for both), or ``.py`` files — Fortran embedded in Python string
literals (the ``examples/`` idiom) is extracted with the ``ast`` module
and each snippet is linted separately.  ``--gallery`` adds every
registered gallery workload.  Exit status is 0 when clean, 1 when any
error fires (or any warning under ``--werror``), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, LintReport

#: A string is Fortran when a *line* opens a program unit — prose that
#: merely mentions "subroutine" (docstrings) must not match.
_FORTRAN_UNIT_RE = re.compile(
    r"^[ \t]*(?:subroutine[ \t]+\w+[ \t]*\(|program[ \t]+\w+)",
    re.IGNORECASE | re.MULTILINE,
)


def looks_like_fortran(text: str) -> bool:
    return _FORTRAN_UNIT_RE.search(text) is not None


def extract_fortran_literals(py_source: str) -> list[tuple[int, str]]:
    """``(line, source)`` for every Fortran-looking string literal in a
    Python file — the ``examples/`` embedding idiom."""
    try:
        tree = ast.parse(py_source)
    except SyntaxError:
        return []
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and looks_like_fortran(node.value)
        ):
            found.append((node.lineno, node.value))
    return found


def lint_source(source: str, name: str) -> LintReport:
    """Compile ``source`` through the frontend and run the checker."""
    from repro.analysis import check_module
    from repro.reliability.errors import FrontendError
    from repro.session import Session

    try:
        module = Session(source).frontend().module
    except FrontendError as err:
        line = getattr(err, "line", -1)
        return LintReport(
            name,
            [
                Diagnostic(
                    "error",
                    "TYPE001",
                    f"frontend rejected the source: {err}",
                    kernel="",
                    line=line if isinstance(line, int) and line > 0 else 0,
                )
            ],
        )
    return LintReport(name, check_module(module).sorted())


def collect_sources(
    paths: list[str], *, gallery: bool = False
) -> list[tuple[str, str]]:
    """Resolve CLI inputs to ``(display name, fortran source)`` pairs."""
    sources: list[tuple[str, str]] = []
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.f90")))
            files.extend(sorted(path.rglob("*.f")))
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for path in files:
        if not path.exists():
            raise FileNotFoundError(path)
        text = path.read_text()
        if path.suffix == ".py":
            for line, literal in extract_fortran_literals(text):
                sources.append((f"{path}:{line}", literal))
        else:
            sources.append((str(path), text))
    if gallery:
        import repro.workloads  # noqa: F401  (populates the registry)
        from repro.workloads.base import all_workloads

        for workload in all_workloads():
            sources.append((f"gallery:{workload.name}", workload.source))
    return sources


def render_text(reports: list[LintReport], *, werror: bool) -> str:
    lines: list[str] = []
    failed = 0
    errors = warnings = 0
    for report in reports:
        errors += report.errors
        warnings += report.warnings
        if report.failed(werror):
            failed += 1
        for diag in report.diagnostics:
            lines.append(f"{report.source_name}: {diag.format()}")
    lines.append(
        f"{len(reports)} source(s) linted: {errors} error(s), "
        f"{warnings} warning(s)"
        + (" [warnings are errors]" if werror else "")
    )
    return "\n".join(lines)


def render_json(reports: list[LintReport], *, werror: bool) -> str:
    return json.dumps(
        {
            "sources": [
                {
                    "source": report.source_name,
                    "failed": report.failed(werror),
                    "diagnostics": [
                        d.as_dict() for d in report.diagnostics
                    ],
                }
                for report in reports
            ],
            "werror": werror,
        },
        indent=2,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Kernel static analysis over Fortran+OpenMP sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".f90/.f/.py files or directories (py: embedded literals)",
    )
    parser.add_argument(
        "--gallery",
        action="store_true",
        help="also lint every registered gallery workload",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format_",
        metavar="text|json",
    )
    parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors for the exit status",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.gallery:
        parser.print_usage(sys.stderr)
        print("error: no inputs (pass paths or --gallery)", file=sys.stderr)
        return 2
    try:
        sources = collect_sources(args.paths, gallery=args.gallery)
    except FileNotFoundError as err:
        print(f"error: no such file: {err}", file=sys.stderr)
        return 2
    reports = [lint_source(source, name) for name, source in sources]
    renderer = render_json if args.format_ == "json" else render_text
    print(renderer(reports, werror=args.werror))
    return 1 if any(r.failed(args.werror) for r in reports) else 0

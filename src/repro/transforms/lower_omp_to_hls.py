"""The *lower omp loops to HLS* pass (paper Figure 2, device side).

Runs on the ``target = "fpga"`` module.  For every kernel function:

* each memref argument gets an ``hls.interface`` binding to its own
  ``m_axi`` bundle (``gmem0``, ``gmem1``, ... — paper Listing 4);
* ``omp.parallel``/``omp.wsloop``/``omp.loop_nest`` becomes a pipelined
  ``scf.for`` whose body starts with ``hls.pipeline(%ii)``;
* an ``omp.simd`` wrapper with ``simdlen(F)`` performs *partial
  unrolling* by F (main loop with step F plus a remainder loop), marked
  with ``hls.unroll`` so the backend replicates functional units;
* ``reduction`` clauses are rewritten into F (or a static default of 8)
  round-robin partial accumulators combined after the loop (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import arith, func, hls, memref, omp, scf
from repro.ir.builder import Builder
from repro.ir.core import Operation, Region, SSAValue
from repro.ir.pass_manager import ModulePass, PassOption, register_pass
from repro.ir.types import FloatType, IntegerType, MemRefType
from repro.reliability.errors import LoweringError, wrap_error


def _enclosing_kernel(op: Operation) -> str | None:
    """Symbol name of the ``func.func`` containing ``op``, if any."""
    from repro.ir.attributes import StringAttr

    fn = op.get_parent_of_type(func.FuncOp)
    if fn is None:
        return None
    sym = fn.attributes.get("sym_name")
    return sym.value if isinstance(sym, StringAttr) else None


_IDENTITY = {
    "add": lambda ty: 0,
    "mul": lambda ty: 1,
    "max": lambda ty: -3.0e38 if isinstance(ty, FloatType) and ty.width == 32
    else (-1.0e308 if isinstance(ty, FloatType) else -(2**31)),
    "min": lambda ty: 3.0e38 if isinstance(ty, FloatType) and ty.width == 32
    else (1.0e308 if isinstance(ty, FloatType) else 2**31 - 1),
}


def _combine_op(kind: str, ty, lhs: SSAValue, rhs: SSAValue) -> Operation:
    is_float = isinstance(ty, FloatType)
    table = {
        ("add", True): arith.AddF, ("add", False): arith.AddI,
        ("mul", True): arith.MulF, ("mul", False): arith.MulI,
        ("max", True): arith.MaxF, ("max", False): arith.MaxSI,
        ("min", True): arith.MinF, ("min", False): arith.MinSI,
    }
    cls = table[(kind, is_float)]
    if is_float:
        return cls(lhs, rhs, fastmath="contract")
    return cls(lhs, rhs)


def _const_for(ty, value) -> arith.Constant:
    if isinstance(ty, FloatType):
        return arith.Constant.float(float(value), ty.width)
    if isinstance(ty, IntegerType):
        return arith.Constant.int(int(value), ty.width)
    raise LoweringError(
        f"cannot materialize reduction identity of type {ty.print()}"
    )


@dataclass
class _Reduction:
    var: SSAValue          # the rank-0 device memref being reduced
    kind: str              # add | mul | max | min
    copies: SSAValue = None  # memref<N x T> of partial accumulators  # type: ignore[assignment]
    ncopies: int = 0


class LowerOmpToHlsPass(ModulePass):
    """Lower OpenMP loop constructs in the device module to HLS form."""

    name = "lower-omp-to-hls"

    options = (
        PassOption(
            "reduction_copies", int, 8,
            "round-robin partial accumulators when no simdlen applies",
        ),
        PassOption("target_ii", int, 1, "pipeline initiation-interval goal"),
        PassOption(
            "shared_bundle", bool, False,
            "bind every array to one shared m_axi bundle (ablation)",
        ),
        PassOption(
            "simdlen", int, None,
            "override the directive's simdlen unroll factor (1 disables "
            "unrolling; unset respects the source directive)",
        ),
    )

    def __init__(
        self,
        reduction_copies: int = 8,
        target_ii: int = 1,
        shared_bundle: bool = False,
        simdlen: int | None = None,
        *,
        default_reduction_copies: int | None = None,
    ):
        if default_reduction_copies is not None:  # pre-Session spelling
            reduction_copies = default_reduction_copies
        self.reduction_copies = reduction_copies
        self.target_ii = target_ii
        #: ablation knob: True binds every array to one shared m_axi
        #: bundle instead of the paper's one-bundle-per-argument choice.
        self.shared_bundle = shared_bundle
        #: when set, wins over (or supplies) the ``omp.simd`` factor —
        #: the DSE sweep knob that replaced source-text rewriting.
        self.simdlen = simdlen

    @property
    def default_reduction_copies(self) -> int:
        return self.reduction_copies

    def apply(self, module: Operation) -> None:
        for fn in list(module.walk_type(func.FuncOp)):
            self._add_interfaces(fn)
        for par in [op for op in module.walk() if op.name == "omp.parallel"]:
            if par.parent is not None:
                kernel = _enclosing_kernel(par)
                try:
                    self._lower_parallel(par)
                except LoweringError as error:
                    if error.kernel is None:
                        error.kernel = kernel
                    raise
                except Exception as error:
                    raise wrap_error(
                        error,
                        LoweringError,
                        kernel=kernel,
                        context="omp.parallel lowering",
                    ) from error
        leftovers = sorted(
            {op.name for op in module.walk() if op.name.startswith("omp.")}
        )
        if leftovers:
            raise LoweringError(
                f"lower-omp-to-hls left omp ops behind: {leftovers}",
                context=self.name,
            )

    # -- interfaces ------------------------------------------------------------------

    def _add_interfaces(self, fn: func.FuncOp) -> None:
        """Bind kernel arguments to ports: arrays get their own ``m_axi``
        bundle (gmem0, gmem1, ...); rank-0 scalars go through the
        ``s_axilite`` control interface, as Vitis maps value arguments."""
        if not fn.regions or not fn.regions[0].blocks:
            return
        body = fn.body
        builder = Builder.at_start(body)
        memref_args = [a for a in body.args if isinstance(a.type, MemRefType)]
        if not memref_args:
            return
        m_axi_code = builder.insert(arith.Constant.int(hls.M_AXI, 32))
        m_axi = builder.insert(hls.AxiProtocolOp(m_axi_code.results[0]))
        axilite_code = builder.insert(arith.Constant.int(hls.AXILITE, 32))
        axilite = builder.insert(hls.AxiProtocolOp(axilite_code.results[0]))
        bundle_index = 0
        for arg in memref_args:
            assert isinstance(arg.type, MemRefType)
            if arg.type.rank == 0:
                builder.insert(
                    hls.InterfaceOp(arg, axilite.results[0], "control")
                )
            else:
                bundle = "gmem0" if self.shared_bundle else f"gmem{bundle_index}"
                builder.insert(
                    hls.InterfaceOp(arg, m_axi.results[0], bundle)
                )
                bundle_index += 1

    # -- loop lowering ------------------------------------------------------------------

    def _lower_parallel(self, par: Operation) -> None:
        wsloop = self._only_child(par, "omp.wsloop")
        simd_op = self._maybe_child(wsloop, "omp.simd")
        nest_parent = simd_op if simd_op is not None else wsloop
        nest = self._only_child(nest_parent, "omp.loop_nest")
        assert isinstance(nest, omp.LoopNestOp)

        builder = Builder.before(par)
        one = builder.insert(arith.Constant.index(1)).results[0]
        ub_exs = [
            builder.insert(arith.AddI(ub, one)).results[0] for ub in nest.ubs
        ]
        lb, step = nest.lbs[-1], nest.steps[-1]
        ub_ex = ub_exs[-1]

        source_factor = simd_op.simdlen if isinstance(simd_op, omp.SimdOp) else 1
        factor = self.simdlen if self.simdlen is not None else source_factor
        reductions = self._setup_reductions(
            wsloop, builder, factor if factor > 1 else self.reduction_copies
        )

        # collapse(n) nests: materialize the outer n-1 dimensions as plain
        # (unpipelined) scf.for loops; only the innermost dimension is
        # pipelined/unrolled below.  The outer induction variables replace
        # the nest's leading block args when the body is cloned.
        inner_builder = builder
        outer_map: dict[SSAValue, SSAValue] = {}
        outer_loops: list[Operation] = []
        for dim in range(nest.rank - 1):
            outer = inner_builder.insert(
                scf.For(nest.lbs[dim], ub_exs[dim], nest.steps[dim])
            )
            outer.induction_var.name_hint = nest.body.args[dim].name_hint
            outer_map[nest.body.args[dim]] = outer.induction_var
            outer_loops.append(outer)
            inner_builder = Builder.at_end(outer.body)

        if factor <= 1 and not reductions and nest.rank == 1:
            self._emit_pipelined_for(inner_builder, nest, lb, ub_ex, step)
        elif factor <= 1:
            self._emit_cloned_loop(
                inner_builder, nest, lb, ub_ex, step, reductions, outer_map
            )
            nest.erase(safe=False)
        else:
            self._emit_unrolled(
                inner_builder, nest, lb, ub_ex, step, factor, reductions,
                outer_map,
            )

        for outer in outer_loops:
            Builder.at_end(outer.regions[0].block).insert(scf.Yield())

        self._combine_reductions(builder, reductions)
        par.erase(safe=False)

    @staticmethod
    def _only_child(op: Operation, name: str) -> Operation:
        for child in op.regions[0].block.ops:
            if child.name == name:
                return child
        raise LoweringError(
            f"{op.name} does not contain a {name}", context=op.name
        )

    @staticmethod
    def _maybe_child(op: Operation, name: str) -> Operation | None:
        for child in op.regions[0].block.ops:
            if child.name == name:
                return child
        return None

    # -- reduction plumbing ------------------------------------------------------------

    def _setup_reductions(
        self, wsloop: Operation, builder: Builder, ncopies: int
    ) -> list[_Reduction]:
        assert isinstance(wsloop, omp.WsLoopOp)
        reductions = []
        for var, kind in zip(wsloop.reduction_vars, wsloop.reduction_kinds):
            var_ty = var.type
            assert isinstance(var_ty, MemRefType) and var_ty.rank == 0, (
                "reduction variables must be rank-0 memrefs"
            )
            elem = var_ty.element_type
            copies = builder.insert(
                memref.Alloca(MemRefType(elem, [ncopies]))
            ).results[0]
            identity = builder.insert(
                _const_for(elem, _IDENTITY[kind](elem))
            ).results[0]
            for slot in range(ncopies):
                slot_idx = builder.insert(arith.Constant.index(slot)).results[0]
                builder.insert(memref.Store(identity, copies, [slot_idx]))
            reductions.append(
                _Reduction(var=var, kind=kind, copies=copies, ncopies=ncopies)
            )
        return reductions

    def _combine_reductions(
        self, builder: Builder, reductions: list[_Reduction]
    ) -> None:
        for red in reductions:
            elem = red.var.type.element_type  # type: ignore[union-attr]
            acc = builder.insert(memref.Load(red.var, [])).results[0]
            for slot in range(red.ncopies):
                slot_idx = builder.insert(arith.Constant.index(slot)).results[0]
                partial = builder.insert(
                    memref.Load(red.copies, [slot_idx])
                ).results[0]
                acc = builder.insert(
                    _combine_op(red.kind, elem, acc, partial)
                ).results[0]
            builder.insert(memref.Store(acc, red.var, []))

    # -- loop body emission -------------------------------------------------------------

    def _emit_pipelined_for(
        self,
        builder: Builder,
        nest: omp.LoopNestOp,
        lb: SSAValue,
        ub_ex: SSAValue,
        step: SSAValue,
    ) -> None:
        """Fast path: transplant the loop body (paper Listing 4 shape)."""
        body: Region = nest.regions[0]
        nest.regions.remove(body)
        body.parent = None
        block = body.block
        last = block.last_op
        if isinstance(last, omp.YieldOp):
            last.erase()
        block.add_op(scf.Yield())
        loop = scf.For(lb, ub_ex, step, [], body)
        builder.insert(loop)
        inner = Builder.at_start(loop.body)
        ii = inner.insert(arith.Constant.int(self.target_ii, 32))
        inner.goto_after(ii)
        inner.insert(hls.PipelineOp(ii.results[0]))
        nest.erase(safe=False)

    def _emit_cloned_loop(
        self,
        builder: Builder,
        nest: omp.LoopNestOp,
        lb: SSAValue,
        ub_ex: SSAValue,
        step: SSAValue,
        reductions: list[_Reduction],
        outer_map: dict[SSAValue, SSAValue] | None = None,
    ) -> None:
        """Pipelined loop with body cloning (reduction redirection)."""
        loop = builder.insert(scf.For(lb, ub_ex, step))
        inner = Builder.at_end(loop.body)
        ii = inner.insert(arith.Constant.int(self.target_ii, 32)).results[0]
        inner.insert(hls.PipelineOp(ii))
        self._instantiate_body(
            inner, nest, loop.induction_var, lb, step, reductions, outer_map
        )
        inner.insert(scf.Yield())

    def _emit_unrolled(
        self,
        builder: Builder,
        nest: omp.LoopNestOp,
        lb: SSAValue,
        ub_ex: SSAValue,
        step: SSAValue,
        factor: int,
        reductions: list[_Reduction],
        outer_map: dict[SSAValue, SSAValue] | None = None,
    ) -> None:
        """Partial unrolling by ``factor``: main loop + remainder loop."""
        factor_c = builder.insert(arith.Constant.index(factor)).results[0]
        chunk = builder.insert(arith.MulI(step, factor_c)).results[0]
        span = builder.insert(arith.SubI(ub_ex, lb)).results[0]
        trips = builder.insert(arith.DivSI(span, chunk)).results[0]
        main_len = builder.insert(arith.MulI(trips, chunk)).results[0]
        main_ub = builder.insert(arith.AddI(lb, main_len)).results[0]

        main = builder.insert(scf.For(lb, main_ub, chunk))
        inner = Builder.at_end(main.body)
        ii = inner.insert(arith.Constant.int(self.target_ii, 32)).results[0]
        inner.insert(hls.PipelineOp(ii))
        inner.insert(hls.UnrollOp(factor))
        for j in range(factor):
            offset = inner.insert(arith.Constant.index(j)).results[0]
            scaled = inner.insert(arith.MulI(step, offset)).results[0]
            iv_j = inner.insert(
                arith.AddI(main.induction_var, scaled)
            ).results[0]
            self._instantiate_body(
                inner, nest, iv_j, lb, step, reductions, outer_map
            )
        inner.insert(scf.Yield())

        remainder = builder.insert(scf.For(main_ub, ub_ex, step))
        rem_inner = Builder.at_end(remainder.body)
        self._instantiate_body(
            rem_inner, nest, remainder.induction_var, lb, step, reductions,
            outer_map,
        )
        rem_inner.insert(scf.Yield())
        nest.erase(safe=False)

    def _instantiate_body(
        self,
        builder: Builder,
        nest: omp.LoopNestOp,
        iv: SSAValue,
        lb: SSAValue,
        step: SSAValue,
        reductions: list[_Reduction],
        outer_map: dict[SSAValue, SSAValue] | None = None,
    ) -> None:
        """Clone the loop-nest body at ``iv`` (the innermost dimension;
        ``outer_map`` substitutes outer collapse dimensions), redirecting
        reduction accesses into the round-robin copy buffers."""
        slot: SSAValue | None = None
        if reductions:
            # The slot must dominate the cloned body ops that use it.
            slot = self._slot_value(builder, iv, lb, step, reductions[0].ncopies)
        value_map: dict[SSAValue, SSAValue] = dict(outer_map or {})
        value_map[nest.body.args[-1]] = iv
        cloned: list[Operation] = []
        for op in nest.body.ops:
            if isinstance(op, omp.YieldOp):
                continue
            new_op = op.clone(value_map)
            builder.insert(new_op)
            cloned.append(new_op)
        if not reductions:
            return
        red_by_var = {red.var: red for red in reductions}
        for op in cloned:
            for inner_op in list(op.walk()):
                self._redirect_reduction_access(inner_op, red_by_var, slot)

    def _slot_value(
        self,
        builder: Builder,
        iv: SSAValue,
        lb: SSAValue,
        step: SSAValue,
        ncopies: int,
    ) -> SSAValue:
        offset = builder.insert(arith.SubI(iv, lb)).results[0]
        trip = builder.insert(arith.DivSI(offset, step)).results[0]
        n = builder.insert(arith.Constant.index(ncopies)).results[0]
        return builder.insert(arith.RemSI(trip, n)).results[0]

    @staticmethod
    def _redirect_reduction_access(
        op: Operation, red_by_var: dict[SSAValue, _Reduction], slot: SSAValue
    ) -> None:
        if op.name == "memref.load" and op.operands[0] in red_by_var:
            red = red_by_var[op.operands[0]]
            replacement = memref.Load(red.copies, [slot])
            op.parent.insert_op_before(replacement, op)
            op.results[0].replace_by(replacement.results[0])
            op.erase()
        elif op.name == "memref.store" and op.operands[1] in red_by_var:
            red = red_by_var[op.operands[1]]
            replacement = memref.Store(op.operands[0], red.copies, [slot])
            op.parent.insert_op_before(replacement, op)
            op.erase()


register_pass(LowerOmpToHlsPass)

"""The *lower omp target region* pass (paper Figure 2).

``omp.target`` (whose operands are already device memrefs after
*lower-omp-mapped-data*) becomes::

    %kernel = device.kernel_create(%args...) ({ ...region... })
    device.kernel_launch(%kernel)
    device.kernel_wait(%kernel)

The create/launch/wait split "provides more flexibility around how
kernels are scheduled and launched" and mirrors the OpenCL host API.
"""

from __future__ import annotations

from repro.dialects import device, omp
from repro.ir.core import Operation, Region
from repro.ir.pass_manager import ModulePass, register_pass
from repro.ir.rewriting import GreedyPatternRewriter, PatternRewriter, RewritePattern


class LowerTargetToKernel(RewritePattern):
    op_name = "omp.target"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        body: Region = op.regions[0]
        op.regions.remove(body)
        body.parent = None
        block = body.block
        last = block.last_op
        if last is not None and isinstance(last, omp.TerminatorOp):
            last.erase()
        create = device.KernelCreateOp(list(op.operands), body)
        launch = device.KernelLaunchOp(create.results[0])
        wait = device.KernelWaitOp(create.results[0])
        rewriter.insert_op_before_matched(create, launch, wait)
        rewriter.erase_matched_op()


@register_pass
class LowerOmpTargetRegionPass(ModulePass):
    """Lower ``omp.target`` to device kernel create/launch/wait."""

    name = "lower-omp-target-region"

    def apply(self, module: Operation) -> None:
        GreedyPatternRewriter([LowerTargetToKernel()]).rewrite(module)

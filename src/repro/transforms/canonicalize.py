"""Canonicalization, CSE and DCE.

The OpenMP-to-HLS transform "undertakes some simple canonicalisation to
remove dependencies between loop iterations" (paper §3); these passes are
that cleanup machinery: constant folding, algebraic identities, common
subexpression elimination and dead-code elimination of pure ops.
"""

from __future__ import annotations

from repro.dialects import arith
from repro.ir.attributes import FloatAttr, IntegerAttr
from repro.ir.core import Block, Operation, semantic_attributes
from repro.ir.pass_manager import ModulePass, register_pass
from repro.ir.rewriting import GreedyPatternRewriter, PatternRewriter, RewritePattern
from repro.ir.traits import ConstantLike, Pure
from repro.ir.types import IndexType, IntegerType


def _const_value(op: Operation) -> int | float | None:
    if op.name != "arith.constant":
        return None
    attr = op.attributes.get("value")
    if isinstance(attr, IntegerAttr):
        return attr.value
    if isinstance(attr, FloatAttr):
        return attr.value
    return None


def _operand_const(op: Operation, idx: int) -> int | float | None:
    from repro.ir.core import OpResult

    operand = op.operands[idx]
    if isinstance(operand, OpResult):
        return _const_value(operand.op)
    return None


_INT_FOLDS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b) if b else None,
    "arith.remsi": lambda a, b: int(a - b * int(a / b)) if b else None,
}


class FoldIntArith(RewritePattern):
    """Fold integer arithmetic with two constant operands."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        fold = _INT_FOLDS.get(op.name)
        if fold is None:
            return
        lhs, rhs = _operand_const(op, 0), _operand_const(op, 1)
        if lhs is None or rhs is None:
            return
        value = fold(int(lhs), int(rhs))
        if value is None:
            return
        ty = op.results[0].type
        if isinstance(ty, IndexType):
            const = arith.Constant.index(value)
        elif isinstance(ty, IntegerType):
            const = arith.Constant.int(value, ty.width)
        else:
            return
        rewriter.replace_matched_op(const)


class AlgebraicIdentity(RewritePattern):
    """x+0, x-0, x*1, x*0, x/1 simplifications (int/index only — FP
    identities are unsafe under rounding except trivial cases)."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        # replacements go through the rewriter so the worklist driver
        # re-enqueues the users migrated onto the replacement value
        if op.name in ("arith.addi", "arith.subi"):
            if _operand_const(op, 1) == 0:
                rewriter.replace_all_uses_with(op.results[0], op.operands[0])
                rewriter.erase_matched_op()
            elif op.name == "arith.addi" and _operand_const(op, 0) == 0:
                rewriter.replace_all_uses_with(op.results[0], op.operands[1])
                rewriter.erase_matched_op()
        elif op.name == "arith.muli":
            if _operand_const(op, 1) == 1:
                rewriter.replace_all_uses_with(op.results[0], op.operands[0])
                rewriter.erase_matched_op()
            elif _operand_const(op, 0) == 1:
                rewriter.replace_all_uses_with(op.results[0], op.operands[1])
                rewriter.erase_matched_op()
        elif op.name == "arith.divsi" and _operand_const(op, 1) == 1:
            rewriter.replace_all_uses_with(op.results[0], op.operands[0])
            rewriter.erase_matched_op()


class FoldIndexCastOfConstant(RewritePattern):
    """index_cast/extsi/trunci of a constant becomes a constant, so loop
    steps and unroll offsets are visible to the dependence analysis."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if op.name not in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            return
        value = _operand_const(op, 0)
        if value is None:
            return
        ty = op.results[0].type
        if isinstance(ty, IndexType):
            rewriter.replace_matched_op(arith.Constant.index(int(value)))
        elif isinstance(ty, IntegerType):
            rewriter.replace_matched_op(
                arith.Constant.int(int(value), ty.width)
            )


class DedupConstants(RewritePattern):
    """Merge identical constants within a block (a tiny block-local CSE
    kept as a pattern so canonicalize alone reaches a fixed point)."""

    op_name = "arith.constant"

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        block = op.parent
        if block is None:
            return
        for earlier in block.ops:
            if earlier is op:
                return
            if (
                earlier.name == "arith.constant"
                and semantic_attributes(earlier.attributes)
                == semantic_attributes(op.attributes)
                and earlier.results[0].type == op.results[0].type
            ):
                rewriter.replace_all_uses_with(
                    op.results[0], earlier.results[0]
                )
                rewriter.erase_matched_op()
                return


@register_pass
class CanonicalizePass(ModulePass):
    name = "canonicalize"

    def apply(self, module: Operation) -> None:
        patterns = [
            FoldIntArith(),
            AlgebraicIdentity(),
            FoldIndexCastOfConstant(),
            DedupConstants(),
        ]
        GreedyPatternRewriter(patterns, max_iterations=128).rewrite(module)
        DcePass().apply(module)


@register_pass
class DcePass(ModulePass):
    """Erase pure/constant ops whose results are unused (iteratively)."""

    name = "dce"

    def apply(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(module.walk(reverse=True)):
                if op.parent is None:
                    continue
                if not op.results or any(r.has_uses for r in op.results):
                    continue
                if op.has_trait(Pure) or op.has_trait(ConstantLike):
                    op.erase()
                    changed = True


def _cse_key(op: Operation) -> tuple | None:
    if not op.has_trait(Pure) and not op.has_trait(ConstantLike):
        return None
    if op.regions:
        return None
    return (
        op.name,
        tuple(id(o) for o in op.operands),
        tuple(
            sorted(
                (k, v.print())
                for k, v in semantic_attributes(op.attributes).items()
            )
        ),
        tuple(r.type.print() for r in op.results),
    )


@register_pass
class CsePass(ModulePass):
    """Block-local common-subexpression elimination for pure ops."""

    name = "cse"

    def apply(self, module: Operation) -> None:
        for op in list(module.walk()):
            for region in op.regions:
                for block in region.blocks:
                    self._run_block(block)

    def _run_block(self, block: Block) -> None:
        seen: dict[tuple, Operation] = {}
        for op in list(block.ops):
            key = _cse_key(op)
            if key is None:
                continue
            if key in seen:
                existing = seen[key]
                for old, new in zip(op.results, existing.results):
                    old.replace_by(new)
                op.erase()
            else:
                seen[key] = op

"""Loop dependence analysis for HLS pipelining.

Determines, for a pipelined ``scf.for`` body, the *loop-carried
dependences* that constrain the initiation interval (II):

* a load/store pair on the same memref whose subscript is **invariant**
  in the induction variable (e.g. a rank-0 reduction scalar) is a carried
  dependence of distance 1;
* subscripts that are affine ``a*iv + b`` with ``a != 0`` touch a new
  location every iteration — no carried dependence (the paper's SGESL
  inner loop and SAXPY);
* the round-robin reduction rewrite produces *periodic* subscripts
  ``(iv ...) mod N`` — a carried dependence of distance N, which is
  exactly why N copies allow II=1 once N covers the combiner latency.

``min_initiation_interval`` combines carried dependences with a float-op
latency table: ``II >= ceil(chain_latency / distance)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.core import (
    Block,
    BlockArgument,
    Operation,
    OpResult,
    SSAValue,
    semantic_attributes,
)

#: Default operation latencies (cycles) for dependence-chain estimation.
#: Calibrated against Vitis 2020.2 f32 figures.
DEFAULT_LATENCIES = {
    "arith.addf": 7,
    "arith.subf": 7,
    "arith.mulf": 4,
    "arith.divf": 28,
    "arith.minimumf": 2,
    "arith.maximumf": 2,
    "math.sqrt": 28,
    "math.exp": 20,
    "math.log": 22,
    "arith.addi": 1,
    "arith.subi": 1,
    "arith.muli": 3,
    "arith.divsi": 18,
    "arith.remsi": 18,
}


@dataclass(frozen=True)
class IndexPattern:
    """Classification of a subscript as a function of the loop IV.

    ``indirect`` marks a subscript whose value is loaded from an *index
    array* — a memref nothing in the loop body stores to — at a position
    that is itself affine in the IV (the SpMV ``col_idx(jj)`` / histogram
    ``bins(i)`` shape).  The cell it names depends on runtime array
    contents, so an indirect *store* subscript is only usable by the
    vectorizer together with an injectivity proof over the loaded values
    (:mod:`repro.ir.vectorize` runs that proof at execution time).
    """

    kind: str  # "invariant" | "affine" | "periodic" | "indirect" | "unknown"
    #: iv coefficient for affine; period for periodic
    parameter: int = 0
    #: constant offset for affine patterns (``a*iv + offset``)
    offset: int = 0


@dataclass
class Dependence:
    """A loop-carried memory dependence."""

    memref: SSAValue
    distance: int  # iterations between the write and the dependent read


def root_memref(value: SSAValue) -> SSAValue:
    """Chase memref casts back to the underlying buffer value."""
    while isinstance(value, OpResult) and value.op.name in (
        "memref.cast",
        "fir.declare",
    ):
        value = value.op.operands[0]
    return value


def _defined_inside(op: Operation, body: Block) -> bool:
    """True if ``op`` is (transitively) nested within ``body``."""
    block = op.parent
    while block is not None:
        if block is body:
            return True
        parent_op = block.parent.parent if block.parent else None
        if parent_op is None:
            return False
        block = parent_op.parent
    return False


def classify_index(
    value: SSAValue, iv: SSAValue, body: Block | None = None
) -> IndexPattern:
    """Classify ``value`` as a function of the induction variable.

    ``body`` (the loop body block) sharpens the analysis: any value
    defined *outside* it is loop-invariant regardless of how it was
    computed.
    """
    coeff, offset, periodic, ok = _affine_walk(value, iv, body)
    if not ok:
        if body is not None and indirect_index_load(value, iv, body) is not None:
            return IndexPattern("indirect")
        return IndexPattern("unknown")
    if periodic is not None:
        return IndexPattern("periodic", periodic)
    if coeff == 0:
        return IndexPattern("invariant", offset=offset)
    return IndexPattern("affine", coeff, offset)


def _body_stores_to(root: SSAValue, body: Block) -> bool:
    """True when any (possibly nested) op in ``body`` stores to ``root``."""
    for op in body.ops:
        for nested in op.walk():
            if (
                nested.name == "memref.store"
                and root_memref(nested.operands[1]) is root
            ):
                return True
    return False


def indirect_index_load(
    value: SSAValue, iv: SSAValue, body: Block
) -> Operation | None:
    """The gather load behind an *indirect* subscript, or None.

    Returns the ``memref.load`` op when ``value`` is (through
    ``index_cast``/``extsi``/``trunci`` and ``addi``/``subi``/``muli``
    with IV-invariant other operands) the value of a load from an index
    array that

    * nothing in the body stores to (its contents are loop-invariant), and
    * is subscripted affinely in the IV with a non-zero stride (each
      iteration reads a fresh index-array cell).

    The *value* loaded is still runtime data: a scatter store through it
    additionally needs the injectivity proof run by the vectorizer.
    """
    if not isinstance(value, OpResult):
        return None
    op = value.op
    if not _defined_inside(op, body):
        return None
    name = op.name
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return indirect_index_load(op.operands[0], iv, body)
    if name in ("arith.addi", "arith.subi", "arith.muli"):
        found: Operation | None = None
        for operand in op.operands:
            coeff, _, period, ok = _affine_walk(operand, iv, body)
            if ok and coeff == 0 and period is None:
                continue  # loop-invariant shift/scale preserves injectivity
            nested = indirect_index_load(operand, iv, body)
            if nested is None or found is not None:
                return None  # two varying operands: not a pure gather chain
            found = nested
        # muli by an invariant may be a *zero* scale at runtime, which
        # would collapse every index onto one cell — the runtime proof
        # still covers it, so the chain stays classifiable.
        return found
    if name != "memref.load":
        return None
    root = root_memref(op.operands[0])
    if _body_stores_to(root, body):
        return None
    saw_affine = False
    for idx in op.operands[1:]:
        coeff, _, period, ok = _affine_walk(idx, iv, body)
        if not ok or period is not None:
            return None
        if coeff != 0:
            saw_affine = True
    return op if saw_affine else None


_STRUCTURAL_INDEX_OPS = (
    "arith.index_cast", "arith.extsi", "arith.trunci",
    "arith.addi", "arith.subi", "arith.muli", "arith.divsi", "arith.remsi",
)


def index_values_equal(a: SSAValue, b: SSAValue, body: Block) -> bool:
    """True when two subscript values are provably equal in *every*
    iteration of the loop owning ``body``.

    Beyond SSA identity this recognises structurally identical pure
    integer chains and — the histogram accumulator shape — two loads of
    the same index-array cell (same un-stored buffer, provably equal
    subscripts), which the frontend emits separately for the load and the
    store side of ``h(bins(i)) = h(bins(i)) + w(i)``.
    """
    if a is b:
        return True
    if not (isinstance(a, OpResult) and isinstance(b, OpResult)):
        return False
    oa, ob = a.op, b.op
    if oa.name != ob.name or len(oa.operands) != len(ob.operands):
        return False
    if a.index != b.index:
        return False
    if oa.name == "arith.constant":
        return semantic_attributes(oa.attributes) == semantic_attributes(
            ob.attributes
        )
    if oa.name == "memref.load":
        root = root_memref(oa.operands[0])
        if root is not root_memref(ob.operands[0]):
            return False
        if _body_stores_to(root, body):
            return False  # the cell may change between the two loads
        return all(
            index_values_equal(x, y, body)
            for x, y in zip(oa.operands[1:], ob.operands[1:])
        )
    if oa.name in _STRUCTURAL_INDEX_OPS:
        return all(
            index_values_equal(x, y, body)
            for x, y in zip(oa.operands, ob.operands)
        )
    return False


def _affine_walk(
    value: SSAValue, iv: SSAValue, body: Block | None = None
) -> tuple[int, int, Optional[int], bool]:
    """Returns (iv coefficient, constant offset, period, ok).

    ``period`` is set when the expression goes through ``remsi`` by a
    constant and otherwise varies with the IV.  Invariant values whose
    offset is not a compile-time constant are reported with offset 0; use
    :func:`_exact_offset` to know whether offsets are comparable.
    """
    if value is iv:
        return 1, 0, None, True
    if isinstance(value, BlockArgument):
        return 0, 0, None, True  # a different loop's IV or function arg
    if not isinstance(value, OpResult):
        return 0, 0, None, False
    op = value.op
    if body is not None and not _defined_inside(op, body):
        return 0, 0, None, True  # defined above the loop: invariant
    name = op.name
    if name == "arith.constant":
        from repro.ir.attributes import IntegerAttr

        attr = op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return 0, attr.value, None, True
        return 0, 0, None, False
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return _affine_walk(op.operands[0], iv, body)
    if name in ("arith.addi", "arith.subi"):
        lc, lo, lp, lok = _affine_walk(op.operands[0], iv, body)
        rc, ro, rp, rok = _affine_walk(op.operands[1], iv, body)
        if not (lok and rok) or (lp is not None) or (rp is not None):
            # propagate periodicity through +/- of invariants
            if lok and rok:
                if lp is not None and rc == 0:
                    return 0, 0, lp, True
                if rp is not None and lc == 0:
                    return 0, 0, rp, True
            return 0, 0, None, False
        sign = 1 if name == "arith.addi" else -1
        return lc + sign * rc, lo + sign * ro, None, True
    if name == "arith.muli":
        lc, lo, lp, lok = _affine_walk(op.operands[0], iv, body)
        rc, ro, rp, rok = _affine_walk(op.operands[1], iv, body)
        if not (lok and rok) or lp is not None or rp is not None:
            return 0, 0, None, False
        # A varying side scaled by an invariant is affine only when the
        # scale is a compile-time constant: non-constant invariants are
        # reported with placeholder offset 0, which would silently zero
        # the coefficient (``k * m`` is *not* invariant in ``k``).
        if lc == 0:
            if rc != 0 and not _exact_offset(op.operands[0], iv, body):
                return 0, 0, None, False
            return lo * rc, lo * ro, None, True
        if rc == 0:
            if not _exact_offset(op.operands[1], iv, body):
                return 0, 0, None, False
            return lc * ro, lo * ro, None, True
        return 0, 0, None, False
    if name == "arith.divsi":
        lc, lo, lp, lok = _affine_walk(op.operands[0], iv, body)
        rc, ro, rp, rok = _affine_walk(op.operands[1], iv, body)
        if lok and rok and rc == 0 and ro != 0 and lp is None:
            if lc % ro == 0:
                return lc // ro, lo // ro, None, True
            return 0, 0, None, False
        return 0, 0, None, False
    if name == "arith.remsi":
        lc, lo, lp, lok = _affine_walk(op.operands[0], iv, body)
        rc, ro, rp, rok = _affine_walk(op.operands[1], iv, body)
        if lok and rok and rc == 0 and ro > 0:
            if lc != 0:
                return 0, 0, ro, True  # varies mod ro -> periodic
            return 0, lo % ro, None, True
        return 0, 0, None, False
    if name == "memref.load" and body is not None:
        # A load is loop-invariant when nothing in the body stores to the
        # same buffer and its own subscripts are invariant.
        root = root_memref(op.operands[0])
        if _body_stores_to(root, body):
            return 0, 0, None, False
        for idx in op.operands[1:]:
            coeff, _, period, ok = _affine_walk(idx, iv, body)
            if not ok or coeff != 0 or period is not None:
                return 0, 0, None, False
        return 0, 0, None, True
    return 0, 0, None, False


def _exact_offset(value: SSAValue, iv: SSAValue, body: Block | None) -> bool:
    """True when the affine offset of ``value`` is a compile-time constant
    (so offsets of two subscripts can be compared exactly)."""
    if value is iv:
        return True
    if isinstance(value, BlockArgument):
        return False
    if not isinstance(value, OpResult):
        return False
    op = value.op
    if body is not None and not _defined_inside(op, body):
        return False  # runtime invariant: offset unknown
    name = op.name
    if name == "arith.constant":
        return True
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return _exact_offset(op.operands[0], iv, body)
    if name in ("arith.addi", "arith.subi", "arith.muli", "arith.divsi",
                "arith.remsi"):
        return all(_exact_offset(o, iv, body) for o in op.operands)
    if name == "memref.load":
        return False
    return False


def bound_is_runtime(value: SSAValue) -> bool:
    """True when a loop bound is *runtime data* — its def chain reaches a
    ``memref.load`` or a block argument (function parameter / outer IV)
    rather than folding to compile-time constants.

    This is the segment-bound classification behind the vectorizer's
    ``nest_segmented`` span flavour: a loop whose extent is decided by
    runtime values (SGESL's hoisted ``j = k+1, n`` bounds, CSR row
    offsets) is one runtime *segment*, and its fast path must not apply
    a static minimum-trip-count floor — the floor is what turns a
    triangular launch sweep's tail into a scalar cliff.
    """
    seen: set[int] = set()

    def walk(v: SSAValue) -> bool:
        if isinstance(v, BlockArgument):
            return True
        if not isinstance(v, OpResult):
            return False
        op = v.op
        if id(op) in seen:
            return False
        seen.add(id(op))
        if op.name == "memref.load":
            return True
        if op.name == "arith.constant":
            return False
        return any(walk(operand) for operand in op.operands)

    return walk(value)


def static_loop_step(for_op: Operation) -> Optional[int]:
    """The loop's step when it is a compile-time constant."""
    step = for_op.operands[2]
    if isinstance(step, OpResult) and step.op.name == "arith.constant":
        from repro.ir.attributes import IntegerAttr

        attr = step.op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return attr.value
    return None


def walk_same_loop_level(body: Block):
    """All ops in ``body`` without descending into nested ``scf.for``
    loops — those are scheduled (and bound, and their accesses charged)
    independently, so they must not contribute to the enclosing loop's
    II, latency or binding.  Shared with the HLS scheduler."""
    for op in body.ops:
        yield op
        if op.name == "scf.for":
            continue
        for region in op.regions:
            for block in region.blocks:
                yield from walk_same_loop_level(block)


def _accesses(body: Block, iv: SSAValue):
    """Yield (op, memref_root, indices, is_store) for body memory ops."""
    for nested in walk_same_loop_level(body):
        if nested.name == "memref.load":
            yield nested, root_memref(nested.operands[0]), nested.operands[1:], False
        elif nested.name == "memref.store":
            yield nested, root_memref(nested.operands[1]), nested.operands[2:], True


def loop_carried_dependences(for_op: Operation) -> list[Dependence]:
    """Find carried dependences of a single ``scf.for`` loop body."""
    body = for_op.regions[0].block
    iv = body.args[0]
    loads: dict[int, list] = {}
    stores: dict[int, list] = {}
    infos: dict[int, SSAValue] = {}
    for _op, root, indices, is_store in _accesses(body, iv):
        infos[id(root)] = root
        bucket = stores if is_store else loads
        bucket.setdefault(id(root), []).append(indices)
    deps: list[Dependence] = []
    for key, store_indices in stores.items():
        read_indices = loads.get(key, [])
        if not read_indices:
            continue
        distance = _dependence_distance(
            store_indices, read_indices, iv, body, static_loop_step(for_op)
        )
        if distance is not None:
            deps.append(Dependence(infos[key], distance))
    return deps


def _dependence_distance(
    store_indices: list,
    read_indices: list,
    iv: SSAValue,
    body: Block | None = None,
    step: Optional[int] = None,
) -> Optional[int]:
    """Smallest carried distance between any store/read subscript pair, or
    None when every pair provably touches a fresh location each iteration."""
    worst: Optional[int] = None

    def consider(distance: int) -> None:
        nonlocal worst
        if worst is None or distance < worst:
            worst = distance

    for w_idx in store_indices:
        for r_idx in read_indices:
            if len(w_idx) != len(r_idx):
                consider(1)
                continue
            if not w_idx:  # rank-0: same cell every iteration
                consider(1)
                continue
            pair_distance = 0  # 0 = provably independent across iterations
            for w, r in zip(w_idx, r_idx):
                wp = classify_index(w, iv, body)
                rp = classify_index(r, iv, body)
                if wp.kind == "affine" and rp.kind == "affine":
                    if wp.parameter == rp.parameter:
                        if w is r or (
                            _exact_offset(w, iv, body)
                            and _exact_offset(r, iv, body)
                            and wp.offset == rp.offset
                        ):
                            continue  # provably the same location per iter
                        if not (
                            _exact_offset(w, iv, body)
                            and _exact_offset(r, iv, body)
                        ):
                            pair_distance = 1  # conservative
                            break
                        delta = wp.offset - rp.offset
                        # Locations collide after k iterations when
                        # delta = k * coeff * step.
                        stride = wp.parameter * (step or 1)
                        if step is not None and delta % stride == 0:
                            pair_distance = abs(delta // stride)
                        elif step is not None:
                            continue  # disjoint lattices: never collide
                        else:
                            pair_distance = 1
                        break
                    pair_distance = 1
                    break
                if wp.kind == "invariant" and rp.kind == "invariant":
                    pair_distance = 1  # same (unknown) cell each iteration
                    break
                if wp.kind == "periodic" and rp.kind == "periodic":
                    pair_distance = max(wp.parameter, 1)
                    continue
                pair_distance = 1
                break
            if pair_distance:
                consider(pair_distance)
    return worst


_FLOAT_OP_PREFIXES = ("arith.addf", "arith.subf", "arith.mulf", "arith.divf",
                      "arith.minimumf", "arith.maximumf", "math.")


def float_chain_latency(
    body: Block,
    latencies: dict[str, int] | None = None,
    *,
    float_only: bool = False,
) -> int:
    """Approximate latency of the longest arithmetic chain in the body.

    Computed as a proper critical path over the SSA graph of the block
    (nested non-loop regions contribute their own paths; nested
    ``scf.for`` loops are excluded — their cycles are charged by their
    own schedules).  ``float_only`` restricts the path to floating-point
    operators — the right measure for a recurrence cycle, where index
    arithmetic is not on the carried path.
    """
    table = latencies or DEFAULT_LATENCIES

    depth: dict[SSAValue, int] = {}

    def op_latency(op: Operation) -> int:
        if float_only and not op.name.startswith(_FLOAT_OP_PREFIXES):
            return 0
        return table.get(op.name, 1 if op.results else 0)

    best = 0
    for nested in walk_same_loop_level(body):
        in_depth = max(
            (depth.get(operand, 0) for operand in nested.operands),
            default=0,
        )
        out = in_depth + op_latency(nested)
        for result in nested.results:
            depth[result] = out
        best = max(best, out)
    return best


def min_initiation_interval(
    for_op: Operation, latencies: dict[str, int] | None = None
) -> int:
    """Dependence-constrained minimum II for a pipelined loop."""
    deps = loop_carried_dependences(for_op)
    if not deps:
        return 1
    body = for_op.regions[0].block
    # The carried cycle runs through the float combiner; integer index
    # arithmetic (e.g. the round-robin slot) overlaps with it.
    latency = max(1, float_chain_latency(body, latencies, float_only=True))
    ii = 1
    for dep in deps:
        ii = max(ii, -(-latency // max(dep.distance, 1)))  # ceil div
    return ii

"""The *lower HLS to func call* transformation (from [20], Stencil-HMLS).

Operations in the HLS dialect become ``func.call`` operations against the
``xlx_*`` runtime symbols; a later stage (:mod:`repro.backend.amd_hls`)
maps those calls to AMD's bespoke HLS LLVM-IR primitives.  Declarations
for the called symbols are added to the module so it stays self-contained.
"""

from __future__ import annotations

from repro.dialects import builtin, func
from repro.ir.attributes import StringAttr
from repro.ir.core import LOC_ATTR, Operation
from repro.ir.pass_manager import ModulePass, register_pass
from repro.ir.rewriting import GreedyPatternRewriter, PatternRewriter, RewritePattern
from repro.ir.types import FunctionType

#: hls op -> runtime symbol called in its place
HLS_RUNTIME_SYMBOLS = {
    "hls.axi_protocol": "xlx_axi_protocol",
    "hls.interface": "xlx_interface",
    "hls.pipeline": "xlx_pipeline",
    "hls.unroll": "xlx_unroll",
    "hls.stream_read": "xlx_stream_read",
    "hls.stream_write": "xlx_stream_write",
}


class HlsOpToCall(RewritePattern):
    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        symbol = HLS_RUNTIME_SYMBOLS.get(op.name)
        if symbol is None:
            return
        call = func.CallOp(
            symbol,
            list(op.operands),
            [r.type for r in op.results],
        )
        # Preserve HLS attributes (bundle names, unroll factors) on the
        # call so the AMD backend mapping can still see them; the source
        # location carries through under its own key.
        for key, attr in op.attributes.items():
            if key == LOC_ATTR:
                call.attributes[LOC_ATTR] = attr
            else:
                call.attributes[f"hls_{key}"] = attr
        rewriter.replace_matched_op(call)


@register_pass
class LowerHlsToFuncPass(ModulePass):
    """Lower the ``hls`` dialect to ``func.call`` operations."""

    name = "lower-hls-to-func"

    def apply(self, module: Operation) -> None:
        GreedyPatternRewriter([HlsOpToCall()]).rewrite(module)
        self._declare_runtime(module)

    def _declare_runtime(self, module: Operation) -> None:
        used: dict[str, FunctionType] = {}
        for op in module.walk():
            if op.name == "func.call":
                callee_attr = op.attributes.get("callee")
                callee = getattr(callee_attr, "symbol", None)
                if callee in HLS_RUNTIME_SYMBOLS.values() and callee not in used:
                    used[callee] = FunctionType(
                        [o.type for o in op.operands],
                        [r.type for r in op.results],
                    )
        existing = {
            op.attributes.get("sym_name").value  # type: ignore[union-attr]
            for op in module.walk()
            if op.name == "func.func"
            and isinstance(op.attributes.get("sym_name"), StringAttr)
        }
        for symbol, fn_type in sorted(used.items()):
            if symbol in existing:
                continue
            decl = func.FuncOp(symbol, fn_type, visibility="private")
            decl.regions[0].blocks.clear()  # declaration: no body
            _top_module(module).body.add_op(decl)


def _top_module(module: Operation) -> builtin.ModuleOp:
    assert isinstance(module, builtin.ModuleOp)
    return module

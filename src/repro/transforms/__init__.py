"""Compiler transformation passes (the paper's Figure 2 pipeline)."""

from repro.transforms.canonicalize import CanonicalizePass, CsePass, DcePass
from repro.transforms.extract_device_module import (
    ExtractDeviceModulePass,
    split_host_device,
)
from repro.transforms.lower_hls_to_func import LowerHlsToFuncPass
from repro.transforms.lower_omp_mapped_data import (
    LowerOmpMappedDataPass,
    MemorySpacePolicy,
)
from repro.transforms.lower_omp_target_region import LowerOmpTargetRegionPass
from repro.transforms.lower_omp_to_hls import LowerOmpToHlsPass

__all__ = [
    "CanonicalizePass",
    "CsePass",
    "DcePass",
    "ExtractDeviceModulePass",
    "split_host_device",
    "LowerHlsToFuncPass",
    "LowerOmpMappedDataPass",
    "MemorySpacePolicy",
    "LowerOmpTargetRegionPass",
    "LowerOmpToHlsPass",
]

"""The *lower omp mapped data* pass (paper Figure 2, first device stage).

Converts OpenMP data-mapping IR (``omp.map_info``/``omp.bounds`` feeding
``omp.target``/``omp.target_data``/``omp.target_enter_data``/
``omp.target_exit_data``/``omp.target_update``) into ``device`` dialect
data management plus ``memref.dma_start``/``memref.wait`` transfers.

Reference-counted residency (paper §3): each identifier has a counter;
``device.data_acquire`` increments, ``device.data_release`` decrements and
``device.data_check_exists`` tests counter > 0.  Around every map we emit

.. code-block:: text

    %exists = device.data_check_exists {name}
    %absent = arith.xori %exists, true
    scf.if %absent { device.alloc ... }          // first touch allocates
    device.data_acquire {name}
    scf.if %absent { dma host -> device }        // and copies "to" data
    %dev = device.lookup {name}                  // kernel argument
    ...
    device.data_release {name}
    %exists2 = device.data_check_exists {name}
    %last = arith.xori %exists2, true
    scf.if %last { dma device -> host }          // last release copies back

so implicit ``tofrom,implicit`` maps become no-op transfers whenever an
enclosing data region already made the variable resident — the exact
behaviour the paper's Listing 1 discussion requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import arith, device, memref
from repro.dialects.omp import MapInfoOp
from repro.ir.builder import Builder
from repro.ir.core import IRError, Operation, OpResult, SSAValue
from repro.ir.pass_manager import ModulePass, PassOption, register_pass
from repro.ir.types import DYNAMIC, MemRefType


@dataclass
class MemorySpacePolicy:
    """Assigns device memory spaces (HBM banks / DDR) to identifiers.

    ``single`` puts everything in HBM bank 1 (the paper's Listing 2
    layout); ``round_robin`` spreads identifiers across the 16 HBM banks
    to maximise aggregate bandwidth — an ablation knob.
    """

    mode: str = "single"
    num_banks: int = 16

    def __post_init__(self):
        self._assigned: dict[str, int] = {}
        self._next = 1

    def space_for(self, name: str) -> int:
        if self.mode == "single":
            return 1
        if name not in self._assigned:
            self._assigned[name] = self._next
            self._next = self._next % self.num_banks + 1
        return self._assigned[name]


class _MapLowering:
    """Emits the acquire/release structure for one mapped variable."""

    def __init__(self, builder: Builder, info: MapInfoOp, space: int):
        self.builder = builder
        self.info = info
        self.space = space
        host_ty = info.var.type
        if not isinstance(host_ty, MemRefType):
            raise IRError(
                f"mapped variable {info.var_name!r} is not a memref"
            )
        self.host_type = host_ty
        self.device_type = host_ty.with_memory_space(space)

    # -- pieces ------------------------------------------------------------------

    def _absent_flag(self) -> SSAValue:
        check = self.builder.insert(
            device.DataCheckExistsOp(identifier=self.info.var_name)
        )
        true = self.builder.insert(arith.Constant.bool(True))
        absent = self.builder.insert(
            arith.XOrI(check.results[0], true.results[0])
        )
        return absent.results[0]

    def emit_acquire(self) -> SSAValue:
        """Emit the conditional alloc + H2D copy + acquire; returns the
        device memref (a ``device.lookup`` result)."""
        absent = self._absent_flag()
        alloc_if = self.builder.insert(_new_if(absent))
        inner = Builder.at_end(alloc_if.then_block)
        sizes = self._dynamic_sizes_inside(inner)
        inner.insert(
            device.AllocOp(
                self.device_type,
                sizes,
                identifier=self.info.var_name,
                memory_space=self.space,
            )
        )
        inner.insert(_yield())
        Builder.at_end(alloc_if.else_block).insert(_yield())

        self.builder.insert(
            device.DataAcquireOp(
                identifier=self.info.var_name, memory_space=self.space
            )
        )
        if self.info.copies_to_device:
            copy_if = self.builder.insert(_new_if(absent))
            inner = Builder.at_end(copy_if.then_block)
            dev = inner.insert(
                device.LookupOp(
                    self.device_type,
                    identifier=self.info.var_name,
                    memory_space=self.space,
                )
            )
            tag = inner.insert(memref.DmaStart(self.info.var, dev.results[0]))
            inner.insert(memref.DmaWait(tag.results[0]))
            inner.insert(_yield())
            Builder.at_end(copy_if.else_block).insert(_yield())
        lookup = self.builder.insert(
            device.LookupOp(
                self.device_type,
                identifier=self.info.var_name,
                memory_space=self.space,
            )
        )
        return lookup.results[0]

    def emit_release(self) -> None:
        """Emit release + conditional D2H copy-back on last reference."""
        self.builder.insert(
            device.DataReleaseOp(
                identifier=self.info.var_name, memory_space=self.space
            )
        )
        if self.info.copies_from_device:
            gone = self._absent_flag()  # counter hit zero after release
            copy_if = self.builder.insert(_new_if(gone))
            inner = Builder.at_end(copy_if.then_block)
            dev = inner.insert(
                device.LookupOp(
                    self.device_type,
                    identifier=self.info.var_name,
                    memory_space=self.space,
                )
            )
            tag = inner.insert(memref.DmaStart(dev.results[0], self.info.var))
            inner.insert(memref.DmaWait(tag.results[0]))
            inner.insert(_yield())
            Builder.at_end(copy_if.else_block).insert(_yield())

    def emit_update(self, direction: str) -> None:
        """Unconditional transfer for ``omp.target_update``."""
        dev = self.builder.insert(
            device.LookupOp(
                self.device_type,
                identifier=self.info.var_name,
                memory_space=self.space,
            )
        )
        if direction == "to":
            tag = self.builder.insert(
                memref.DmaStart(self.info.var, dev.results[0])
            )
        else:
            tag = self.builder.insert(
                memref.DmaStart(dev.results[0], self.info.var)
            )
        self.builder.insert(memref.DmaWait(tag.results[0]))

    def _dynamic_sizes_inside(self, inner: Builder) -> list[SSAValue]:
        sizes = []
        for dim, extent in enumerate(self.host_type.shape):
            if extent == DYNAMIC:
                dim_const = inner.insert(arith.Constant.index(dim))
                dim_op = inner.insert(
                    memref.Dim(self.info.var, dim_const.results[0])
                )
                sizes.append(dim_op.results[0])
        return sizes


def _new_if(cond: SSAValue):
    from repro.dialects import scf

    return scf.If(cond)


def _yield():
    from repro.dialects import scf

    return scf.Yield()


def _map_info_of(operand: SSAValue) -> MapInfoOp:
    if not isinstance(operand, OpResult) or not isinstance(operand.op, MapInfoOp):
        raise IRError("expected an omp.map_info result")
    return operand.op


@register_pass
class LowerOmpMappedDataPass(ModulePass):
    """Lower OpenMP mapped data onto the ``device`` dialect."""

    name = "lower-omp-mapped-data"

    options = (
        PassOption(
            "policy", str, "single",
            "memory-space assignment: 'single' (HBM bank 1) or "
            "'round_robin' over the banks",
        ),
        PassOption("num_banks", int, 16, "HBM bank count for round_robin"),
    )

    def __init__(
        self,
        policy: MemorySpacePolicy | str | None = None,
        num_banks: int = 16,
    ):
        if isinstance(policy, str):
            policy = MemorySpacePolicy(mode=policy, num_banks=num_banks)
        self.policy = policy or MemorySpacePolicy(num_banks=num_banks)

    def option_values(self) -> dict[str, object]:
        return {"policy": self.policy.mode, "num_banks": self.policy.num_banks}

    def apply(self, module: Operation) -> None:
        # Iterate until no data ops remain (target_data regions may nest).
        changed = True
        while changed:
            changed = False
            for op in list(module.walk()):
                if op.parent is None:
                    continue
                if op.name == "omp.target_data":
                    self._lower_target_data(op)
                    changed = True
                elif op.name == "omp.target_enter_data":
                    self._lower_edge(op, enter=True)
                    changed = True
                elif op.name == "omp.target_exit_data":
                    self._lower_edge(op, enter=False)
                    changed = True
                elif op.name == "omp.target_update":
                    self._lower_update(op)
                    changed = True
                elif op.name == "omp.target" and self._has_map_operands(op):
                    self._lower_target_maps(op)
                    changed = True
        self._cleanup_map_infos(module)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _has_map_operands(op: Operation) -> bool:
        return any(
            isinstance(o, OpResult) and isinstance(o.op, MapInfoOp)
            for o in op.operands
        )

    def _lowerings(
        self, builder: Builder, op: Operation
    ) -> list[_MapLowering]:
        lowerings = []
        for operand in op.operands:
            info = _map_info_of(operand)
            lowerings.append(
                _MapLowering(builder, info, self.policy.space_for(info.var_name))
            )
        return lowerings

    def _lower_target_data(self, op: Operation) -> None:
        builder = Builder.before(op)
        lowerings = self._lowerings(builder, op)
        for lowering in lowerings:
            lowering.emit_acquire()
        # Inline the region body before the releases.
        block = op.regions[0].block
        last = block.last_op
        if last is not None and last.name == "omp.terminator":
            last.erase()
        for inner_op in list(block.ops):
            inner_op.detach()
            builder.insert(inner_op)
        for lowering in lowerings:
            lowering.builder = builder
            lowering.emit_release()
        op.erase(safe=False)

    def _lower_edge(self, op: Operation, enter: bool) -> None:
        builder = Builder.before(op)
        for lowering in self._lowerings(builder, op):
            if enter:
                lowering.emit_acquire()
            else:
                lowering.emit_release()
        op.erase(safe=False)

    def _lower_update(self, op: Operation) -> None:
        builder = Builder.before(op)
        for operand in op.operands:
            info = _map_info_of(operand)
            lowering = _MapLowering(
                builder, info, self.policy.space_for(info.var_name)
            )
            direction = "to" if info.copies_to_device else "from"
            lowering.emit_update(direction)
        op.erase(safe=False)

    def _lower_target_maps(self, op: Operation) -> None:
        """Rewrite an ``omp.target``'s operands to device memrefs."""
        builder = Builder.before(op)
        lowerings = self._lowerings(builder, op)
        device_values = [lowering.emit_acquire() for lowering in lowerings]
        for i, value in enumerate(device_values):
            op.set_operand(i, value)
        # Block argument types now carry the device memory space.
        for block_arg, value in zip(op.regions[0].block.args, device_values):
            block_arg.type = value.type
        after = Builder.after(op)
        for lowering in lowerings:
            lowering.builder = after
            lowering.emit_release()

    def _cleanup_map_infos(self, module: Operation) -> None:
        for op in list(module.walk(reverse=True)):
            if op.parent is None:
                continue
            if op.name in ("omp.map_info", "omp.bounds") and not any(
                r.has_uses for r in op.results
            ):
                op.erase()

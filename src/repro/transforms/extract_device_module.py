"""Kernel extraction: split device code into a ``target = "fpga"`` module.

Each ``device.kernel_create`` whose region still holds the kernel body has
that body moved into a ``func.func`` inside a nested
``builtin.module attributes {target = "fpga"}``; the ``device_function``
attribute records the callee and the op keeps an *empty* region — the two
sibling modules of the paper's Listing 2.

``split_host_device`` separates the two modules for the host printer and
the HLS backend respectively.
"""

from __future__ import annotations

from repro.dialects import builtin, func
from repro.ir.attributes import StringAttr, SymbolRefAttr
from repro.ir.core import Block, Operation, Region
from repro.ir.pass_manager import ModulePass, register_pass
from repro.ir.types import FunctionType


def _device_module_of(module: Operation) -> builtin.ModuleOp:
    """Find or create the nested FPGA module."""
    for op in module.regions[0].block.ops:
        if isinstance(op, builtin.ModuleOp) and op.target == "fpga":
            return op
    dev = builtin.ModuleOp(attributes={"target": StringAttr("fpga")})
    module.regions[0].block.add_op(dev)
    return dev


@register_pass
class ExtractDeviceModulePass(ModulePass):
    """Move kernel bodies into the nested ``target="fpga"`` module."""

    name = "extract-device-module"

    def apply(self, module: Operation) -> None:
        kernels: list[Operation] = [
            op
            for op in module.walk()
            if op.name == "device.kernel_create"
            and op.regions
            and op.regions[0].blocks
            and op.regions[0].block.ops
        ]
        if not kernels:
            return
        device_module = _device_module_of(module)
        counter = 0
        for create in kernels:
            host_func = create.get_parent_of_type(func.FuncOp)
            stem = host_func.sym_name if host_func is not None else "kernel"
            kernel_name = f"{stem}_kernel_{counter}"
            counter += 1

            body: Region = create.regions[0]
            create.regions.remove(body)
            body.parent = None
            kernel_func = func.FuncOp(
                kernel_name,
                FunctionType([a.type for a in body.block.args], []),
            )
            # Transplant the extracted block as the function body.
            kernel_func.regions[0].blocks.clear()
            body.block.parent = None
            kernel_func.regions[0].add_block(body.block)
            kernel_func.body.add_op(func.ReturnOp())
            device_module.body.add_op(kernel_func)

            create.attributes["device_function"] = SymbolRefAttr(kernel_name)
            create.add_region(Region([Block()]))


def split_host_device(
    module: builtin.ModuleOp,
) -> tuple[builtin.ModuleOp, builtin.ModuleOp]:
    """Detach the nested FPGA module; returns (host_module, device_module).

    The input module *is* the host module after the call.
    """
    device_module: builtin.ModuleOp | None = None
    for op in list(module.body.ops):
        if isinstance(op, builtin.ModuleOp) and op.target == "fpga":
            op.detach()
            device_module = op
            break
    if device_module is None:
        device_module = builtin.ModuleOp(
            attributes={"target": StringAttr("fpga")}
        )
    return module, device_module

"""Design-space exploration over OpenMP directive parameters.

The paper (§4) notes that "design space exploration could be added in
the future to automatically find the best combination of directives and
their parameters".  This module implements that extension on top of the
staged :class:`~repro.session.Session` API: one session per source
compiles the frontend and the host side exactly once, and the sweep
re-runs only the device build with each
:class:`~repro.session.KernelOverrides` point (``simdlen`` x reduction
copies x compute units), evaluates the modeled runtime on a
user-supplied workload, and
reports the Pareto-best choice under a resource budget.

.. code-block:: python

    from repro.dse import explore_simdlen

    result = explore_simdlen(SAXPY_SOURCE, run_workload, factors=(1, 2, 4, 8, 10))
    print(result.best.simdlen, result.best.device_time_s)
    print(result.session.counters["frontend_compiles"])   # == 1

Two orthogonal extensions ride on the compile service
(:mod:`repro.service`):

* ``workers=N`` (or an explicit ``service=``) builds the sweep's points
  **in parallel** across the service's process pool — each point's
  device build runs in a worker, the modeled evaluation runs in the
  parent, and the result table is assembled in *plan order* (the
  cartesian order of the input sequences), so serial and parallel sweeps
  produce identical tables regardless of worker completion order;
* ``result_store=DseResultStore(path)`` persists every evaluated point
  to disk as it completes, so a killed sweep restarted with the same
  store re-evaluates only the missing points and still produces a
  bit-identical table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.fpga.board import U280Board
from repro.ir.pass_manager import Instrumentation
from repro.reliability.errors import DataIntegrityError
from repro.runtime.executor import ExecutionResult
from repro.session import (
    CompiledProgram,
    KernelOverrides,
    Session,
    TargetConfig,
)


@dataclass
class DsePoint:
    """One evaluated configuration.

    ``program`` is only retained when the sweep runs with
    ``keep_programs=True`` — a full :class:`CompiledProgram` (bitstream +
    modules) per point makes gallery-wide sweeps hold every artifact
    alive, so the default keeps only the modeled numbers.
    """

    simdlen: int
    reduction_copies: int
    compute_units: int
    device_time_s: float
    lut_pct: float
    dsp_pct: float
    achieved_iis: tuple[int, ...]
    program: CompiledProgram | None = None

    @property
    def device_time_ms(self) -> float:
        return self.device_time_s * 1e3


@dataclass
class DseResult:
    """Sweep outcome: all points plus the runtime-best within budget."""

    points: list[DsePoint] = field(default_factory=list)
    best: DsePoint | None = None
    #: the session the sweep ran on — exposes the shared artifacts and
    #: the instrumentation counters (``frontend_compiles`` stays at 1)
    session: Session | None = None
    #: the resource budgets the feasibility filter enforced
    max_lut_pct: float = 70.0
    max_dsp_pct: float = 70.0

    def table(self) -> str:
        from repro.reporting import format_table

        rows = [
            (
                p.simdlen,
                p.reduction_copies,
                p.compute_units,
                f"{p.device_time_ms:.3f}",
                f"{p.lut_pct:.2f}",
                f"{p.dsp_pct:.2f}",
                ",".join(str(ii) for ii in p.achieved_iis),
                "*" if p is self.best else "",
            )
            for p in self.points
        ]
        return format_table(
            "Design-space exploration "
            f"(budget: LUT <= {self.max_lut_pct:g} %, "
            f"DSP <= {self.max_dsp_pct:g} %)",
            ["simdlen", "red.copies", "CUs", "time (ms)", "LUT %", "DSP %",
             "IIs", "best"],
            rows,
        )


#: the persisted per-point record schema (see :class:`DseResultStore`)
_RECORD_FIELDS = (
    "simdlen",
    "reduction_copies",
    "compute_units",
    "device_time_s",
    "lut_pct",
    "dsp_pct",
    "achieved_iis",
)


class DseResultStore:
    """Resumable on-disk store of evaluated DSE points.

    Each completed point is persisted (atomically) as
    ``<root>/<digest>.json`` keyed by the point's *program* artifact
    digest — the same content address the compile service uses — the
    moment its evaluation finishes.  A sweep restarted with the same
    store loads those records instead of re-evaluating, so an
    interrupted sweep completes bit-identically to an uninterrupted one.

    The digest covers (source, target, overrides) but not the
    ``evaluate`` callback: use one store directory per (workload,
    evaluator) sweep.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: points served from disk during the last sweep (resume probe)
        self.loads = 0
        #: points persisted during the last sweep
        self.saves = 0

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """The persisted record, or ``None``.  A record that cannot be
        parsed or is missing fields raises
        :class:`~repro.reliability.errors.DataIntegrityError` — a
        truncated or hand-edited file must never become a silently wrong
        sweep row."""
        path = self._path(digest)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise DataIntegrityError(
                f"DSE result store: unreadable record {path.name}",
                context=str(path),
            ) from error
        if not all(key in record for key in _RECORD_FIELDS):
            raise DataIntegrityError(
                f"DSE result store: record {path.name} is missing fields "
                f"(have {sorted(record)})",
                context=str(path),
            )
        self.loads += 1
        return record

    def put(self, digest: str, record: dict) -> None:
        path = self._path(digest)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=1) + "\n")
        os.replace(tmp, path)
        self.saves += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()


def _point_digest(
    source: str, target: TargetConfig, overrides: KernelOverrides
) -> str:
    from repro.service.store import ArtifactKey

    return ArtifactKey(
        source=source, target=target, stage="program", overrides=overrides
    ).digest


def _point_record(
    program: CompiledProgram,
    run: ExecutionResult,
    overrides: KernelOverrides,
) -> dict:
    utilization = program.bitstream.utilization()
    return {
        "simdlen": overrides.simdlen,
        "reduction_copies": overrides.reduction_copies,
        "compute_units": overrides.compute_units,
        "device_time_s": run.device_time_s,
        "lut_pct": utilization.lut,
        "dsp_pct": utilization.dsp,
        "achieved_iis": [
            sched.achieved_ii
            for kernel in program.bitstream.kernels.values()
            for sched in kernel.loops.values()
        ],
    }


def _point_from_record(
    record: dict, program: CompiledProgram | None = None
) -> DsePoint:
    return DsePoint(
        simdlen=int(record["simdlen"]),
        reduction_copies=int(record["reduction_copies"]),
        compute_units=int(record.get("compute_units", 1)),
        device_time_s=float(record["device_time_s"]),
        lut_pct=float(record["lut_pct"]),
        dsp_pct=float(record["dsp_pct"]),
        achieved_iis=tuple(int(ii) for ii in record["achieved_iis"]),
        program=program,
    )


def explore(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    *,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8, 10),
    reduction_copies: Sequence[int] = (8,),
    compute_units: Sequence[int] = (1,),
    max_lut_pct: float = 70.0,
    max_dsp_pct: float = 70.0,
    board: U280Board | None = None,
    keep_programs: bool = False,
    session: Session | None = None,
    workers: int = 0,
    service=None,
    result_store: DseResultStore | None = None,
) -> DseResult:
    """Sweep directive parameters and pick the fastest feasible point.

    ``evaluate`` runs a representative workload on a compiled program and
    returns its :class:`ExecutionResult`; the sweep minimizes
    ``device_time_s`` subject to *both* resource budgets (LUT and DSP
    utilization).

    Serially (the default) all points share one :class:`Session`: the
    frontend and host build run once, each point costs one device build.
    With ``workers=N`` (or an explicit
    :class:`~repro.service.CompileService` via ``service=``) the device
    builds of all pending points run in parallel across the service's
    process pool; the modeled evaluation still runs in the parent (so
    any callable works, closures included) and the table is assembled in
    plan order — identical to the serial table.

    ``result_store`` makes the sweep resumable: completed points are
    read back from disk instead of re-evaluated (their ``program`` slot
    is ``None`` even with ``keep_programs=True``).
    """
    if session is not None and session.source != source:
        raise ValueError(
            "explore(session=...) got a session built over different "
            "source text than the `source` argument"
        )
    if session is not None and board is not None and session.board != board:
        raise ValueError(
            "explore(session=..., board=...) got a session built for a "
            "different board than the `board` argument — the session's "
            "board always wins, so passing a disagreeing board would be "
            "silently ignored; build the session with "
            "TargetConfig(board=...) instead"
        )
    parallel = workers > 0 or service is not None
    if parallel and session is not None:
        raise ValueError(
            "explore(session=...) cannot be combined with workers/"
            "service: a Session's cached artifacts live in this process "
            "and cannot be shared with pool workers — drop session= (the "
            "sweep builds through the service's own per-worker sessions)"
        )

    # The plan is the cartesian order of the input sequences; the result
    # table is always assembled in this order, so worker completion
    # order can never reorder rows.  An over-budget compute-unit count
    # is not a sweep point — the device build raises a typed
    # DeviceBuildError, which propagates (pick CU counts that fit).
    plan = [
        (copies, factor, units)
        for copies in reduction_copies
        for factor in simdlen_factors
        for units in compute_units
    ]
    target = (
        session.target if session is not None else TargetConfig(board=board)
    )

    # Resume: load every already-evaluated point from the result store.
    records: dict[tuple[int, int, int], dict] = {}
    digests: dict[tuple[int, int, int], str] = {}
    for copies, factor, units in plan:
        overrides = KernelOverrides(
            simdlen=factor, reduction_copies=copies, compute_units=units
        )
        if result_store is not None:
            digest = _point_digest(source, target, overrides)
            digests[(copies, factor, units)] = digest
            record = result_store.get(digest)
            if record is not None:
                records[(copies, factor, units)] = record
    pending = [key for key in plan if key not in records]

    programs: dict[tuple[int, int, int], CompiledProgram] = {}
    if parallel and pending:
        session = None
        _run_points_parallel(
            source, target, pending, programs,
            workers=workers, service=service,
        )
    elif pending:
        session = session or Session(
            source,
            target=TargetConfig(board=board),
            instrumentation=Instrumentation(),
        )

    result = DseResult(
        session=session, max_lut_pct=max_lut_pct, max_dsp_pct=max_dsp_pct
    )
    for copies, factor, units in plan:
        overrides = KernelOverrides(
            simdlen=factor, reduction_copies=copies, compute_units=units
        )
        record = records.get((copies, factor, units))
        if record is not None:
            result.points.append(_point_from_record(record))
            continue
        if parallel:
            program = programs[(copies, factor, units)]
        else:
            program = session.program(overrides)
        run = evaluate(program)
        record = _point_record(program, run, overrides)
        if result_store is not None:
            result_store.put(digests[(copies, factor, units)], record)
        result.points.append(
            _point_from_record(
                record, program if keep_programs else None
            )
        )
        if not parallel and not keep_programs:
            # evict the heavy device build (bitstream + lowered
            # module) now that its numbers are extracted, so gallery
            # sweeps hold at most one build at a time
            session.release_build(overrides)
    feasible = [
        p
        for p in result.points
        if p.lut_pct <= max_lut_pct and p.dsp_pct <= max_dsp_pct
    ]
    if feasible:
        result.best = min(feasible, key=lambda p: p.device_time_s)
    return result


def _run_points_parallel(
    source: str,
    target: TargetConfig,
    pending: Sequence[tuple[int, int, int]],
    programs: dict,
    *,
    workers: int,
    service,
) -> None:
    """Build every pending point's program through the compile service
    (in parallel across its pool) into ``programs``."""
    from repro.service import CompileRequest, CompileService

    owned = None
    if service is None:
        owned = service = CompileService(
            max_workers=workers,
            queue_depth=max(len(pending), 1),
        )
    try:
        futures = {}
        for copies, factor, units in pending:
            overrides = KernelOverrides(
                simdlen=factor, reduction_copies=copies, compute_units=units
            )
            futures[(copies, factor, units)] = service.submit(
                CompileRequest(
                    source=source,
                    target=target,
                    overrides=overrides,
                    stage="program",
                )
            )
        for key, future in futures.items():
            programs[key] = future.result().artifact
    finally:
        if owned is not None:
            owned.close()


def explore_simdlen(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    factors: Sequence[int] = (1, 2, 4, 8, 10),
    **kwargs,
) -> DseResult:
    """Convenience wrapper sweeping only the unroll factor."""
    return explore(source, evaluate, simdlen_factors=factors, **kwargs)


def explore_workload(
    workload,
    *,
    n: int | None = None,
    seed: int = 0,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8),
    reduction_copies: Sequence[int] = (8,),
    compute_units: Sequence[int] = (1,),
    **kwargs,
) -> DseResult:
    """Sweep directive parameters for a gallery workload (by name or
    :class:`~repro.workloads.base.GalleryWorkload`), evaluating each
    configuration on one representative instance (``smoke_size`` unless
    ``n`` is given).  The frontend compiles exactly once per workload per
    sweep (``result.session.counters["frontend_compiles"] == 1``)."""
    from repro.workloads import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    return explore(
        workload.source,
        workload.evaluator(n, seed),
        simdlen_factors=simdlen_factors,
        reduction_copies=reduction_copies,
        compute_units=compute_units,
        **kwargs,
    )


def explore_gallery(
    names: Sequence[str] | None = None,
    *,
    simdlen_factors: Sequence[int] = (1, 4),
    **kwargs,
) -> dict[str, DseResult]:
    """Run the DSE sweep over every (or the named) gallery workloads.

    Returns ``{workload name: DseResult}`` — the BENCH trajectory's
    "does DSE still find a feasible point for every workload" probe.
    Memory stays flat across the gallery: points drop their programs
    unless ``keep_programs=True`` is forwarded.
    """
    from repro.workloads import all_workloads, get_workload

    if "session" in kwargs:
        raise ValueError(
            "explore_gallery() builds one Session per workload (each "
            "workload has its own source text); a shared session= cannot "
            "be forwarded — pass session= to explore_workload/explore "
            "for a single-source sweep instead"
        )

    workloads = (
        [get_workload(name) for name in names]
        if names is not None
        else list(all_workloads())
    )
    return {
        workload.name: explore_workload(
            workload, simdlen_factors=simdlen_factors, **kwargs
        )
        for workload in workloads
    }

"""Design-space exploration over OpenMP directive parameters.

The paper (§4) notes that "design space exploration could be added in
the future to automatically find the best combination of directives and
their parameters".  This module implements that extension on top of the
simulated toolchain: it sweeps candidate ``simdlen`` factors (and
reduction copy counts) for an offloaded kernel, synthesizes each
configuration, evaluates the modeled runtime on a user-supplied workload,
and reports the Pareto-best choice under a resource budget.

.. code-block:: python

    from repro.dse import explore_simdlen

    result = explore_simdlen(SAXPY_SOURCE, run_workload, factors=(1, 2, 4, 8, 10))
    print(result.best.simdlen, result.best.device_time_s)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fpga.board import U280Board
from repro.pipeline import CompiledProgram, compile_fortran
from repro.runtime.executor import ExecutionResult


@dataclass
class DsePoint:
    """One evaluated configuration."""

    simdlen: int
    reduction_copies: int
    device_time_s: float
    lut_pct: float
    dsp_pct: float
    achieved_iis: tuple[int, ...]
    program: CompiledProgram

    @property
    def device_time_ms(self) -> float:
        return self.device_time_s * 1e3


@dataclass
class DseResult:
    """Sweep outcome: all points plus the runtime-best within budget."""

    points: list[DsePoint] = field(default_factory=list)
    best: DsePoint | None = None

    def table(self) -> str:
        from repro.reporting import format_table

        rows = [
            (
                p.simdlen,
                p.reduction_copies,
                f"{p.device_time_ms:.3f}",
                f"{p.lut_pct:.2f}",
                ",".join(str(ii) for ii in p.achieved_iis),
                "*" if p is self.best else "",
            )
            for p in self.points
        ]
        return format_table(
            "Design-space exploration",
            ["simdlen", "red.copies", "time (ms)", "LUT %", "IIs", "best"],
            rows,
        )


_SIMDLEN_RE = re.compile(r"simdlen\(\d+\)")


def _with_simdlen(source: str, factor: int) -> str:
    """Rewrite the directive's simdlen (or drop simd entirely for 1)."""
    if _SIMDLEN_RE.search(source):
        if factor <= 1:
            return (
                source.replace("parallel do simd", "parallel do")
                .replace(" simdlen(10)", "")
                .replace(" simdlen(4)", "")
            )
        return _SIMDLEN_RE.sub(f"simdlen({factor})", source)
    if factor <= 1:
        return source
    return source.replace(
        "parallel do", f"parallel do simd simdlen({factor})", 1
    ).replace(
        "end parallel do simd simdlen", "end parallel do simd", 1
    )


def explore(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    *,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8, 10),
    reduction_copies: Sequence[int] = (8,),
    max_lut_pct: float = 70.0,
    board: U280Board | None = None,
) -> DseResult:
    """Sweep directive parameters and pick the fastest feasible point.

    ``evaluate`` runs a representative workload on a compiled program and
    returns its :class:`ExecutionResult`; the sweep minimizes
    ``device_time_s`` subject to the LUT budget.
    """
    result = DseResult()
    for copies in reduction_copies:
        for factor in simdlen_factors:
            variant = _with_simdlen(source, factor)
            program = compile_fortran(
                variant,
                board=board,
                default_reduction_copies=copies,
            )
            run = evaluate(program)
            utilization = program.bitstream.utilization()
            iis = tuple(
                sched.achieved_ii
                for kernel in program.bitstream.kernels.values()
                for sched in kernel.loops.values()
            )
            result.points.append(
                DsePoint(
                    simdlen=factor,
                    reduction_copies=copies,
                    device_time_s=run.device_time_s,
                    lut_pct=utilization.lut,
                    dsp_pct=utilization.dsp,
                    achieved_iis=iis,
                    program=program,
                )
            )
    feasible = [p for p in result.points if p.lut_pct <= max_lut_pct]
    if feasible:
        result.best = min(feasible, key=lambda p: p.device_time_s)
    return result


def explore_simdlen(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    factors: Sequence[int] = (1, 2, 4, 8, 10),
    **kwargs,
) -> DseResult:
    """Convenience wrapper sweeping only the unroll factor."""
    return explore(source, evaluate, simdlen_factors=factors, **kwargs)


def explore_workload(
    workload,
    *,
    n: int | None = None,
    seed: int = 0,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8),
    reduction_copies: Sequence[int] = (8,),
    **kwargs,
) -> DseResult:
    """Sweep directive parameters for a gallery workload (by name or
    :class:`~repro.workloads.base.GalleryWorkload`), evaluating each
    configuration on one representative instance (``smoke_size`` unless
    ``n`` is given)."""
    from repro.workloads import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    return explore(
        workload.source,
        workload.evaluator(n, seed),
        simdlen_factors=simdlen_factors,
        reduction_copies=reduction_copies,
        **kwargs,
    )


def explore_gallery(
    names: Sequence[str] | None = None,
    *,
    simdlen_factors: Sequence[int] = (1, 4),
    **kwargs,
) -> dict[str, DseResult]:
    """Run the DSE sweep over every (or the named) gallery workloads.

    Returns ``{workload name: DseResult}`` — the BENCH trajectory's
    "does DSE still find a feasible point for every workload" probe.
    """
    from repro.workloads import all_workloads, get_workload

    workloads = (
        [get_workload(name) for name in names]
        if names is not None
        else list(all_workloads())
    )
    return {
        workload.name: explore_workload(
            workload, simdlen_factors=simdlen_factors, **kwargs
        )
        for workload in workloads
    }

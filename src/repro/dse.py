"""Design-space exploration over OpenMP directive parameters.

The paper (§4) notes that "design space exploration could be added in
the future to automatically find the best combination of directives and
their parameters".  This module implements that extension on top of the
staged :class:`~repro.session.Session` API: one session per source
compiles the frontend and the host side exactly once, and the sweep
re-runs only the device build with each
:class:`~repro.session.KernelOverrides` point (``simdlen`` x reduction
copies), evaluates the modeled runtime on a user-supplied workload, and
reports the Pareto-best choice under a resource budget.

.. code-block:: python

    from repro.dse import explore_simdlen

    result = explore_simdlen(SAXPY_SOURCE, run_workload, factors=(1, 2, 4, 8, 10))
    print(result.best.simdlen, result.best.device_time_s)
    print(result.session.counters["frontend_compiles"])   # == 1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fpga.board import U280Board
from repro.ir.pass_manager import Instrumentation
from repro.runtime.executor import ExecutionResult
from repro.session import (
    CompiledProgram,
    KernelOverrides,
    Session,
    TargetConfig,
)


@dataclass
class DsePoint:
    """One evaluated configuration.

    ``program`` is only retained when the sweep runs with
    ``keep_programs=True`` — a full :class:`CompiledProgram` (bitstream +
    modules) per point makes gallery-wide sweeps hold every artifact
    alive, so the default keeps only the modeled numbers.
    """

    simdlen: int
    reduction_copies: int
    device_time_s: float
    lut_pct: float
    dsp_pct: float
    achieved_iis: tuple[int, ...]
    program: CompiledProgram | None = None

    @property
    def device_time_ms(self) -> float:
        return self.device_time_s * 1e3


@dataclass
class DseResult:
    """Sweep outcome: all points plus the runtime-best within budget."""

    points: list[DsePoint] = field(default_factory=list)
    best: DsePoint | None = None
    #: the session the sweep ran on — exposes the shared artifacts and
    #: the instrumentation counters (``frontend_compiles`` stays at 1)
    session: Session | None = None
    #: the resource budgets the feasibility filter enforced
    max_lut_pct: float = 70.0
    max_dsp_pct: float = 70.0

    def table(self) -> str:
        from repro.reporting import format_table

        rows = [
            (
                p.simdlen,
                p.reduction_copies,
                f"{p.device_time_ms:.3f}",
                f"{p.lut_pct:.2f}",
                f"{p.dsp_pct:.2f}",
                ",".join(str(ii) for ii in p.achieved_iis),
                "*" if p is self.best else "",
            )
            for p in self.points
        ]
        return format_table(
            "Design-space exploration "
            f"(budget: LUT <= {self.max_lut_pct:g} %, "
            f"DSP <= {self.max_dsp_pct:g} %)",
            ["simdlen", "red.copies", "time (ms)", "LUT %", "DSP %", "IIs",
             "best"],
            rows,
        )


def explore(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    *,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8, 10),
    reduction_copies: Sequence[int] = (8,),
    max_lut_pct: float = 70.0,
    max_dsp_pct: float = 70.0,
    board: U280Board | None = None,
    keep_programs: bool = False,
    session: Session | None = None,
) -> DseResult:
    """Sweep directive parameters and pick the fastest feasible point.

    ``evaluate`` runs a representative workload on a compiled program and
    returns its :class:`ExecutionResult`; the sweep minimizes
    ``device_time_s`` subject to *both* resource budgets (LUT and DSP
    utilization).  All points share one :class:`Session`: the frontend
    and host build run once, each point costs one device build.
    """
    if session is not None and session.source != source:
        raise ValueError(
            "explore(session=...) got a session built over different "
            "source text than the `source` argument"
        )
    if session is not None and board is not None and session.board != board:
        raise ValueError(
            "explore(session=..., board=...) got a session built for a "
            "different board than the `board` argument — the session's "
            "board always wins, so passing a disagreeing board would be "
            "silently ignored; build the session with "
            "TargetConfig(board=...) instead"
        )
    session = session or Session(
        source,
        target=TargetConfig(board=board),
        instrumentation=Instrumentation(),
    )
    result = DseResult(
        session=session, max_lut_pct=max_lut_pct, max_dsp_pct=max_dsp_pct
    )
    for copies in reduction_copies:
        for factor in simdlen_factors:
            overrides = KernelOverrides(
                simdlen=factor, reduction_copies=copies
            )
            program = session.program(overrides)
            run = evaluate(program)
            utilization = program.bitstream.utilization()
            iis = tuple(
                sched.achieved_ii
                for kernel in program.bitstream.kernels.values()
                for sched in kernel.loops.values()
            )
            result.points.append(
                DsePoint(
                    simdlen=factor,
                    reduction_copies=copies,
                    device_time_s=run.device_time_s,
                    lut_pct=utilization.lut,
                    dsp_pct=utilization.dsp,
                    achieved_iis=iis,
                    program=program if keep_programs else None,
                )
            )
            if not keep_programs:
                # evict the heavy device build (bitstream + lowered
                # module) now that its numbers are extracted, so gallery
                # sweeps hold at most one build at a time
                session.release_build(overrides)
    feasible = [
        p
        for p in result.points
        if p.lut_pct <= max_lut_pct and p.dsp_pct <= max_dsp_pct
    ]
    if feasible:
        result.best = min(feasible, key=lambda p: p.device_time_s)
    return result


def explore_simdlen(
    source: str,
    evaluate: Callable[[CompiledProgram], ExecutionResult],
    factors: Sequence[int] = (1, 2, 4, 8, 10),
    **kwargs,
) -> DseResult:
    """Convenience wrapper sweeping only the unroll factor."""
    return explore(source, evaluate, simdlen_factors=factors, **kwargs)


def explore_workload(
    workload,
    *,
    n: int | None = None,
    seed: int = 0,
    simdlen_factors: Sequence[int] = (1, 2, 4, 8),
    reduction_copies: Sequence[int] = (8,),
    **kwargs,
) -> DseResult:
    """Sweep directive parameters for a gallery workload (by name or
    :class:`~repro.workloads.base.GalleryWorkload`), evaluating each
    configuration on one representative instance (``smoke_size`` unless
    ``n`` is given).  The frontend compiles exactly once per workload per
    sweep (``result.session.counters["frontend_compiles"] == 1``)."""
    from repro.workloads import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    return explore(
        workload.source,
        workload.evaluator(n, seed),
        simdlen_factors=simdlen_factors,
        reduction_copies=reduction_copies,
        **kwargs,
    )


def explore_gallery(
    names: Sequence[str] | None = None,
    *,
    simdlen_factors: Sequence[int] = (1, 4),
    **kwargs,
) -> dict[str, DseResult]:
    """Run the DSE sweep over every (or the named) gallery workloads.

    Returns ``{workload name: DseResult}`` — the BENCH trajectory's
    "does DSE still find a feasible point for every workload" probe.
    Memory stays flat across the gallery: points drop their programs
    unless ``keep_programs=True`` is forwarded.
    """
    from repro.workloads import all_workloads, get_workload

    if "session" in kwargs:
        raise ValueError(
            "explore_gallery() builds one Session per workload (each "
            "workload has its own source text); a shared session= cannot "
            "be forwarded — pass session= to explore_workload/explore "
            "for a single-source sweep instead"
        )

    workloads = (
        [get_workload(name) for name in names]
        if names is not None
        else list(all_workloads())
    )
    return {
        workload.name: explore_workload(
            workload, simdlen_factors=simdlen_factors, **kwargs
        )
        for workload in workloads
    }

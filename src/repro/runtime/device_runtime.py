"""Device data-region runtime: the reference counter the paper lowers to.

``device.data_acquire`` increments a per-identifier counter,
``device.data_release`` decrements it and ``device.data_check_exists``
tests counter > 0 (paper §3).  The buffer table itself outlives the
counter reaching zero (buffers are reused on re-entry), matching how the
generated host code keeps ``cl_mem`` objects alive for the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.reliability.errors import DeviceAllocationError, DeviceRuntimeError
from repro.runtime.opencl import ClBuffer, ClContext, ClError

__all__ = ["DeviceDataTable", "DeviceRuntimeError"]


@dataclass
class DeviceDataTable:
    """Identifier -> (buffer, reference counter)."""

    context: ClContext
    counters: dict[str, int] = field(default_factory=dict)
    #: admit buffers larger than their memory space — armed by the
    #: executor when double-buffered streaming is on (only one tile is
    #: resident at a time in that model)
    oversubscribe: bool = False

    # -- counter protocol -----------------------------------------------------------

    def check_exists(self, name: str) -> bool:
        return self.counters.get(name, 0) > 0

    def acquire(self, name: str) -> int:
        self.counters[name] = self.counters.get(name, 0) + 1
        return self.counters[name]

    def release(self, name: str) -> int:
        count = self.counters.get(name, 0)
        if count <= 0:
            raise DeviceRuntimeError(
                f"device.data_release of {name!r} without matching acquire"
            )
        self.counters[name] = count - 1
        return self.counters[name]

    # -- buffer table -----------------------------------------------------------------

    def alloc(
        self, name: str, shape: tuple[int, ...], dtype, memory_space: int
    ) -> ClBuffer:
        existing = self.context.buffers.get(name)
        if existing is not None:
            if (
                existing.data.shape == tuple(shape)
                and existing.data.dtype == np.dtype(dtype)
                and existing.memory_space == memory_space
            ):
                return existing  # reuse resident allocation
        try:
            return self.context.create_buffer(
                name,
                tuple(shape),
                dtype,
                memory_space,
                oversubscribe=self.oversubscribe,
            )
        except ClError as error:
            if "ALLOCATION_FAILURE" in str(error):
                raise DeviceAllocationError(
                    f"device.alloc {name!r} does not fit its memory "
                    f"space: {error}; datasets larger than device memory "
                    "need the double-buffered streaming mode "
                    "(KernelOverrides.stream_tile_bytes)",
                    context=f"buffer={name}",
                ) from error
            raise

    def lookup(self, name: str, memory_space: int) -> ClBuffer:
        buffer = self.context.get_buffer(name)
        if buffer.memory_space != memory_space:
            raise DeviceRuntimeError(
                f"buffer {name!r} lives in space {buffer.memory_space}, "
                f"lookup asked for {memory_space}"
            )
        return buffer

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

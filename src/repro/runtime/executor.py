"""Host-program executor against the simulated FPGA.

Interprets the *host* module (post device-dialect lowering), binding the
``device`` ops to the simulated OpenCL runtime:

* functional semantics — buffers are NumPy arrays, kernels execute via
  the IR interpreter on the device module, so results are bit-for-bit
  checkable against NumPy/SciPy references;
* timing semantics — DMA ops advance the command-queue clock through the
  board's PCIe model and each kernel launch adds launch overhead plus the
  scheduled cycle count (pipeline fill + trips x achieved II).

Kernel trip counts are observed during functional interpretation, so
dynamically-bounded loops (SGESL's ``j = k+1, n``) are timed exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.backend.vitis import Bitstream
from repro.dialects import builtin
from repro.dialects.memref import element_dtype
from repro.fpga.board import U280Board
from repro.ir.attributes import IntegerAttr, StringAttr, SymbolRefAttr
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter
from repro.ir.types import DYNAMIC, MemRefType
from repro.runtime.device_runtime import DeviceDataTable
from repro.runtime.opencl import ClCommandQueue, ClContext


@dataclass
class KernelInstance:
    """Runtime value of ``!device.kernelhandle``."""

    device_function: str
    args: list


@dataclass
class ExecutionResult:
    """Timing/result summary of one host-program run."""

    device_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    launches: int
    transfers: int
    bytes_h2d: int
    bytes_d2h: int
    kernel_cycles: float
    returned: tuple = ()
    #: interpreter steps retired (host program + device kernels) — the
    #: simulator-workload measure the perf-smoke bench tracks across PRs
    interpreter_steps: int = 0

    @property
    def device_time_ms(self) -> float:
        return self.device_time_s * 1e3


def _flow_jitter(key: str) -> float:
    """Deterministic run-to-run variability (sub-percent), standing in for
    the measurement noise visible in the paper's Tables 1/2."""
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64
    return 1.0 + (2.0 * unit - 1.0) * 0.004


class FpgaExecutor:
    """Executes a compiled host module against the simulated board."""

    def __init__(
        self,
        host_module: builtin.ModuleOp,
        bitstream: Bitstream,
        board: U280Board | None = None,
        flow_label: str = "fortran-openmp",
        *,
        compiled: bool = True,
        vectorize: bool = True,
    ):
        self.host_module = host_module
        self.bitstream = bitstream
        self.board = board or bitstream.board
        self.flow_label = flow_label
        #: execution-tier selection, forwarded to both the host program
        #: interpreter and the device-kernel runner (the conformance suite
        #: sweeps these and asserts bit-identical results + accounting)
        self.compiled = compiled
        self.vectorize = vectorize
        self.context = ClContext(self.board)
        self.table = DeviceDataTable(self.context)
        self.queue = ClCommandQueue(self.board)
        self._kernel_time_s = 0.0
        self._transfer_time_s = 0.0
        self._kernel_cycles = 0.0
        from repro.runtime.kernel_runner import KernelRunner

        self._runner = KernelRunner(
            bitstream, compiled=compiled, vectorize=vectorize
        )

    # -- public API --------------------------------------------------------------------

    def run(self, func_name: str, *args) -> ExecutionResult:
        interp = Interpreter(
            self.host_module,
            extra_impls=self._host_impls(),
            compiled=self.compiled,
            vectorize=self.vectorize,
        )
        # Compiled device-op closures bind straight to this executor;
        # the extra impls above serve the scalar fallback path.
        interp.host_executor = self
        runner_steps_before = self._runner.interpreter_steps
        returned = interp.call(func_name, *args)
        kernel_steps = self._runner.interpreter_steps - runner_steps_before
        jitter = _flow_jitter(f"{self.flow_label}:{func_name}:{self.queue.now_s:.9f}")
        stats = self.queue.stats
        return ExecutionResult(
            device_time_s=self.queue.now_s * jitter,
            kernel_time_s=self._kernel_time_s,
            transfer_time_s=self._transfer_time_s,
            launches=stats["launches"],
            transfers=stats["transfers"],
            bytes_h2d=stats["bytes_h2d"],
            bytes_d2h=stats["bytes_d2h"],
            kernel_cycles=self._kernel_cycles,
            returned=returned,
            interpreter_steps=interp.steps + kernel_steps,
        )

    # -- device-op implementations -------------------------------------------------------

    def _host_impls(self) -> dict:
        return {
            "device.alloc": self._run_alloc,
            "device.lookup": self._run_lookup,
            "device.data_check_exists": self._run_check_exists,
            "device.data_acquire": self._run_acquire,
            "device.data_release": self._run_release,
            "device.kernel_create": self._run_kernel_create,
            "device.kernel_launch": self._run_kernel_launch,
            "device.kernel_wait": self._run_kernel_wait,
            "memref.dma_start": self._run_dma_start,
            "memref.wait": self._run_dma_wait,
        }

    @staticmethod
    def _attrs(op: Operation) -> tuple[str, int]:
        name_attr = op.attributes["name"]
        assert isinstance(name_attr, StringAttr)
        space_attr = op.attributes.get("memory_space")
        space = space_attr.value if isinstance(space_attr, IntegerAttr) else 1
        return name_attr.value, space

    def _run_alloc(self, interp: Interpreter, op: Operation, env: dict):
        name, space = self._attrs(op)
        ty = op.results[0].type
        assert isinstance(ty, MemRefType)
        sizes = iter(interp.operand_values(op, env))
        shape = tuple(
            int(next(sizes)) if extent == DYNAMIC else extent
            for extent in ty.shape
        )
        buffer = self.table.alloc(
            name, shape, element_dtype(ty.element_type), space
        )
        interp.set_results(op, env, [buffer.data])
        return None

    def _run_lookup(self, interp: Interpreter, op: Operation, env: dict):
        name, space = self._attrs(op)
        buffer = self.table.lookup(name, space)
        interp.set_results(op, env, [buffer.data])
        return None

    def _run_check_exists(self, interp: Interpreter, op: Operation, env: dict):
        name_attr = op.attributes["name"]
        assert isinstance(name_attr, StringAttr)
        interp.set_results(op, env, [self.table.check_exists(name_attr.value)])
        return None

    def _run_acquire(self, interp: Interpreter, op: Operation, env: dict):
        name, _ = self._attrs(op)
        self.table.acquire(name)
        return None

    def _run_release(self, interp: Interpreter, op: Operation, env: dict):
        name, _ = self._attrs(op)
        self.table.release(name)
        return None

    def _run_dma_start(self, interp: Interpreter, op: Operation, env: dict):
        source, dest = interp.operand_values(op, env)
        np.copyto(dest, source)
        seconds = self.board.dma_time_s(int(np.asarray(source).nbytes))
        self.queue.now_s += seconds
        self._transfer_time_s += seconds
        src_ty = op.operands[0].type
        assert isinstance(src_ty, MemRefType)
        h2d = src_ty.memory_space == 0
        counters = self.queue._counters
        counters["transfers"] += 1
        counters["bytes_h2d" if h2d else "bytes_d2h"] += int(
            np.asarray(source).nbytes
        )
        interp.set_results(op, env, [0])
        return None

    def _run_dma_wait(self, interp: Interpreter, op: Operation, env: dict):
        return None

    def _run_kernel_create(self, interp: Interpreter, op: Operation, env: dict):
        fn_attr = op.attributes.get("device_function")
        if not isinstance(fn_attr, SymbolRefAttr):
            raise IRError(
                "device.kernel_create has no device_function: run "
                "extract-device-module before executing"
            )
        instance = KernelInstance(
            device_function=fn_attr.symbol,
            args=interp.operand_values(op, env),
        )
        interp.set_results(op, env, [instance])
        return None

    def _run_kernel_launch(self, interp: Interpreter, op: Operation, env: dict):
        instance = interp.get(env, op.operands[0])
        assert isinstance(instance, KernelInstance)
        run = self._runner.run(instance.device_function, *instance.args)
        self._kernel_cycles += run.cycles
        self._kernel_time_s += run.seconds
        self.queue.now_s += self.board.kernel_launch_overhead_s + run.seconds
        self.queue._counters["launches"] += 1
        return None

    def _run_kernel_wait(self, interp: Interpreter, op: Operation, env: dict):
        return None


# -- compiled-form emitters ---------------------------------------------------
#
# The host driver loop executes tens of thousands of device ops per run
# (SGESL n=512: ~50k); going through the generic impl fallback costs a
# handler lookup, an env proxy and an operand list per op.  These emitters
# parse attributes once at compile time and bind the closure directly to
# ``interp.host_executor``.  When no executor is attached (plain
# interpretation, or a caller's custom impls) they defer to the regular
# impl dispatch, so they are registered impl-independent.

from repro.ir.compile import FnCompiler, compiled_for


def _executor_emitter(op_name: str, build):
    """Register an emitter whose fast path needs ``interp.host_executor``.

    ``build(op, ctx, fallback)`` returns the complete closure; it must
    defer to ``fallback`` when no executor is attached and count its own
    step otherwise.
    """

    @compiled_for(op_name, counts_own_steps=True, impl_independent=True)
    def emit(op: Operation, ctx: FnCompiler):
        return build(op, ctx, ctx.fallback(op))

    return emit


def _build_alloc(op: Operation, ctx: FnCompiler, fallback):
    name, space = FpgaExecutor._attrs(op)
    ty = op.results[0].type
    assert isinstance(ty, MemRefType)
    dtype = element_dtype(ty.element_type)
    size_slots = iter(ctx.slot_list(op.operands))
    shape_spec = tuple(
        next(size_slots) if extent == DYNAMIC else -extent - 1
        for extent in ty.shape
    )
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        shape = tuple(
            int(frame[entry]) if entry >= 0 else -entry - 1
            for entry in shape_spec
        )
        frame[res_i] = executor.table.alloc(name, shape, dtype, space).data
    return run


def _build_lookup(op: Operation, ctx: FnCompiler, fallback):
    name, space = FpgaExecutor._attrs(op)
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = executor.table.lookup(name, space).data
    return run


def _build_check_exists(op: Operation, ctx: FnCompiler, fallback):
    name_attr = op.attributes["name"]
    assert isinstance(name_attr, StringAttr)
    name = name_attr.value
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = executor.table.check_exists(name)
    return run


def _build_acquire(op: Operation, ctx: FnCompiler, fallback):
    name, _ = FpgaExecutor._attrs(op)

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        executor.table.acquire(name)
    return run


def _build_release(op: Operation, ctx: FnCompiler, fallback):
    name, _ = FpgaExecutor._attrs(op)

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        executor.table.release(name)
    return run


def _build_kernel_create(op: Operation, ctx: FnCompiler, fallback):
    from repro.ir.compile import CannotCompile

    fn_attr = op.attributes.get("device_function")
    if not isinstance(fn_attr, SymbolRefAttr):
        # scalar path raises the "run extract-device-module" error
        raise CannotCompile("device.kernel_create without device_function")
    device_function = fn_attr.symbol
    arg_slots = tuple(ctx.slot_list(op.operands))
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = KernelInstance(
            device_function, [frame[s] for s in arg_slots]
        )
    return run


def _build_kernel_launch(op: Operation, ctx: FnCompiler, fallback):
    handle_i = ctx.slot(op.operands[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        instance = frame[handle_i]
        kernel_run = executor._runner.run(
            instance.device_function, *instance.args
        )
        executor._kernel_cycles += kernel_run.cycles
        executor._kernel_time_s += kernel_run.seconds
        executor.queue.now_s += (
            executor.board.kernel_launch_overhead_s + kernel_run.seconds
        )
        executor.queue._counters["launches"] += 1
    return run


def _build_noop(op: Operation, ctx: FnCompiler, fallback):
    def run(interp, frame):
        if interp.host_executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
    return run


def _build_dma_start(op: Operation, ctx: FnCompiler, fallback):
    src_i, dst_i = (ctx.slot(o) for o in op.operands)
    res_i = ctx.slot(op.results[0])
    src_ty = op.operands[0].type
    assert isinstance(src_ty, MemRefType)
    bytes_key = "bytes_h2d" if src_ty.memory_space == 0 else "bytes_d2h"

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        source = frame[src_i]
        np.copyto(frame[dst_i], source)
        nbytes = int(np.asarray(source).nbytes)
        seconds = executor.board.dma_time_s(nbytes)
        executor.queue.now_s += seconds
        executor._transfer_time_s += seconds
        counters = executor.queue._counters
        counters["transfers"] += 1
        counters[bytes_key] += nbytes
        frame[res_i] = 0
    return run


_executor_emitter("device.alloc", _build_alloc)
_executor_emitter("device.lookup", _build_lookup)
_executor_emitter("device.data_check_exists", _build_check_exists)
_executor_emitter("device.data_acquire", _build_acquire)
_executor_emitter("device.data_release", _build_release)
_executor_emitter("device.kernel_create", _build_kernel_create)
_executor_emitter("device.kernel_launch", _build_kernel_launch)
_executor_emitter("device.kernel_wait", _build_noop)
_executor_emitter("memref.dma_start", _build_dma_start)


@compiled_for("memref.wait", impl_independent=True)
def _emit_dma_wait(op: Operation, ctx: FnCompiler):
    # No-op under both the plain interpreter impl and the executor's.
    return None

"""Host-program executor against the simulated FPGA.

Interprets the *host* module (post device-dialect lowering), binding the
``device`` ops to the simulated OpenCL runtime:

* functional semantics — buffers are NumPy arrays, kernels execute via
  the IR interpreter on the device module, so results are bit-for-bit
  checkable against NumPy/SciPy references;
* timing semantics — DMA ops advance the command-queue clock through the
  board's PCIe model and each kernel launch adds launch overhead plus the
  scheduled cycle count (pipeline fill + trips x achieved II).

Kernel trip counts are observed during functional interpretation, so
dynamically-bounded loops (SGESL's ``j = k+1, n``) are timed exactly.

Multi-CU builds price each launch as the makespan over compute units
(see :mod:`repro.runtime.kernel_runner`) and pay the enqueue overhead
once per CU.  When the bitstream carries ``stream_tile_bytes`` the DMA
model switches to *double-buffered streaming*: arrays larger than the
tile move in tile-sized transfers whose cost overlaps the adjacent
kernel's busy window — the first input tile and the last output tile
stay on the critical path, everything in between hides behind compute
(bounded by the compute window; leftovers are charged, never dropped).
Functional data movement is unchanged — streaming only re-times it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.backend.vitis import Bitstream
from repro.dialects import builtin
from repro.dialects.memref import element_dtype
from repro.fpga.board import U280Board
from repro.ir.attributes import IntegerAttr, StringAttr, SymbolRefAttr
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter
from repro.ir.types import DYNAMIC, MemRefType
from repro.reliability.errors import DataIntegrityError, WatchdogTimeout
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.reliability.report import RunReport
from repro.reliability.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.runtime.device_runtime import DeviceDataTable
from repro.runtime.opencl import ClCommandQueue, ClContext


@dataclass
class KernelInstance:
    """Runtime value of ``!device.kernelhandle``."""

    device_function: str
    args: list


@dataclass
class ExecutionResult:
    """Timing/result summary of one host-program run."""

    device_time_s: float
    kernel_time_s: float
    transfer_time_s: float
    launches: int
    transfers: int
    bytes_h2d: int
    bytes_d2h: int
    kernel_cycles: float
    returned: tuple = ()
    #: accumulated per-compute-unit cycle counts (empty for CU=1 builds)
    cu_cycles: tuple = ()
    #: interpreter steps retired (host program + device kernels) — the
    #: simulator-workload measure the perf-smoke bench tracks across PRs
    interpreter_steps: int = 0
    #: reliability record of the run (faults hit, retries, degradations)
    report: "RunReport | None" = None

    @property
    def device_time_ms(self) -> float:
        return self.device_time_s * 1e3


def _flow_jitter(key: str) -> float:
    """Deterministic run-to-run variability (sub-percent), standing in for
    the measurement noise visible in the paper's Tables 1/2.

    **Determinism is load-bearing.**  The jitter is a pure function of
    the SHA-256 digest of ``key`` — no global RNG, no wall clock, no
    process state — and ``key`` itself is built only from modelled
    values (flow label, entry function, the command queue's simulated
    time).  That is what lets the four engine tiers, retried runs, and
    the CI bench gate all reproduce ``device_time_ms`` bit-for-bit: any
    path that reaches the same simulated queue time gets the *same*
    jitter factor.  The factor is bounded to ±0.4 % of unity
    (``1.0 ± 0.004``); ``tests/runtime/test_flow_jitter.py`` pins both
    the bound and exact digest-derived values, so an accidental
    dependence on ambient state shows up as a test failure, not silent
    bench drift.
    """
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64
    return 1.0 + (2.0 * unit - 1.0) * 0.004


class FpgaExecutor:
    """Executes a compiled host module against the simulated board."""

    def __init__(
        self,
        host_module: builtin.ModuleOp,
        bitstream: Bitstream,
        board: U280Board | None = None,
        flow_label: str = "fortran-openmp",
        *,
        compiled: bool = True,
        vectorize: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        watchdog_steps: int | None = None,
    ):
        self.host_module = host_module
        self.bitstream = bitstream
        self.board = board or bitstream.board
        self.flow_label = flow_label
        #: execution-tier selection, forwarded to both the host program
        #: interpreter and the device-kernel runner (the conformance suite
        #: sweeps these and asserts bit-identical results + accounting)
        self.compiled = compiled
        self.vectorize = vectorize
        #: reliability knobs — the Instrumentation-style hook: when no
        #: plan is armed ``self._faults`` stays None and every guarded
        #: site costs one attribute check and nothing else
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.watchdog_steps = watchdog_steps
        self._faults = None
        #: RunReport of the current/most recent run
        self.report: RunReport | None = None
        self.context = ClContext(self.board)
        self.table = DeviceDataTable(self.context)
        self.queue = ClCommandQueue(self.board)
        self._kernel_time_s = 0.0
        self._transfer_time_s = 0.0
        self._kernel_cycles = 0.0
        #: multi-CU pricing: N CUs mean N OpenCL enqueues per logical
        #: launch (overhead xN) and per-CU cycle accumulation
        self._compute_units = max(1, getattr(bitstream, "compute_units", 1))
        self._launch_overhead_s = (
            self.board.kernel_launch_overhead_s * self._compute_units
        )
        self._cu_cycles: tuple = ()
        #: double-buffered streaming state — ``None`` tile disables it
        self._stream_tile_bytes = getattr(bitstream, "stream_tile_bytes", None)
        self._stream_pending_in_s = 0.0
        self._stream_out_budget_s = 0.0
        if self._stream_tile_bytes is not None:
            # only a tile is resident at a time in the streamed model, so
            # arrays may exceed a bank's capacity
            self.table.oversubscribe = True
        from repro.runtime.kernel_runner import KernelRunner

        self._runner = KernelRunner(
            bitstream, compiled=compiled, vectorize=vectorize,
            watchdog_steps=watchdog_steps,
        )

    # -- public API --------------------------------------------------------------------

    def run(self, func_name: str, *args) -> ExecutionResult:
        report = RunReport(watchdog_budget=self.watchdog_steps)
        self.report = report
        self._faults = (
            self.fault_plan.controller(report, self.retry_policy)
            if self.fault_plan is not None
            else None
        )
        interp = Interpreter(
            self.host_module,
            extra_impls=self._host_impls(),
            compiled=self.compiled,
            vectorize=self.vectorize,
        )
        # Compiled device-op closures bind straight to this executor;
        # the extra impls above serve the scalar fallback path.
        interp.host_executor = self
        interp.reliability_report = report
        self._runner.attach_report(report)
        runner_steps_before = self._runner.interpreter_steps
        returned = interp.call(func_name, *args)
        report.completed = True
        kernel_steps = self._runner.interpreter_steps - runner_steps_before
        if self._stream_pending_in_s:
            # input tiles still in flight with no kernel left to hide
            # behind: they finish on the critical path
            self.queue.now_s += self._stream_pending_in_s
            self._stream_pending_in_s = 0.0
        jitter = _flow_jitter(f"{self.flow_label}:{func_name}:{self.queue.now_s:.9f}")
        stats = self.queue.stats
        return ExecutionResult(
            device_time_s=self.queue.now_s * jitter,
            kernel_time_s=self._kernel_time_s,
            transfer_time_s=self._transfer_time_s,
            launches=stats["launches"],
            transfers=stats["transfers"],
            bytes_h2d=stats["bytes_h2d"],
            bytes_d2h=stats["bytes_d2h"],
            kernel_cycles=self._kernel_cycles,
            returned=returned,
            cu_cycles=self._cu_cycles,
            interpreter_steps=interp.steps + kernel_steps,
            report=report,
        )

    # -- accounting --------------------------------------------------------------------
    #
    # Every kernel launch and DMA transfer — scalar impl, compiled
    # emitter, fault-retry path — charges through these two methods, so
    # the multi-CU and streaming models apply uniformly across tiers.
    # At compute_units=1 with streaming off both reduce to exactly the
    # pre-existing arithmetic (one addition per charge, same operands),
    # keeping modelled times byte-identical to earlier baselines.

    def _charge_kernel_run(self, run) -> None:
        """Charge one successful kernel execution to the clocks."""
        self._kernel_cycles += run.cycles
        self._kernel_time_s += run.seconds
        if run.per_cu_cycles:
            if self._cu_cycles:
                self._cu_cycles = tuple(
                    have + new
                    for have, new in zip(self._cu_cycles, run.per_cu_cycles)
                )
            else:
                self._cu_cycles = run.per_cu_cycles
        busy = run.seconds
        if self._stream_pending_in_s:
            # in-flight input tiles stream in while the kernel computes;
            # the longer of the two bounds the launch window
            busy = max(busy, self._stream_pending_in_s)
            self._stream_pending_in_s = 0.0
        self.queue.now_s += self._launch_overhead_s + busy
        # output tiles may hide behind this window (consumed by d2h)
        self._stream_out_budget_s = busy
        self.queue._counters["launches"] += 1

    def _charge_dma(self, nbytes: int, h2d: bool) -> None:
        """Charge one host<->device transfer of ``nbytes``."""
        counters = self.queue._counters
        tile = self._stream_tile_bytes
        if tile is None or nbytes <= tile:
            seconds = self.board.dma_time_s(nbytes)
            self.queue.now_s += seconds
            self._transfer_time_s += seconds
            counters["transfers"] += 1
            counters["bytes_h2d" if h2d else "bytes_d2h"] += nbytes
            return
        # Double-buffered streaming: ceil(nbytes/tile) tile transfers,
        # each paying the full PCIe model (tiling is not free — every
        # tile pays its own latency, visible in transfer_time_s).
        full, rem = divmod(nbytes, tile)
        sizes = [tile] * full + ([rem] if rem else [])
        times = [self.board.dma_time_s(size) for size in sizes]
        total = sum(times)
        self._transfer_time_s += total
        counters["transfers"] += len(sizes)
        counters["bytes_h2d" if h2d else "bytes_d2h"] += nbytes
        if h2d:
            # the first tile must land before compute starts; the rest
            # stream in behind it, overlapped with the next launch
            self.queue.now_s += times[0]
            self._stream_pending_in_s += total - times[0]
        else:
            # all but the last tile can stream out during the preceding
            # kernel's busy window; the overlap is bounded by that
            # window and shared between successive outputs
            overlap = min(total - times[-1], self._stream_out_budget_s)
            self._stream_out_budget_s -= overlap
            self.queue.now_s += total - overlap

    # -- fault-injection plumbing --------------------------------------------------------

    def _fault_gate(self, site: str) -> None:
        """Consume one occurrence of ``site`` against the armed plan.

        Fires *before* the op performs any work, so a transient fault
        that clears within the retry budget leaves accounting and state
        bit-identical to a fault-free run.  Only called when a plan is
        armed (callers check ``self._faults`` first).
        """
        spec = self._faults.poll(site)
        if spec is not None:
            self._faults.resolve(spec, site)

    def _launch_checked(self, instance: "KernelInstance") -> None:
        """Kernel launch with the fault plan armed: launch failures are
        resolved via retry, hangs run under an injected watchdog budget
        and bit-flips are detected on readback with checkpoint/rollback.
        Accounting (cycles, queue time, counters) is charged only for
        the final successful attempt, identical to the fault-free run.
        """
        name = instance.device_function
        spec = self._faults.poll("kernel_launch", kernel=name)
        if spec is None:
            run = self._runner.run(name, *instance.args)
        elif spec.kind == "fail":
            self._faults.resolve(spec, "kernel_launch", kernel=name)
            run = self._runner.run(name, *instance.args)
        else:
            run = self._launch_with_rollback(instance, spec)
        self._charge_kernel_run(run)

    def _launch_with_rollback(
        self, instance: "KernelInstance", spec: FaultSpec
    ):
        """Execute one kernel under an injected hang or bit-flip fault.

        The kernel's array arguments (plus the bit-flip target buffer)
        are checkpointed before each attempt; a faulted attempt restores
        them and rolls the device step counter back, so a recovered run
        is indistinguishable from a fault-free one outside the report.
        """
        runner = self._runner
        report, policy = self.report, self.retry_policy
        name = instance.device_function
        arrays = [a for a in instance.args if isinstance(a, np.ndarray)]
        target = None
        if spec.kind == "bitflip":
            target = self._bitflip_target(spec, instance)
            if target is not None and not any(target is a for a in arrays):
                arrays.append(target)
        snapshots = [(array, array.copy()) for array in arrays]
        steps_before = runner.interpreter_steps
        for attempt in range(1, policy.max_attempts + 1):
            fires = self._faults.fires(spec, attempt)
            try:
                if spec.kind == "hang" and fires:
                    run = runner.run(
                        name, *instance.args, step_budget=spec.hang_steps
                    )
                else:
                    run = runner.run(name, *instance.args)
                if spec.kind == "bitflip" and fires and target is not None:
                    flat = target.reshape(-1).view(np.uint8)
                    flat[spec.bit % flat.size] ^= np.uint8(
                        1 << (spec.bit % 8)
                    )
                    raise DataIntegrityError(
                        f"readback checksum mismatch after kernel {name!r} "
                        f"(injected bit-flip on "
                        f"{spec.buffer or 'first array argument'})",
                        kernel=name,
                        transient=spec.transient,
                    )
                return run
            except (WatchdogTimeout, DataIntegrityError) as error:
                for array, saved in snapshots:
                    np.copyto(array, saved)
                runner.reset_steps(steps_before)
                report.record_fault(
                    "kernel_launch", spec.kind, spec.transient, attempt,
                    kernel=name, detail=str(error),
                )
                if not spec.transient or attempt == policy.max_attempts:
                    raise
                report.record_retry(policy.backoff_s(attempt))
        raise AssertionError("unreachable: retry loop exits by return/raise")

    def _bitflip_target(
        self, spec: FaultSpec, instance: "KernelInstance"
    ) -> np.ndarray | None:
        if spec.buffer is not None:
            buffer = self.context.buffers.get(spec.buffer)
            if buffer is not None:
                return buffer.data
        for arg in instance.args:
            if isinstance(arg, np.ndarray) and arg.size:
                return arg
        return None

    # -- device-op implementations -------------------------------------------------------

    def _host_impls(self) -> dict:
        return {
            "device.alloc": self._run_alloc,
            "device.lookup": self._run_lookup,
            "device.data_check_exists": self._run_check_exists,
            "device.data_acquire": self._run_acquire,
            "device.data_release": self._run_release,
            "device.kernel_create": self._run_kernel_create,
            "device.kernel_launch": self._run_kernel_launch,
            "device.kernel_wait": self._run_kernel_wait,
            "memref.dma_start": self._run_dma_start,
            "memref.wait": self._run_dma_wait,
        }

    @staticmethod
    def _attrs(op: Operation) -> tuple[str, int]:
        name_attr = op.attributes["name"]
        assert isinstance(name_attr, StringAttr)
        space_attr = op.attributes.get("memory_space")
        space = space_attr.value if isinstance(space_attr, IntegerAttr) else 1
        return name_attr.value, space

    def _run_alloc(self, interp: Interpreter, op: Operation, env: dict):
        if self._faults is not None:
            self._fault_gate("alloc")
        name, space = self._attrs(op)
        ty = op.results[0].type
        assert isinstance(ty, MemRefType)
        sizes = iter(interp.operand_values(op, env))
        shape = tuple(
            int(next(sizes)) if extent == DYNAMIC else extent
            for extent in ty.shape
        )
        buffer = self.table.alloc(
            name, shape, element_dtype(ty.element_type), space
        )
        interp.set_results(op, env, [buffer.data])
        return None

    def _run_lookup(self, interp: Interpreter, op: Operation, env: dict):
        name, space = self._attrs(op)
        buffer = self.table.lookup(name, space)
        interp.set_results(op, env, [buffer.data])
        return None

    def _run_check_exists(self, interp: Interpreter, op: Operation, env: dict):
        name_attr = op.attributes["name"]
        assert isinstance(name_attr, StringAttr)
        interp.set_results(op, env, [self.table.check_exists(name_attr.value)])
        return None

    def _run_acquire(self, interp: Interpreter, op: Operation, env: dict):
        name, _ = self._attrs(op)
        self.table.acquire(name)
        return None

    def _run_release(self, interp: Interpreter, op: Operation, env: dict):
        name, _ = self._attrs(op)
        self.table.release(name)
        return None

    def _run_dma_start(self, interp: Interpreter, op: Operation, env: dict):
        if self._faults is not None:
            self._fault_gate("dma_start")
        source, dest = interp.operand_values(op, env)
        np.copyto(dest, source)
        src_ty = op.operands[0].type
        assert isinstance(src_ty, MemRefType)
        self._charge_dma(
            int(np.asarray(source).nbytes), src_ty.memory_space == 0
        )
        interp.set_results(op, env, [0])
        return None

    def _run_dma_wait(self, interp: Interpreter, op: Operation, env: dict):
        if self._faults is not None:
            self._fault_gate("dma_wait")
        return None

    def _run_kernel_create(self, interp: Interpreter, op: Operation, env: dict):
        fn_attr = op.attributes.get("device_function")
        if not isinstance(fn_attr, SymbolRefAttr):
            raise IRError(
                "device.kernel_create has no device_function: run "
                "extract-device-module before executing"
            )
        instance = KernelInstance(
            device_function=fn_attr.symbol,
            args=interp.operand_values(op, env),
        )
        interp.set_results(op, env, [instance])
        return None

    def _run_kernel_launch(self, interp: Interpreter, op: Operation, env: dict):
        instance = interp.get(env, op.operands[0])
        assert isinstance(instance, KernelInstance)
        if self._faults is not None:
            self._launch_checked(instance)
            return None
        run = self._runner.run(instance.device_function, *instance.args)
        self._charge_kernel_run(run)
        return None

    def _run_kernel_wait(self, interp: Interpreter, op: Operation, env: dict):
        return None


# -- compiled-form emitters ---------------------------------------------------
#
# The host driver loop executes tens of thousands of device ops per run
# (SGESL n=512: ~50k); going through the generic impl fallback costs a
# handler lookup, an env proxy and an operand list per op.  These emitters
# parse attributes once at compile time and bind the closure directly to
# ``interp.host_executor``.  When no executor is attached (plain
# interpretation, or a caller's custom impls) they defer to the regular
# impl dispatch, so they are registered impl-independent.

from repro.ir.compile import FnCompiler, compiled_for


def _executor_emitter(op_name: str, build):
    """Register an emitter whose fast path needs ``interp.host_executor``.

    ``build(op, ctx, fallback)`` returns the complete closure; it must
    defer to ``fallback`` when no executor is attached and count its own
    step otherwise.
    """

    @compiled_for(op_name, counts_own_steps=True, impl_independent=True)
    def emit(op: Operation, ctx: FnCompiler):
        return build(op, ctx, ctx.fallback(op))

    return emit


def _build_alloc(op: Operation, ctx: FnCompiler, fallback):
    name, space = FpgaExecutor._attrs(op)
    ty = op.results[0].type
    assert isinstance(ty, MemRefType)
    dtype = element_dtype(ty.element_type)
    size_slots = iter(ctx.slot_list(op.operands))
    shape_spec = tuple(
        next(size_slots) if extent == DYNAMIC else -extent - 1
        for extent in ty.shape
    )
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        if executor._faults is not None:
            executor._fault_gate("alloc")
        shape = tuple(
            int(frame[entry]) if entry >= 0 else -entry - 1
            for entry in shape_spec
        )
        frame[res_i] = executor.table.alloc(name, shape, dtype, space).data
    return run


def _build_lookup(op: Operation, ctx: FnCompiler, fallback):
    name, space = FpgaExecutor._attrs(op)
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = executor.table.lookup(name, space).data
    return run


def _build_check_exists(op: Operation, ctx: FnCompiler, fallback):
    name_attr = op.attributes["name"]
    assert isinstance(name_attr, StringAttr)
    name = name_attr.value
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = executor.table.check_exists(name)
    return run


def _build_acquire(op: Operation, ctx: FnCompiler, fallback):
    name, _ = FpgaExecutor._attrs(op)

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        executor.table.acquire(name)
    return run


def _build_release(op: Operation, ctx: FnCompiler, fallback):
    name, _ = FpgaExecutor._attrs(op)

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        executor.table.release(name)
    return run


def _build_kernel_create(op: Operation, ctx: FnCompiler, fallback):
    from repro.ir.compile import CannotCompile

    fn_attr = op.attributes.get("device_function")
    if not isinstance(fn_attr, SymbolRefAttr):
        # scalar path raises the "run extract-device-module" error
        raise CannotCompile("device.kernel_create without device_function")
    device_function = fn_attr.symbol
    arg_slots = tuple(ctx.slot_list(op.operands))
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        frame[res_i] = KernelInstance(
            device_function, [frame[s] for s in arg_slots]
        )
    return run


def _build_kernel_launch(op: Operation, ctx: FnCompiler, fallback):
    handle_i = ctx.slot(op.operands[0])

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        instance = frame[handle_i]
        if executor._faults is not None:
            executor._launch_checked(instance)
            return
        kernel_run = executor._runner.run(
            instance.device_function, *instance.args
        )
        executor._charge_kernel_run(kernel_run)
    return run


def _build_noop(op: Operation, ctx: FnCompiler, fallback):
    def run(interp, frame):
        if interp.host_executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
    return run


def _build_dma_start(op: Operation, ctx: FnCompiler, fallback):
    src_i, dst_i = (ctx.slot(o) for o in op.operands)
    res_i = ctx.slot(op.results[0])
    src_ty = op.operands[0].type
    assert isinstance(src_ty, MemRefType)
    h2d = src_ty.memory_space == 0

    def run(interp, frame):
        executor = interp.host_executor
        if executor is None:
            fallback(interp, frame)
            return
        interp.steps += 1
        if executor._faults is not None:
            executor._fault_gate("dma_start")
        source = frame[src_i]
        np.copyto(frame[dst_i], source)
        executor._charge_dma(int(np.asarray(source).nbytes), h2d)
        frame[res_i] = 0
    return run


_executor_emitter("device.alloc", _build_alloc)
_executor_emitter("device.lookup", _build_lookup)
_executor_emitter("device.data_check_exists", _build_check_exists)
_executor_emitter("device.data_acquire", _build_acquire)
_executor_emitter("device.data_release", _build_release)
_executor_emitter("device.kernel_create", _build_kernel_create)
_executor_emitter("device.kernel_launch", _build_kernel_launch)
_executor_emitter("device.kernel_wait", _build_noop)
_executor_emitter("memref.dma_start", _build_dma_start)


@compiled_for("memref.wait", impl_independent=True)
def _emit_dma_wait(op: Operation, ctx: FnCompiler):
    # Functionally a no-op under both the plain interpreter impl and the
    # executor's, but still a fault-injection site (DMA wait failure):
    # the closure consults the armed plan so the dma_wait occurrence
    # stream matches the scalar tier exactly.  Step accounting is
    # unchanged — the op is bulk-counted by the enclosing block.
    def run(interp, frame):
        executor = interp.host_executor
        if executor is not None and executor._faults is not None:
            executor._fault_gate("dma_wait")
    return run

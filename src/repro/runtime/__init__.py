"""Simulated host runtime: OpenCL objects, the device data table, the
host-module executor and the CPU baseline."""

from repro.runtime.cpu import CpuExecutionResult, CpuExecutor
from repro.runtime.device_runtime import DeviceDataTable, DeviceRuntimeError
from repro.runtime.executor import ExecutionResult, FpgaExecutor, KernelInstance
from repro.runtime.opencl import (
    ClBuffer,
    ClCommandQueue,
    ClContext,
    ClError,
    ClEvent,
    ClKernel,
    ClProgram,
)

__all__ = [
    "CpuExecutionResult",
    "CpuExecutor",
    "DeviceDataTable",
    "DeviceRuntimeError",
    "ExecutionResult",
    "FpgaExecutor",
    "KernelInstance",
    "ClBuffer",
    "ClCommandQueue",
    "ClContext",
    "ClError",
    "ClEvent",
    "ClKernel",
    "ClProgram",
]

"""Simulated OpenCL host API (the XRT/OpenCL layer of the paper's flow).

Provides the object model the generated host code uses — platform,
context, command queue, buffers, kernels, events — backed by NumPy and
the :class:`~repro.fpga.board.U280Board` timing model.  The executor in
:mod:`repro.runtime.executor` drives this through the ``device`` dialect
ops; tests can also use it directly as a miniature OpenCL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.fpga.board import U280Board


class ClError(Exception):
    """Simulated CL_* error."""


@dataclass
class ClEvent:
    """Completion event with a simulated timestamp."""

    kind: str
    complete_at_s: float = 0.0


@dataclass
class ClBuffer:
    """Device buffer placed in a specific memory space (HBM bank/DDR)."""

    name: str
    memory_space: int
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


@dataclass
class ClKernel:
    """A kernel object (compiled into the loaded xclbin)."""

    name: str
    args: list[ClBuffer | float | int] = field(default_factory=list)

    def set_arg(self, index: int, value) -> None:
        while len(self.args) <= index:
            self.args.append(None)  # type: ignore[arg-type]
        self.args[index] = value


@dataclass
class ClProgram:
    """The loaded bitstream ("xclbin"): kernel name -> callable."""

    kernels: dict[str, Callable[..., float]]

    def create_kernel(self, name: str) -> ClKernel:
        if name not in self.kernels:
            raise ClError(f"CL_INVALID_KERNEL_NAME: {name!r}")
        return ClKernel(name)


class ClCommandQueue:
    """In-order command queue with simulated timing."""

    def __init__(self, board: U280Board):
        self.board = board
        self.now_s = 0.0
        self.events: list[ClEvent] = []
        self._counters = {
            "transfers": 0,
            "bytes_h2d": 0,
            "bytes_d2h": 0,
            "launches": 0,
        }

    # -- transfers -----------------------------------------------------------------

    def enqueue_write(self, buffer: ClBuffer, host: np.ndarray) -> ClEvent:
        if buffer.data.shape != host.shape:
            raise ClError("CL_INVALID_BUFFER_SIZE: shape mismatch")
        np.copyto(buffer.data, host)
        self.now_s += self.board.dma_time_s(buffer.nbytes)
        self._counters["transfers"] += 1
        self._counters["bytes_h2d"] += buffer.nbytes
        event = ClEvent("write", self.now_s)
        self.events.append(event)
        return event

    def enqueue_read(self, buffer: ClBuffer, host: np.ndarray) -> ClEvent:
        if buffer.data.shape != host.shape:
            raise ClError("CL_INVALID_BUFFER_SIZE: shape mismatch")
        np.copyto(host, buffer.data)
        self.now_s += self.board.dma_time_s(buffer.nbytes)
        self._counters["transfers"] += 1
        self._counters["bytes_d2h"] += buffer.nbytes
        event = ClEvent("read", self.now_s)
        self.events.append(event)
        return event

    # -- kernels --------------------------------------------------------------------

    def enqueue_task(
        self, program: ClProgram, kernel: ClKernel
    ) -> ClEvent:
        run = program.kernels[kernel.name]
        kernel_seconds = run(*kernel.args)
        self.now_s += self.board.kernel_launch_overhead_s + kernel_seconds
        self._counters["launches"] += 1
        event = ClEvent("kernel", self.now_s)
        self.events.append(event)
        return event

    def finish(self) -> float:
        """Block until all commands complete; returns the queue clock."""
        return self.now_s

    @property
    def stats(self) -> dict[str, int]:
        return dict(self._counters)


class ClContext:
    """Context owning device buffers."""

    _ids = itertools.count()

    def __init__(self, board: Optional[U280Board] = None):
        self.board = board or U280Board()
        self.buffers: dict[str, ClBuffer] = {}

    def create_buffer(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype,
        memory_space: int,
        *,
        oversubscribe: bool = False,
    ) -> ClBuffer:
        """Allocate ``name`` in ``memory_space``.

        ``oversubscribe=True`` admits buffers larger than the space (the
        double-buffered streaming model keeps only a tile resident at a
        time, so the capacity check does not apply).
        """
        spec = self.board.validate_memory_space(memory_space)
        buffer = ClBuffer(
            name=name,
            memory_space=memory_space,
            data=np.zeros(shape, dtype=dtype),
        )
        if buffer.nbytes > spec.size_bytes and not oversubscribe:
            raise ClError(
                f"CL_MEM_OBJECT_ALLOCATION_FAILURE: {buffer.nbytes} bytes "
                f"exceeds {spec.name}"
            )
        self.buffers[name] = buffer
        return buffer

    def get_buffer(self, name: str) -> ClBuffer:
        if name not in self.buffers:
            raise ClError(f"CL_INVALID_MEM_OBJECT: no buffer {name!r}")
        return self.buffers[name]

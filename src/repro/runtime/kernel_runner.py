"""Functional + timed execution of synthesized kernels.

Shared by the compiled-flow executor and the hand-written-HLS baselines:
runs a kernel from a :class:`~repro.backend.vitis.Bitstream` on NumPy
arguments, observing loop trip counts during interpretation and charging
``fill + trips * achieved_II`` cycles per scheduled loop.

Reliability: a *watchdog step budget* bounds how many interpreter steps
one kernel execution may retire — a hung (or injected-hang) kernel
raises a typed :class:`~repro.reliability.errors.WatchdogTimeout`
instead of spinning.  An aborted execution discards its cycle stack and
the executor rolls its step counter back via :meth:`reset_steps`, so a
retried kernel reproduces fault-free accounting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.vitis import Bitstream
from repro.fpga.scheduler import KernelSchedule
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter, InterpreterError
from repro.reliability.errors import WatchdogTimeout


@dataclass
class KernelRun:
    """One kernel execution: cycle count and seconds at the kernel clock."""

    cycles: float
    seconds: float


class KernelRunner:
    """Runs bitstream kernels functionally while accounting cycles."""

    def __init__(
        self,
        bitstream: Bitstream,
        *,
        compiled: bool = True,
        vectorize: bool = True,
        watchdog_steps: int | None = None,
    ):
        self.bitstream = bitstream
        #: default per-run step budget (None = unbounded); the watchdog
        #: of every kernel simulation this runner performs
        self.watchdog_steps = watchdog_steps
        # Cycle accounting hooks the interpreter's loop observer (fired
        # once per scf.for execution with the observed trip count) rather
        # than overriding the scf.for impl, so device loops still run on
        # the compiled/vectorized fast paths.
        self._interp = Interpreter(
            bitstream.device_module, compiled=compiled, vectorize=vectorize
        )
        self._interp.loop_observer = self._observe_loop
        self._cycle_stack: list[float] = []
        self._design_stack: list[KernelSchedule] = []

    @property
    def interpreter_steps(self) -> int:
        """Steps retired by device-kernel interpretation so far."""
        return self._interp.steps

    def reset_steps(self, value: int) -> None:
        """Roll the step counter back to ``value`` — used by the
        executor's retry path after an aborted kernel execution so the
        partial attempt leaves no trace in the modelled step count."""
        self._interp.steps = value

    def attach_report(self, report) -> None:
        """Attach a :class:`~repro.reliability.report.RunReport` so
        engine-tier degradations inside kernel simulation are recorded."""
        self._interp.reliability_report = report

    def run(
        self, kernel_name: str, *args, step_budget: int | None = None
    ) -> KernelRun:
        """Execute ``kernel_name`` on ``args``.

        ``step_budget`` overrides the runner's default watchdog for this
        one execution (the fault injector uses a tiny budget to simulate
        a hang); exhausting either budget raises
        :class:`WatchdogTimeout` with the partial cycle count discarded.
        """
        design = self.bitstream.kernels.get(kernel_name)
        if design is None:
            raise IRError(f"no kernel {kernel_name!r} in the bitstream")
        interp = self._interp
        budget = step_budget if step_budget is not None else self.watchdog_steps
        saved_max = interp.max_steps
        budget_limit = None
        if budget is not None:
            budget_limit = interp.steps + budget
            interp.max_steps = min(saved_max, budget_limit)
        self._cycle_stack.append(float(design.start_overhead_cycles))
        self._design_stack.append(design)
        try:
            interp.call(kernel_name, *args)
        except InterpreterError as error:
            if budget_limit is not None and interp.steps >= budget_limit:
                raise WatchdogTimeout(
                    f"kernel {kernel_name!r} exceeded its watchdog step "
                    f"budget ({budget} steps)",
                    kernel=kernel_name,
                ) from error
            raise
        finally:
            interp.max_steps = saved_max
            cycles = self._cycle_stack.pop()
            self._design_stack.pop()
        seconds = self.bitstream.board.cycles_to_seconds(cycles)
        return KernelRun(cycles=cycles, seconds=seconds)

    # -- cycle accounting -------------------------------------------------------------

    def _observe_loop(self, op: Operation, trips: int, count: int = 1) -> None:
        """Charge one loop execution (``count`` identical executions when
        the vectorized nest fast path batches its inner loops).  Cycle
        values are integer-valued floats, so ``count * cycles`` is exact
        — bit-identical to ``count`` repeated additions."""
        if self._design_stack:
            schedule = self._design_stack[-1].loops.get(id(op))
            if schedule is not None:
                self._cycle_stack[-1] += count * schedule.cycles(trips)

"""Functional + timed execution of synthesized kernels.

Shared by the compiled-flow executor and the hand-written-HLS baselines:
runs a kernel from a :class:`~repro.backend.vitis.Bitstream` on NumPy
arguments, observing loop trip counts during interpretation and charging
``fill + trips * achieved_II`` cycles per scheduled loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.vitis import Bitstream
from repro.fpga.scheduler import KernelSchedule
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter


@dataclass
class KernelRun:
    """One kernel execution: cycle count and seconds at the kernel clock."""

    cycles: float
    seconds: float


class KernelRunner:
    """Runs bitstream kernels functionally while accounting cycles."""

    def __init__(
        self,
        bitstream: Bitstream,
        *,
        compiled: bool = True,
        vectorize: bool = True,
    ):
        self.bitstream = bitstream
        # Cycle accounting hooks the interpreter's loop observer (fired
        # once per scf.for execution with the observed trip count) rather
        # than overriding the scf.for impl, so device loops still run on
        # the compiled/vectorized fast paths.
        self._interp = Interpreter(
            bitstream.device_module, compiled=compiled, vectorize=vectorize
        )
        self._interp.loop_observer = self._observe_loop
        self._cycle_stack: list[float] = []
        self._design_stack: list[KernelSchedule] = []

    @property
    def interpreter_steps(self) -> int:
        """Steps retired by device-kernel interpretation so far."""
        return self._interp.steps

    def run(self, kernel_name: str, *args) -> KernelRun:
        design = self.bitstream.kernels.get(kernel_name)
        if design is None:
            raise IRError(f"no kernel {kernel_name!r} in the bitstream")
        self._cycle_stack.append(float(design.start_overhead_cycles))
        self._design_stack.append(design)
        try:
            self._interp.call(kernel_name, *args)
        finally:
            cycles = self._cycle_stack.pop()
            self._design_stack.pop()
        seconds = self.bitstream.board.cycles_to_seconds(cycles)
        return KernelRun(cycles=cycles, seconds=seconds)

    # -- cycle accounting -------------------------------------------------------------

    def _observe_loop(self, op: Operation, trips: int, count: int = 1) -> None:
        """Charge one loop execution (``count`` identical executions when
        the vectorized nest fast path batches its inner loops).  Cycle
        values are integer-valued floats, so ``count * cycles`` is exact
        — bit-identical to ``count`` repeated additions."""
        if self._design_stack:
            schedule = self._design_stack[-1].loops.get(id(op))
            if schedule is not None:
                self._cycle_stack[-1] += count * schedule.cycles(trips)

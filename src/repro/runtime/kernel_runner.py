"""Functional + timed execution of synthesized kernels.

Shared by the compiled-flow executor and the hand-written-HLS baselines:
runs a kernel from a :class:`~repro.backend.vitis.Bitstream` on NumPy
arguments, observing loop trip counts during interpretation and charging
``fill + trips * achieved_II`` cycles per scheduled loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.vitis import Bitstream
from repro.fpga.scheduler import KernelSchedule
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter


@dataclass
class KernelRun:
    """One kernel execution: cycle count and seconds at the kernel clock."""

    cycles: float
    seconds: float


class KernelRunner:
    """Runs bitstream kernels functionally while accounting cycles."""

    def __init__(self, bitstream: Bitstream):
        self.bitstream = bitstream
        self._interp = Interpreter(
            bitstream.device_module,
            extra_impls={"scf.for": self._counting_for},
        )
        self._cycle_stack: list[float] = []
        self._design_stack: list[KernelSchedule] = []

    def run(self, kernel_name: str, *args) -> KernelRun:
        design = self.bitstream.kernels.get(kernel_name)
        if design is None:
            raise IRError(f"no kernel {kernel_name!r} in the bitstream")
        self._cycle_stack.append(float(design.start_overhead_cycles))
        self._design_stack.append(design)
        try:
            self._interp.call(kernel_name, *args)
        finally:
            cycles = self._cycle_stack.pop()
            self._design_stack.pop()
        seconds = self.bitstream.board.cycles_to_seconds(cycles)
        return KernelRun(cycles=cycles, seconds=seconds)

    # -- cycle accounting -------------------------------------------------------------

    def _counting_for(self, interp: Interpreter, op: Operation, env: dict):
        from repro.dialects.scf import _run_for

        values = interp.operand_values(op, env)
        lb, ub, step = values[0], values[1], values[2]
        trips = max(0, -(-(ub - lb) // step)) if step > 0 else 0
        if self._design_stack:
            schedule = self._design_stack[-1].loops.get(id(op))
            if schedule is not None:
                self._cycle_stack[-1] += schedule.cycles(trips)
        return _run_for(interp, op, env)

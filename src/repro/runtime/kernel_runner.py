"""Functional + timed execution of synthesized kernels.

Shared by the compiled-flow executor and the hand-written-HLS baselines:
runs a kernel from a :class:`~repro.backend.vitis.Bitstream` on NumPy
arguments, observing loop trip counts during interpretation and charging
``fill + trips * achieved_II`` cycles per scheduled loop.

Multi-compute-unit builds (``bitstream.compute_units > 1``) shard each
kernel's *outermost* loops across the CUs in contiguous blocks (CU 0
gets iterations ``[0, ceil(T/N))``, remainder spread over the leading
CUs) and price the launch as the **makespan** — the slowest CU's cycle
count.  Functional execution stays the serial whole-space walk: a
contiguous-block shard whose partial results recombine in fixed CU
order performs *exactly* the serial iteration order, so outputs
(including ordered f32 reductions) are bit-identical at every CU count
by construction.  Per-CU accounting is derived from the same per-loop
trip observations as the serial model: outermost loops are sharded
exactly (each CU pays its own pipeline fill plus ``block * II``), and
the cycles of loops nested inside them are distributed proportionally
to each CU's share of outer iterations (exact for rectangular nests,
the standard balanced-load model for triangular ones).

Reliability: a *watchdog step budget* bounds how many interpreter steps
one kernel execution may retire — a hung (or injected-hang) kernel
raises a typed :class:`~repro.reliability.errors.WatchdogTimeout`
instead of spinning.  An aborted execution discards its cycle stack and
the executor rolls its step counter back via :meth:`reset_steps`, so a
retried kernel reproduces fault-free accounting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.vitis import Bitstream
from repro.fpga.scheduler import KernelSchedule
from repro.ir.core import IRError, Operation
from repro.ir.interpreter import Interpreter, InterpreterError
from repro.reliability.errors import WatchdogTimeout


@dataclass
class KernelRun:
    """One kernel execution: cycle count and seconds at the kernel clock.

    For multi-CU builds ``cycles`` is the makespan (slowest CU) and
    ``per_cu_cycles`` holds every CU's own count in CU order; for
    single-CU builds ``per_cu_cycles`` stays empty and ``cycles`` is the
    serial model, byte-identical to pre-multi-CU accounting."""

    cycles: float
    seconds: float
    per_cu_cycles: tuple[float, ...] = ()


class KernelRunner:
    """Runs bitstream kernels functionally while accounting cycles."""

    def __init__(
        self,
        bitstream: Bitstream,
        *,
        compiled: bool = True,
        vectorize: bool = True,
        watchdog_steps: int | None = None,
    ):
        self.bitstream = bitstream
        #: default per-run step budget (None = unbounded); the watchdog
        #: of every kernel simulation this runner performs
        self.watchdog_steps = watchdog_steps
        # Cycle accounting hooks the interpreter's loop observer (fired
        # once per scf.for execution with the observed trip count) rather
        # than overriding the scf.for impl, so device loops still run on
        # the compiled/vectorized fast paths.
        self._interp = Interpreter(
            bitstream.device_module, compiled=compiled, vectorize=vectorize
        )
        self._interp.loop_observer = self._observe_loop
        self._cycle_stack: list[float] = []
        self._design_stack: list[KernelSchedule] = []
        self._compute_units = max(1, getattr(bitstream, "compute_units", 1))
        # Per-run {id(loop op): {trips: count}} observation multisets —
        # only populated on multi-CU builds (``None`` entries keep the
        # single-CU path free of aggregation work).
        self._agg_stack: list[dict[int, dict[int, int]] | None] = []

    @property
    def interpreter_steps(self) -> int:
        """Steps retired by device-kernel interpretation so far."""
        return self._interp.steps

    def reset_steps(self, value: int) -> None:
        """Roll the step counter back to ``value`` — used by the
        executor's retry path after an aborted kernel execution so the
        partial attempt leaves no trace in the modelled step count."""
        self._interp.steps = value

    def attach_report(self, report) -> None:
        """Attach a :class:`~repro.reliability.report.RunReport` so
        engine-tier degradations inside kernel simulation are recorded."""
        self._interp.reliability_report = report

    def run(
        self, kernel_name: str, *args, step_budget: int | None = None
    ) -> KernelRun:
        """Execute ``kernel_name`` on ``args``.

        ``step_budget`` overrides the runner's default watchdog for this
        one execution (the fault injector uses a tiny budget to simulate
        a hang); exhausting either budget raises
        :class:`WatchdogTimeout` with the partial cycle count discarded.
        """
        design = self.bitstream.kernels.get(kernel_name)
        if design is None:
            raise IRError(f"no kernel {kernel_name!r} in the bitstream")
        interp = self._interp
        budget = step_budget if step_budget is not None else self.watchdog_steps
        saved_max = interp.max_steps
        budget_limit = None
        if budget is not None:
            budget_limit = interp.steps + budget
            interp.max_steps = min(saved_max, budget_limit)
        self._cycle_stack.append(float(design.start_overhead_cycles))
        self._design_stack.append(design)
        self._agg_stack.append({} if self._compute_units > 1 else None)
        try:
            interp.call(kernel_name, *args)
        except InterpreterError as error:
            if budget_limit is not None and interp.steps >= budget_limit:
                raise WatchdogTimeout(
                    f"kernel {kernel_name!r} exceeded its watchdog step "
                    f"budget ({budget} steps)",
                    kernel=kernel_name,
                ) from error
            raise
        finally:
            interp.max_steps = saved_max
            cycles = self._cycle_stack.pop()
            self._design_stack.pop()
            agg = self._agg_stack.pop()
        per_cu: tuple[float, ...] = ()
        if agg is not None:
            cycles, per_cu = self._multi_cu_makespan(design, agg, cycles)
        seconds = self.bitstream.board.cycles_to_seconds(cycles)
        return KernelRun(cycles=cycles, seconds=seconds, per_cu_cycles=per_cu)

    # -- cycle accounting -------------------------------------------------------------

    def _observe_loop(self, op: Operation, trips: int, count: int = 1) -> None:
        """Charge one loop execution (``count`` identical executions when
        the vectorized nest fast path batches its inner loops).  Cycle
        values are integer-valued floats, so ``count * cycles`` is exact
        — bit-identical to ``count`` repeated additions."""
        if self._design_stack:
            schedule = self._design_stack[-1].loops.get(id(op))
            if schedule is not None:
                self._cycle_stack[-1] += count * schedule.cycles(trips)
                agg = self._agg_stack[-1]
                if agg is not None:
                    per_loop = agg.setdefault(id(op), {})
                    per_loop[trips] = per_loop.get(trips, 0) + count

    def _multi_cu_makespan(
        self,
        design: KernelSchedule,
        agg: dict[int, dict[int, int]],
        serial_cycles: float,
    ) -> tuple[float, tuple[float, ...]]:
        """Shard the observed iteration space over the CUs and return
        ``(makespan, per-CU cycles)``.

        Outermost loops are sharded exactly: ``divmod(trips, N)`` splits
        each observed execution into contiguous blocks, the remainder
        iterations going to the leading CUs, and each CU pays its own
        pipeline fill plus ``block * II``.  Loops nested inside them ride
        along with their outer iterations: their total cycles are
        distributed proportionally to each CU's share of outer trips —
        exact for rectangular nests, the balanced-load model for
        triangular ones.  All per-loop cycle values are integer-valued
        floats, so the sums are exact and order-independent (bit-identical
        across engine tiers whatever order they observe loops in)."""
        n = self._compute_units
        overhead = float(design.start_overhead_cycles)
        outer_cycles = [0.0] * n
        outer_iters = [0] * n
        inner_cycles = 0.0
        for op_id, per_loop in agg.items():
            schedule = design.loops.get(op_id)
            if schedule is None:
                continue
            for trips, count in per_loop.items():
                if schedule.outermost:
                    base, rem = divmod(trips, n)
                    for cu in range(n):
                        block = base + (1 if cu < rem else 0)
                        outer_cycles[cu] += count * schedule.cycles(block)
                        outer_iters[cu] += count * block
                else:
                    inner_cycles += count * schedule.cycles(trips)
        total_outer = sum(outer_iters)
        if total_outer == 0:
            # Nothing to shard (scalar kernel or zero-trip loops): CU 0
            # runs the whole kernel, the replicas just spin up.
            return serial_cycles, (serial_cycles,) + (overhead,) * (n - 1)
        per_cu = tuple(
            overhead
            + outer_cycles[cu]
            + inner_cycles * (outer_iters[cu] / total_outer)
            for cu in range(n)
        )
        return max(per_cu), per_cu

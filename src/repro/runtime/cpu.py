"""Single-core CPU baseline (the EPYC 7502 runs of Tables 5/6).

Executes the *pre-offload* core module (OpenMP interpreted sequentially,
i.e. single core) for functional results, with an analytic time model —
interpreted wall-clock would measure Python, not the modelled CPU — and
the package power model for the power tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialects import builtin
from repro.fpga.power import CpuPowerModel
from repro.ir.interpreter import Interpreter


@dataclass
class CpuExecutionResult:
    time_s: float
    power_w: float
    interpreter_steps: int
    returned: tuple = ()


class CpuExecutor:
    """Runs a core-dialect module on the modelled single CPU core."""

    #: modelled cost per retired "IR step" on one EPYC 7502 core at
    #: 2.5 GHz (roughly 2 fused ops per cycle for this scalar code).
    seconds_per_step: float = 0.8e-9

    def __init__(self, module: builtin.ModuleOp, power: CpuPowerModel | None = None):
        self.module = module
        self.power = power or CpuPowerModel()

    def run(self, func_name: str, *args, label: str = "") -> CpuExecutionResult:
        interp = Interpreter(self.module)
        returned = interp.call(func_name, *args)
        steps = interp.steps
        return CpuExecutionResult(
            time_s=steps * self.seconds_per_step,
            power_w=self.power.median_power_w(steps, label or func_name),
            interpreter_steps=steps,
            returned=returned,
        )

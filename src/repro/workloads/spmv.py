"""SpMV (CSR) — sparse matrix-vector product with gather accesses.

``y(i) = sum_j vals(jj) * x(col_idx(jj))`` over each row's CSR slice:
the gallery's indirect-indexing workload.  The inner accumulation loop
carries a rank-0 scalar (serial recurrence, II bound by the adder
latency); the ``x(col_idx(jj))`` gather exercises the vectorizer's
indirect-load classification.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

SPMV_SOURCE = """
subroutine spmv(row_ptr, col_idx, vals, x, y, n)
  implicit none
  integer, intent(in) :: n
  integer, intent(in) :: row_ptr(n + 1)
  integer, intent(in) :: col_idx(row_ptr(n + 1) - 1)
  real, intent(in) :: vals(row_ptr(n + 1) - 1)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i, jj
  real :: t
!$omp target parallel do
  do i = 1, n
    t = 0.0
    do jj = row_ptr(i), row_ptr(i + 1) - 1
      t = t + vals(jj) * x(col_idx(jj))
    end do
    y(i) = t
  end do
!$omp end target parallel do
end subroutine spmv
"""

#: fixed nonzeros per row — >= 64 so the inner gather loop crosses the
#: vectorizer's minimum trip count
NNZ_PER_ROW = 72


def make_csr(
    n: int, seed: int, nnz_per_row: int = NNZ_PER_ROW
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random CSR structure: (row_ptr, col_idx, vals), 0-based indices."""
    rng = np.random.default_rng(31 + seed)
    nnz_per_row = min(nnz_per_row, n)
    row_ptr = np.arange(0, (n + 1) * nnz_per_row, nnz_per_row, dtype=np.int32)
    cols = np.empty(n * nnz_per_row, dtype=np.int32)
    for i in range(n):
        picked = rng.choice(n, size=nnz_per_row, replace=False)
        picked.sort()
        cols[i * nnz_per_row : (i + 1) * nnz_per_row] = picked
    vals = rng.standard_normal(n * nnz_per_row).astype(np.float32)
    return row_ptr, cols, vals


def spmv_reference(
    row_ptr: np.ndarray,
    col_idx: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """CSR SpMV in float32 with the kernel's exact accumulation order:
    each row folds ``0.0 + p0 + p1 + ...`` left to right."""
    n = len(row_ptr) - 1
    products = (vals * x[col_idx]).astype(np.float32)
    y = np.empty(n, dtype=np.float32)
    for i in range(n):
        start, end = int(row_ptr[i]), int(row_ptr[i + 1])
        row = np.empty(end - start + 1, dtype=np.float32)
        row[0] = np.float32(0.0)
        row[1:] = products[start:end]
        y[i] = np.add.accumulate(row)[-1]
    return y


SPMV_SIZES = (256, 1024, 4096, 16384)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(37 + seed)
    row_ptr, col_idx, vals = make_csr(n, seed)
    x = rng.standard_normal(n).astype(np.float32)
    y = np.zeros(n, dtype=np.float32)
    expected = spmv_reference(row_ptr, col_idx, vals, x)
    args = (
        (row_ptr + 1).astype(np.int32),  # Fortran 1-based CSR offsets
        (col_idx + 1).astype(np.int32),
        vals,
        x,
        y,
        np.array(n, dtype=np.int32),
    )
    return WorkloadInstance(args=args, expected={4: expected})


SPMV = register(
    GalleryWorkload(
        name="spmv",
        description="CSR sparse matrix-vector product with "
        "x(col_idx(jj)) gather",
        source=SPMV_SOURCE,
        entry="spmv",
        sizes=SPMV_SIZES,
        smoke_size=128,
        make_instance=_make_instance,
        loop_shape="1-D + serial gather loop",
    )
)

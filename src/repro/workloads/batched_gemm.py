"""Batched GEMM — C += A*B over a batch of matrices, a ``collapse(3)``
output nest with a k-loop reduction.

The offloaded region is a rank-3 ``omp.loop_nest`` over the
(batch, i, j) output space whose body is a serial k loop accumulating
into ``c(ib, i, j)`` in place.  The vectorizer recognises the chain as a
``nest_reduction``: the whole (batch, i, j, k) space is evaluated at
once and folded along k with an ordered per-cell accumulate (bit-exact
float32), with the accumulator subscripts proving injectivity over the
outer dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

#: batch count: small enough that the smoke instance stays quick on the
#: scalar tier, large enough that the batch dim shapes the iteration space
BATCH = 4

BATCHED_GEMM_SOURCE = """
subroutine batched_gemm(a, b, c, nb, n)
  implicit none
  integer, intent(in) :: nb, n
  real, intent(in) :: a(nb, n, n)
  real, intent(in) :: b(nb, n, n)
  real, intent(inout) :: c(nb, n, n)
  integer :: ib, i, j, k
!$omp target parallel do collapse(3)
  do ib = 1, nb
    do i = 1, n
      do j = 1, n
        do k = 1, n
          c(ib, i, j) = c(ib, i, j) + a(ib, i, k) * b(ib, k, j)
        end do
      end do
    end do
  end do
!$omp end target parallel do
end subroutine batched_gemm
"""


def batched_gemm_reference(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """C + A@B per batch in float32 with the kernel's exact accumulation
    order: every (ib, i, j) folds k = 0..n-1 sequentially from c."""
    acc = c.astype(np.float32).copy()
    n = a.shape[-1]
    for k in range(n):
        acc += a[:, :, k : k + 1] * b[:, k : k + 1, :]
    return acc


BATCHED_GEMM_SIZES = (16, 32, 48, 64)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(53 + seed)
    a = rng.standard_normal((BATCH, n, n)).astype(np.float32)
    b = rng.standard_normal((BATCH, n, n)).astype(np.float32)
    c = rng.standard_normal((BATCH, n, n)).astype(np.float32)
    expected = batched_gemm_reference(a, b, c)
    args = (
        a, b, c,
        np.array(BATCH, dtype=np.int32),
        np.array(n, dtype=np.int32),
    )
    return WorkloadInstance(args=args, expected={2: expected})


BATCHED_GEMM = register(
    GalleryWorkload(
        name="batched_gemm",
        description=f"batch-of-{BATCH} dense GEMM under "
        "target parallel do collapse(3) with an in-place k reduction",
        source=BATCHED_GEMM_SOURCE,
        entry="batched_gemm",
        sizes=BATCHED_GEMM_SIZES,
        smoke_size=16,
        make_instance=_make_instance,
        loop_shape="3-D collapse + k reduction",
    )
)

"""SAXPY — the paper's Listing 5 (``parallel do simd simdlen(10)``)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

#: Paper Listing 5: the offloaded SAXPY (y = y + a*x).
SAXPY_SOURCE = """
subroutine saxpy(a, x, y, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
!$omp target parallel do simd simdlen(10)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
!$omp end target parallel do simd
end subroutine saxpy
"""


def saxpy_reference(a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """y + a*x in float32."""
    return (y + np.float32(a) * x).astype(np.float32)


@dataclass
class SaxpyCase:
    """One SAXPY experiment instance."""

    n: int
    a: float = 2.0
    seed: int = 7

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        x = rng.standard_normal(self.n).astype(np.float32)
        y = rng.standard_normal(self.n).astype(np.float32)
        return x, y


#: The problem sizes of the paper's evaluation.
SAXPY_SIZES = (10_000, 100_000, 1_000_000, 10_000_000)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    case = SaxpyCase(n, seed=7 + seed)
    x, y = case.arrays()
    expected = saxpy_reference(case.a, x, y)
    args = (
        np.array(case.a, dtype=np.float32),
        x,
        y,
        np.array(n, dtype=np.int32),
    )
    return WorkloadInstance(args=args, expected={2: expected})


SAXPY = register(
    GalleryWorkload(
        name="saxpy",
        description="y = y + a*x, unroll-by-10 SIMD offload (paper Listing 5)",
        source=SAXPY_SOURCE,
        entry="saxpy",
        sizes=SAXPY_SIZES,
        smoke_size=4096,
        make_instance=_make_instance,
        loop_shape="1-D simd",
    )
)

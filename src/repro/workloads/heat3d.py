"""Heat 3-D stencil — a ``collapse(3)`` loop nest over a 3-D array.

One sweep of the seven-point heat stencil from ``a`` into ``b``: the
first gallery workload whose offloaded region is a rank-3
``omp.loop_nest``.  ``lower-omp-to-hls`` materializes the two outer
dimensions as plain ``scf.for`` loops around the pipelined innermost
dimension, and the vectorizer collapses the resulting perfect chain
back into one whole-iteration-space NumPy evaluation
(``nest_elementwise``).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

HEAT3D_SOURCE = """
subroutine heat3d(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a(n, n, n)
  real, intent(inout) :: b(n, n, n)
  integer :: i, j, k
!$omp target parallel do collapse(3)
  do i = 2, n - 1
    do j = 2, n - 1
      do k = 2, n - 1
        b(i, j, k) = 0.125 * a(i, j, k) + 0.0625 * (a(i - 1, j, k) + &
          a(i + 1, j, k) + a(i, j - 1, k) + a(i, j + 1, k) + &
          a(i, j, k - 1) + a(i, j, k + 1))
      end do
    end do
  end do
!$omp end target parallel do
end subroutine heat3d
"""


def heat3d_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One stencil sweep in float32, association order matching the
    kernel's left-to-right adds (bit-exact)."""
    out = b.astype(np.float32).copy()
    centre = a[1:-1, 1:-1, 1:-1]
    neighbours = a[:-2, 1:-1, 1:-1] + a[2:, 1:-1, 1:-1]
    neighbours = neighbours + a[1:-1, :-2, 1:-1]
    neighbours = neighbours + a[1:-1, 2:, 1:-1]
    neighbours = neighbours + a[1:-1, 1:-1, :-2]
    neighbours = neighbours + a[1:-1, 1:-1, 2:]
    out[1:-1, 1:-1, 1:-1] = (
        np.float32(0.125) * centre + np.float32(0.0625) * neighbours
    )
    return out


HEAT3D_SIZES = (16, 32, 48, 64)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(47 + seed)
    a = rng.standard_normal((n, n, n)).astype(np.float32)
    b = np.zeros((n, n, n), dtype=np.float32)
    expected = heat3d_reference(a, b)
    args = (a, b, np.array(n, dtype=np.int32))
    return WorkloadInstance(args=args, expected={1: expected})


HEAT3D = register(
    GalleryWorkload(
        name="heat3d",
        description="seven-point 3-D stencil sweep under "
        "target parallel do collapse(3)",
        source=HEAT3D_SOURCE,
        entry="heat3d",
        sizes=HEAT3D_SIZES,
        smoke_size=20,
        make_instance=_make_instance,
        loop_shape="3-D collapse",
    )
)

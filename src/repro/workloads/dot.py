"""Dot product — ``reduction(+:s)`` through the round-robin rewrite.

The kernel's ``s`` accumulation is rewritten into ``NCOPIES`` partial
accumulators combined after the loop (paper §3), so the bit-exact NumPy
reference reproduces exactly that fold: strided partial sums in
iteration order, then an ordered combine.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

DOT_SOURCE = """
subroutine sdot(x, y, s, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
!$omp target parallel do reduction(+:s)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
!$omp end target parallel do
end subroutine sdot
"""

#: partial accumulators the reduction rewrite emits by default
NCOPIES = 8


def dot_reference(
    x: np.ndarray, y: np.ndarray, ncopies: int = NCOPIES
) -> np.float32:
    """Round-robin reduction in float32, matching the rewritten kernel
    bit for bit: ``P[t mod N] += x[t]*y[t]`` in iteration order, then
    ``s = 0 + P[0] + P[1] + ...``."""
    products = (x * y).astype(np.float32)
    partials = np.empty(ncopies, dtype=np.float32)
    for slot in range(ncopies):
        lane = products[slot::ncopies]
        seq = np.empty(len(lane) + 1, dtype=np.float32)
        seq[0] = np.float32(0.0)
        seq[1:] = lane
        partials[slot] = np.add.accumulate(seq)[-1]
    acc = np.float32(0.0)
    for slot in range(ncopies):
        acc = np.float32(acc + partials[slot])
    return acc


DOT_SIZES = (10_000, 100_000, 1_000_000, 10_000_000)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(53 + seed)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    s = np.zeros((), dtype=np.float32)
    expected = np.array(dot_reference(x, y), dtype=np.float32)
    args = (x, y, s, np.array(n, dtype=np.int32))
    return WorkloadInstance(args=args, expected={2: expected})


DOT = register(
    GalleryWorkload(
        name="dot",
        description="dot-product reduction(+:s) through the round-robin "
        f"{NCOPIES}-copy rewrite",
        source=DOT_SOURCE,
        entry="sdot",
        sizes=DOT_SIZES,
        smoke_size=4096,
        make_instance=_make_instance,
        loop_shape="1-D reduction",
    )
)

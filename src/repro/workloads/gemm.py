"""Tiled GEMM — C += A*B with a ``collapse(2)`` output nest and a
k-tiled accumulation loop.

The offloaded region is a rank-2 ``omp.loop_nest`` over the output
tile-free (i, j) space; each point accumulates through tiles of
``TILE`` k-values, so the innermost loop is a rank-0 scalar recurrence
the vectorizer folds with an ordered accumulate once a full tile's trip
count reaches the vector threshold.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

#: k-tile edge: one full tile meets the vectorizer's 64-trip threshold.
TILE = 64

GEMM_SOURCE = f"""
subroutine gemm_tiled(a, b, c, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a(n, n)
  real, intent(in) :: b(n, n)
  real, intent(inout) :: c(n, n)
  integer :: i, j, k, kk
  real :: t
!$omp target parallel do collapse(2)
  do i = 1, n
    do j = 1, n
      t = c(i, j)
      do kk = 1, n, {TILE}
        do k = kk, min(kk + {TILE - 1}, n)
          t = t + a(i, k) * b(k, j)
        end do
      end do
      c(i, j) = t
    end do
  end do
!$omp end target parallel do
end subroutine gemm_tiled
"""


def gemm_reference(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """C + A@B in float32 with the kernel's exact accumulation order:
    every (i, j) folds k = 0..n-1 sequentially starting from c(i, j)."""
    acc = c.astype(np.float32).copy()
    n = a.shape[0]
    for k in range(n):
        acc += a[:, k : k + 1] * b[k : k + 1, :]
    return acc


GEMM_SIZES = (64, 128, 192, 256)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(41 + seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    c = rng.standard_normal((n, n)).astype(np.float32)
    expected = gemm_reference(a, b, c)
    args = (a, b, c, np.array(n, dtype=np.int32))
    return WorkloadInstance(args=args, expected={2: expected})


GEMM = register(
    GalleryWorkload(
        name="gemm",
        description=f"k-tiled dense GEMM (tile {TILE}) under "
        "target parallel do collapse(2)",
        source=GEMM_SOURCE,
        entry="gemm_tiled",
        sizes=GEMM_SIZES,
        smoke_size=64,
        make_instance=_make_instance,
        loop_shape="2-D collapse + tiled k loop",
    )
)

"""Jacobi 2-D stencil — a ``collapse(2)`` loop nest over a 2-D array.

One sweep of the four-point stencil from ``a`` into ``b``: the first
gallery workload whose offloaded region is a rank-2 ``omp.loop_nest``
(outer dimension lowered to an unpipelined ``scf.for``, inner dimension
pipelined), and whose inner loops vectorize with an invariant row
subscript.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

JACOBI2D_SOURCE = """
subroutine jacobi2d(a, b, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: a(n, n)
  real, intent(inout) :: b(n, n)
  integer :: i, j
!$omp target parallel do collapse(2)
  do i = 2, n - 1
    do j = 2, n - 1
      b(i, j) = 0.25 * (a(i - 1, j) + a(i + 1, j) + a(i, j - 1) + a(i, j + 1))
    end do
  end do
!$omp end target parallel do
end subroutine jacobi2d
"""


def jacobi2d_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One stencil sweep in float32, association order matching the
    kernel's left-to-right adds (bit-exact)."""
    out = b.astype(np.float32).copy()
    interior = a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
    out[1:-1, 1:-1] = np.float32(0.25) * interior
    return out


JACOBI2D_SIZES = (64, 128, 256, 512)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(23 + seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = np.zeros((n, n), dtype=np.float32)
    expected = jacobi2d_reference(a, b)
    args = (a, b, np.array(n, dtype=np.int32))
    return WorkloadInstance(args=args, expected={1: expected})


JACOBI2D = register(
    GalleryWorkload(
        name="jacobi2d",
        description="four-point 2-D stencil sweep under "
        "target parallel do collapse(2)",
        source=JACOBI2D_SOURCE,
        entry="jacobi2d",
        sizes=JACOBI2D_SIZES,
        smoke_size=96,
        make_instance=_make_instance,
        loop_shape="2-D collapse",
    )
)

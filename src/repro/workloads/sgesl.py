"""SGESL — the paper's Listing 6 LINPACK solve (offloaded column updates)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

#: Paper Listing 6 (plus the analogous second loop): SGESL solve of
#: A x = b given the LU factors and pivots from SGEFA.  The update loops
#: work on the current column ``col`` so each launch maps 1-D data, as
#: in the paper's listing (``b(j) = b(j) + t*a(j)``).
SGESL_SOURCE = """
subroutine sgesl_update(b, col, t, k, n)
  implicit none
  integer, intent(in) :: k, n
  real, intent(in) :: t
  real, intent(in) :: col(n)
  real, intent(inout) :: b(n)
  integer :: j
!$omp target parallel do
  do j = k + 1, n
    b(j) = b(j) + t * col(j)
  end do
!$omp end target parallel do
end subroutine sgesl_update

subroutine sgesl_back_update(b, col, t, k)
  implicit none
  integer, intent(in) :: k
  real, intent(in) :: t
  real, intent(in) :: col(k)
  real, intent(inout) :: b(k)
  integer :: j
!$omp target parallel do
  do j = 1, k - 1
    b(j) = b(j) + t * col(j)
  end do
!$omp end target parallel do
end subroutine sgesl_back_update

subroutine sgesl(a, b, ipvt, n)
  implicit none
  integer, intent(in) :: n
  real, intent(inout) :: a(n, n)
  real, intent(inout) :: b(n)
  integer, intent(in) :: ipvt(n)
  integer :: k, l, kb, i
  real :: t
  real :: col(n)
! solve l*y = b (forward elimination with the recorded pivots)
  do k = 1, n - 1
    l = ipvt(k)
    t = b(l)
    if (l /= k) then
      b(l) = b(k)
      b(k) = t
    end if
    do i = 1, n
      col(i) = a(i, k)
    end do
    call sgesl_update(b, col, t, k, n)
  end do
! solve u*x = y (back substitution)
  do kb = 1, n
    k = n + 1 - kb
    b(k) = b(k) / a(k, k)
    t = -b(k)
    do i = 1, n
      col(i) = a(i, k)
    end do
    call sgesl_back_update(b, col, t, k)
  end do
end subroutine sgesl
"""


# -- NumPy references -------------------------------------------------------------


def sgesl_reference(
    lu: np.ndarray, ipvt: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Reference LINPACK sgesl (job = 0) in NumPy float32."""
    a = lu.astype(np.float32)
    x = b.astype(np.float32).copy()
    n = len(x)
    for k in range(n - 1):
        pivot = int(ipvt[k])
        t = x[pivot]
        if pivot != k:
            x[pivot] = x[k]
            x[k] = t
        x[k + 1 :] += t * a[k + 1 :, k]
    for k in range(n - 1, -1, -1):
        x[k] = x[k] / a[k, k]
        t = -x[k]
        x[:k] += t * a[:k, k]
    return x


def sgefa_reference(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LINPACK sgefa: LU factorization with partial pivoting, storing the
    *negated* multipliers in the lower triangle (LINPACK convention, which
    is what sgesl's ``b(j) = b(j) + t*a(j,k)`` update expects).

    Returns (lu, ipvt) with 0-based pivot indices.
    """
    lu = a.astype(np.float32).copy()
    n = lu.shape[0]
    ipvt = np.zeros(n, dtype=np.int64)
    for k in range(n - 1):
        pivot = k + int(np.argmax(np.abs(lu[k:, k])))
        ipvt[k] = pivot
        if lu[pivot, k] == 0.0:
            raise ZeroDivisionError("singular matrix in sgefa")
        if pivot != k:
            lu[[k, pivot], k] = lu[[pivot, k], k]
        multipliers = -lu[k + 1 :, k] / lu[k, k]
        lu[k + 1 :, k] = multipliers
        if pivot != k:
            lu[[k, pivot], k + 1 :] = lu[[pivot, k], k + 1 :]
        lu[k + 1 :, k + 1 :] += np.outer(multipliers, lu[k, k + 1 :])
    ipvt[n - 1] = n - 1
    return lu, ipvt


@dataclass
class SgeslCase:
    """One SGESL experiment instance (well-conditioned random system)."""

    n: int
    seed: int = 11

    def system(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Returns (a, lu, ipvt, b): the original matrix, its LINPACK LU
        factorization, pivots and a right-hand side."""
        rng = np.random.default_rng(self.seed)
        a = rng.standard_normal((self.n, self.n)).astype(np.float32)
        a += self.n * np.eye(self.n, dtype=np.float32)  # diagonally dominant
        b = rng.standard_normal(self.n).astype(np.float32)
        lu, ipvt = sgefa_reference(a)
        return a, lu, ipvt, b


#: The problem sizes of the paper's evaluation.
SGESL_SIZES = (256, 512, 1024, 2048)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    case = SgeslCase(n, seed=11 + seed)
    _, lu, ipvt, b = case.system()
    expected = sgesl_reference(lu, ipvt, b)
    args = (
        lu.copy(),
        b.copy(),
        (ipvt + 1).astype(np.int64),
        np.array(n, dtype=np.int32),
    )
    return WorkloadInstance(args=args, expected={1: expected})


SGESL = register(
    GalleryWorkload(
        name="sgesl",
        description="LINPACK triangular solve with offloaded column updates "
        "(paper Listing 6)",
        source=SGESL_SOURCE,
        entry="sgesl",
        sizes=SGESL_SIZES,
        smoke_size=64,
        make_instance=_make_instance,
        loop_shape="1-D, dynamic bounds",
    )
)

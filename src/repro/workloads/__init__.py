"""Benchmark workload gallery: Fortran sources + bit-exact NumPy references.

The paper evaluates SAXPY (Listing 5) and SGESL (Listing 6); this
package grows that set into a registry of workloads covering the loop
shapes the toolchain handles — 1-D SIMD offloads, dynamic-bound loops,
``collapse(2)``/``collapse(3)`` nests over 2-D/3-D arrays, CSR gather
accesses, round-robin reductions, indirect scatter stores (colliding
histogram accumulate + injectivity-proved permutation scatter) and
rank-3 nests with in-place k reductions.  Each workload module registers
itself at import time; consumers enumerate the gallery through
:func:`all_workloads` / :func:`get_workload`.

Importing this package keeps the original ``repro.workloads`` flat API
(``SAXPY_SOURCE``, ``SaxpyCase``, ``sgesl_reference``, ...) intact.
"""

from repro.workloads.base import (
    GalleryWorkload,
    WorkloadInstance,
    all_workloads,
    get_workload,
    iter_workloads,
    register,
    workload_names,
)
from repro.workloads.batched_gemm import (
    BATCH,
    BATCHED_GEMM,
    BATCHED_GEMM_SIZES,
    BATCHED_GEMM_SOURCE,
    batched_gemm_reference,
)
from repro.workloads.dot import DOT, DOT_SIZES, DOT_SOURCE, NCOPIES, dot_reference
from repro.workloads.gemm import (
    GEMM,
    GEMM_SIZES,
    GEMM_SOURCE,
    TILE,
    gemm_reference,
)
from repro.workloads.histogram import (
    HISTOGRAM,
    HISTOGRAM_SIZES,
    HISTOGRAM_SOURCE,
    histogram_reference,
    num_bins,
    scatter_reference,
)
from repro.workloads.heat3d import (
    HEAT3D,
    HEAT3D_SIZES,
    HEAT3D_SOURCE,
    heat3d_reference,
)
from repro.workloads.jacobi import (
    JACOBI2D,
    JACOBI2D_SIZES,
    JACOBI2D_SOURCE,
    jacobi2d_reference,
)
from repro.workloads.saxpy import (
    SAXPY,
    SAXPY_SIZES,
    SAXPY_SOURCE,
    SaxpyCase,
    saxpy_reference,
)
from repro.workloads.sgesl import (
    SGESL,
    SGESL_SIZES,
    SGESL_SOURCE,
    SgeslCase,
    sgefa_reference,
    sgesl_reference,
)
from repro.workloads.spmv import (
    SPMV,
    SPMV_SIZES,
    SPMV_SOURCE,
    make_csr,
    spmv_reference,
)

__all__ = [
    "GalleryWorkload",
    "WorkloadInstance",
    "all_workloads",
    "get_workload",
    "iter_workloads",
    "register",
    "workload_names",
    # saxpy
    "SAXPY", "SAXPY_SIZES", "SAXPY_SOURCE", "SaxpyCase", "saxpy_reference",
    # sgesl
    "SGESL", "SGESL_SIZES", "SGESL_SOURCE", "SgeslCase",
    "sgefa_reference", "sgesl_reference",
    # jacobi
    "JACOBI2D", "JACOBI2D_SIZES", "JACOBI2D_SOURCE", "jacobi2d_reference",
    # heat3d
    "HEAT3D", "HEAT3D_SIZES", "HEAT3D_SOURCE", "heat3d_reference",
    # batched gemm
    "BATCH", "BATCHED_GEMM", "BATCHED_GEMM_SIZES", "BATCHED_GEMM_SOURCE",
    "batched_gemm_reference",
    # spmv
    "SPMV", "SPMV_SIZES", "SPMV_SOURCE", "make_csr", "spmv_reference",
    # dot
    "DOT", "DOT_SIZES", "DOT_SOURCE", "NCOPIES", "dot_reference",
    # gemm
    "GEMM", "GEMM_SIZES", "GEMM_SOURCE", "TILE", "gemm_reference",
    # histogram
    "HISTOGRAM", "HISTOGRAM_SIZES", "HISTOGRAM_SOURCE",
    "histogram_reference", "num_bins", "scatter_reference",
]

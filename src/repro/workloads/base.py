"""Workload gallery core: the :class:`Workload` protocol + registry.

Every benchmark the toolchain can compile end to end lives in this
package as one registered :class:`GalleryWorkload`: a Fortran+OpenMP
source, the entry point to launch, a size sweep, and an instance builder
that produces executor-ready NumPy arguments together with the expected
final contents of every output argument (computed by a NumPy reference
whose float32 operation order matches the simulated kernels bit for
bit).

The registry is the single list of workloads consumed by

* :mod:`repro.pipeline` users (compile + run any workload by name),
* the cross-tier conformance suite (``tests/property``),
* the DSE sweep (:func:`repro.dse.explore_workload`),
* :func:`repro.reporting.gallery_table`, and
* ``benchmarks/perf_smoke.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.pipeline import CompiledProgram
    from repro.runtime.executor import ExecutionResult
    from repro.session import Session


@dataclass
class WorkloadInstance:
    """One concrete problem instance, ready to hand to an executor.

    ``args`` are the entry point's arguments in declaration order;
    ``expected`` maps argument positions to the bit-exact expected final
    contents of that (mutated in place) argument.
    """

    args: tuple
    expected: dict[int, np.ndarray]

    def outputs(self) -> dict[int, np.ndarray]:
        """The output arguments, keyed like :attr:`expected`."""
        return {i: self.args[i] for i in self.expected}


@dataclass(frozen=True)
class GalleryWorkload:
    """A registered workload: source + entry + sizes + instance builder."""

    name: str
    #: one-line description for gallery tables / reports
    description: str
    #: Fortran+OpenMP source text of the whole program
    source: str
    #: entry-point subroutine launched by :meth:`run`
    entry: str
    #: the size sweep reported in benchmarks (problem-specific meaning)
    sizes: tuple[int, ...]
    #: small size for smoke/property tests (fast on the scalar tier, but
    #: large enough to enter the vectorized tier where applicable)
    smoke_size: int
    #: builds (args, expected) for a given size/seed
    make_instance: Callable[[int, int], WorkloadInstance] = field(repr=False)
    #: loop shape exercised, for reporting ("1-D", "2-D collapse", ...)
    loop_shape: str = "1-D"

    def instance(self, n: int, seed: int = 0) -> WorkloadInstance:
        return self.make_instance(n, seed)

    # -- conveniences ---------------------------------------------------------------

    def compile(self, **kwargs) -> "CompiledProgram":
        from repro.pipeline import compile_fortran

        return compile_fortran(self.source, **kwargs)

    def session(self, **kwargs) -> "Session":
        """A staged :class:`~repro.session.Session` over this workload's
        source — the entry point for DSE sweeps with artifact reuse."""
        from repro.session import Session

        return Session(self.source, **kwargs)

    def run(
        self,
        program: "CompiledProgram",
        n: int | None = None,
        seed: int = 0,
        *,
        compiled: bool = True,
        vectorize: bool = True,
    ) -> tuple["ExecutionResult", WorkloadInstance]:
        """Run one instance on a fresh executor; returns (result, instance)."""
        instance = self.instance(n if n is not None else self.smoke_size, seed)
        result = program.executor(
            compiled=compiled, vectorize=vectorize
        ).run(self.entry, *instance.args)
        return result, instance

    def check(self, instance: WorkloadInstance) -> None:
        """Assert every output matches its reference bit for bit."""
        for pos, expected in instance.expected.items():
            actual = np.asarray(instance.args[pos])
            if actual.tobytes() != np.asarray(expected).tobytes():
                delta = np.max(
                    np.abs(actual.astype(np.float64) - expected.astype(np.float64))
                )
                raise AssertionError(
                    f"{self.name}: output arg {pos} differs from the NumPy "
                    f"reference (max abs delta {delta:.3e})"
                )

    def evaluator(
        self, n: int | None = None, seed: int = 0
    ) -> Callable[["CompiledProgram"], "ExecutionResult"]:
        """A DSE evaluation callback running one representative instance."""

        def evaluate(program: "CompiledProgram") -> "ExecutionResult":
            result, _ = self.run(program, n, seed)
            return result

        return evaluate


# -- registry ---------------------------------------------------------------------

_REGISTRY: dict[str, GalleryWorkload] = {}


def register(workload: GalleryWorkload) -> GalleryWorkload:
    """Add a workload to the gallery (module-import time)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> GalleryWorkload:
    if name not in _REGISTRY:
        raise KeyError(
            f"no workload {name!r}; have {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def workload_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def all_workloads() -> tuple[GalleryWorkload, ...]:
    """Every registered workload, in registration order."""
    return tuple(_REGISTRY.values())


def iter_workloads() -> Iterator[GalleryWorkload]:
    yield from _REGISTRY.values()

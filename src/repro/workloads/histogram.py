"""Histogram — colliding bincount scatter plus a permutation scatter.

The gallery's indirect-*store* workload (ROADMAP "gather stores with
provably injective index arrays" / "histogram workload once scatter
support exists").  Two kernels:

* ``h(bins(i)) = h(bins(i)) + w(i)`` — a ``reduction``-free scatter
  *accumulate* whose index array collides heavily (many samples per
  bin).  The vectorizer folds it with ``np.ufunc.at``, which combines
  repeated indices strictly in iteration order, so float32 results stay
  bit-exact with the scalar interpreter without any injectivity proof.
* ``ph(perm(i)) = 2.0 * w(i)`` — a plain scatter through a permutation:
  collision-freedom is *not* static, so the vectorizer's runtime
  injectivity proof (monotone, then unique) must pass before the
  deferred stores apply.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import GalleryWorkload, WorkloadInstance, register

HISTOGRAM_SOURCE = """
subroutine histogram(bins, w, h, perm, ph, n, nb)
  implicit none
  integer, intent(in) :: n, nb
  integer, intent(in) :: bins(n)
  integer, intent(in) :: perm(n)
  real, intent(in) :: w(n)
  real, intent(inout) :: h(nb)
  real, intent(inout) :: ph(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    h(bins(i)) = h(bins(i)) + w(i)
  end do
!$omp end target parallel do
!$omp target parallel do
  do i = 1, n
    ph(perm(i)) = 2.0 * w(i)
  end do
!$omp end target parallel do
end subroutine histogram
"""


def num_bins(n: int) -> int:
    """Bin count for a sample count ``n`` — far fewer bins than samples
    so the accumulate kernel's scatter really collides."""
    return max(16, min(1024, n // 16))


def histogram_reference(
    bins: np.ndarray, w: np.ndarray, nb: int
) -> np.ndarray:
    """Bincount in float32 with the kernel's exact per-cell accumulation
    order: ``np.add.at`` applies colliding updates in iteration order."""
    h = np.zeros(nb, dtype=np.float32)
    np.add.at(h, bins, w)
    return h


def scatter_reference(perm: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The permutation scatter: each lane's float32 product lands in its
    permuted slot (per-lane semantics identical to the scalar walk)."""
    ph = np.zeros(len(w), dtype=np.float32)
    ph[perm] = (np.float32(2.0) * w).astype(np.float32)
    return ph


HISTOGRAM_SIZES = (4096, 16384, 65536, 262144)


def _make_instance(n: int, seed: int) -> WorkloadInstance:
    rng = np.random.default_rng(61 + seed)
    nb = num_bins(n)
    bins = rng.integers(0, nb, n).astype(np.int32)  # 0-based, collides
    perm = rng.permutation(n).astype(np.int32)
    w = rng.standard_normal(n).astype(np.float32)
    h = np.zeros(nb, dtype=np.float32)
    ph = np.zeros(n, dtype=np.float32)
    args = (
        (bins + 1).astype(np.int32),  # Fortran 1-based bin indices
        w,
        h,
        (perm + 1).astype(np.int32),
        ph,
        np.array(n, dtype=np.int32),
        np.array(nb, dtype=np.int32),
    )
    return WorkloadInstance(
        args=args,
        expected={
            2: histogram_reference(bins, w, nb),
            4: scatter_reference(perm, w),
        },
    )


HISTOGRAM = register(
    GalleryWorkload(
        name="histogram",
        description="bincount h(bins(i)) += w(i) colliding scatter via "
        "ufunc.at plus an injectivity-proved permutation scatter",
        source=HISTOGRAM_SOURCE,
        entry="histogram",
        sizes=HISTOGRAM_SIZES,
        smoke_size=512,
        make_instance=_make_instance,
        loop_shape="1-D scatter (colliding + permutation)",
    )
)

"""SCF dialect: structured control flow (``scf.for``, ``scf.if``...)."""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.interpreter import Interpreter, Yielded, impl
from repro.ir.traits import IsTerminator
from repro.ir.types import TypeAttribute, index


class Yield(Operation):
    """Terminator yielding values to the enclosing structured op."""

    name = "scf.yield"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class For(Operation):
    """``scf.for %iv = %lb to %ub step %step iter_args(...)``.

    The body block receives ``[iv, *iter_args]``; the op returns the final
    iteration values.  The upper bound is exclusive (MLIR semantics).
    """

    name = "scf.for"

    def __init__(
        self,
        lb: SSAValue,
        ub: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        if body is None:
            body = Region(
                [Block([index] + [v.type for v in iter_args])]
            )
        super().__init__(
            operands=[lb, ub, step, *iter_args],
            result_types=[v.type for v in iter_args],
            regions=[body],
        )

    @property
    def lb(self) -> SSAValue:
        return self.operands[0]

    @property
    def ub(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> SSAValue:
        return self.body.args[0]

    def verify_(self) -> None:
        body = self.regions[0].block
        if len(body.args) != 1 + len(self.iter_args):
            raise IRError(
                "scf.for body must have induction variable plus one arg per "
                "iter_arg"
            )
        last = body.last_op
        if last is None or not isinstance(last, Yield):
            raise IRError("scf.for body must end with scf.yield")
        if len(last.operands) != len(self.results):
            raise IRError(
                "scf.for yield arity does not match op results"
            )


class If(Operation):
    """``scf.if`` with then/else regions, optionally yielding values."""

    name = "scf.if"

    def __init__(
        self,
        cond: SSAValue,
        result_types: Sequence[TypeAttribute] = (),
        then_region: Region | None = None,
        else_region: Region | None = None,
    ):
        then_region = then_region or Region([Block()])
        else_region = else_region or Region([Block()])
        super().__init__(
            operands=[cond],
            result_types=result_types,
            regions=[then_region, else_region],
        )

    @property
    def cond(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def else_block(self) -> Block:
        return self.regions[1].block


class While(Operation):
    """``scf.while`` with a "before" (condition) and "after" (body) region.

    The before region terminates with ``scf.condition``; the after region
    with ``scf.yield``.
    """

    name = "scf.while"

    def __init__(
        self,
        init_args: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute],
        before: Region,
        after: Region,
    ):
        super().__init__(
            operands=init_args,
            result_types=result_types,
            regions=[before, after],
        )


class Condition(Operation):
    """Terminator of the before-region of ``scf.while``."""

    name = "scf.condition"
    traits = (IsTerminator,)

    def __init__(self, cond: SSAValue, args: Sequence[SSAValue] = ()):
        super().__init__(operands=[cond, *args])


class Parallel(Operation):
    """``scf.parallel`` — a parallel loop nest (used after some
    auto-parallelisation flows; semantically a for loop here)."""

    name = "scf.parallel"

    def __init__(
        self,
        lbs: Sequence[SSAValue],
        ubs: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Region | None = None,
    ):
        n = len(lbs)
        if body is None:
            body = Region([Block([index] * n)])
        super().__init__(
            operands=[*lbs, *ubs, *steps],
            regions=[body],
            attributes={"num_dims": IntegerAttr.i64(n)},
        )


Scf = Dialect("scf", [Yield, For, If, While, Condition, Parallel])


# -- interpreter implementations ---------------------------------------------------


@impl("scf.yield")
def _run_yield(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


@impl("scf.for")
def _run_for(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    lb, ub, step = values[0], values[1], values[2]
    carried = list(values[3:])
    observer = interp.loop_observer
    if observer is not None:
        observer(op, max(0, -(-(ub - lb) // step)) if step > 0 else 0)
    if interp.vectorize:
        from repro.ir.vectorize import (
            try_vectorized_loop,
            try_vectorized_nest,
            try_vectorized_reduction,
        )

        if not carried and try_vectorized_loop(interp, op, env, lb, ub, step):
            interp.set_results(op, env, [])
            return None
        if not carried and try_vectorized_nest(interp, op, env, lb, ub, step):
            interp.set_results(op, env, [])
            return None
        finals = try_vectorized_reduction(interp, op, env, lb, ub, step)
        if finals is not None:
            interp.set_results(op, env, finals)
            return None
    body = op.regions[0].block
    iv = lb
    while iv < ub:
        signal = interp.run_block(body, env, [iv, *carried])
        if not isinstance(signal, Yielded):
            raise IRError("scf.for body did not yield")
        carried = list(signal.values)
        iv += step
    interp.set_results(op, env, carried)
    return None


@impl("scf.if")
def _run_if(interp: Interpreter, op: Operation, env: dict):
    (cond,) = (interp.get(env, op.operands[0]),)
    region = op.regions[0] if cond else op.regions[1]
    block = region.block
    if not block.ops:
        interp.set_results(op, env, [])
        return None
    signal = interp.run_block(block, env, [])
    if isinstance(signal, Yielded):
        interp.set_results(op, env, list(signal.values))
    else:
        interp.set_results(op, env, [])
    return None


@impl("scf.while")
def _run_while(interp: Interpreter, op: Operation, env: dict):
    carried = interp.operand_values(op, env)
    before = op.regions[0].block
    after = op.regions[1].block
    while True:
        signal = interp.run_block(before, env, carried)
        if not isinstance(signal, Yielded):
            raise IRError("scf.while before-region did not produce condition")
        cond, *args = signal.values
        if not cond:
            interp.set_results(op, env, list(args))
            return None
        signal = interp.run_block(after, env, args)
        if not isinstance(signal, Yielded):
            raise IRError("scf.while after-region did not yield")
        carried = list(signal.values)


@impl("scf.condition")
def _run_condition(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


# -- compiled-form emitters ---------------------------------------------------
#
# Structured control flow compiles to native Python loops/branches around
# compiled block bodies.  Loop closures invoke ``interp.loop_observer``
# (cycle accounting) and the vectorized fast paths exactly like the
# scalar ``_run_for`` does, and keep step accounting identical: one step
# for the structured op plus the per-iteration body op count.

from repro.ir.compile import CannotCompile, FnCompiler, compiled_for


def _single_block(op: Operation, region_index: int) -> Block:
    regions = op.regions
    if region_index >= len(regions) or len(regions[region_index].blocks) != 1:
        raise CannotCompile(op.name)
    return regions[region_index].blocks[0]


def _observed_trips(lb, ub, step) -> int:
    return max(0, -(-(ub - lb) // step)) if step > 0 else 0


@compiled_for("scf.for", counts_own_steps=True)
def _emit_for(op: Operation, ctx: FnCompiler):
    from repro.ir.interpreter import InterpreterError
    from repro.ir.vectorize import loop_vector_mode, try_vectorized_reduction

    body = _single_block(op, 0)
    last = body.ops[-1] if body.ops else None
    if last is None or last.name != "scf.yield":
        raise CannotCompile("scf.for body does not end in scf.yield")
    if len(last.operands) != len(op.results):
        raise CannotCompile("scf.for yield arity mismatch")

    lb_i, ub_i, st_i = (ctx.slot(o) for o in op.operands[:3])
    iter_slots = tuple(ctx.slot_list(op.operands[3:]))
    iv_slot = ctx.slot(body.args[0])
    arg_slots = tuple(ctx.slot_list(body.args[1:]))
    res_slots = tuple(ctx.slot_list(op.results))
    yld_slots = tuple(ctx.slot_list(last.operands))
    body_run = ctx.compile_body(body.ops, allow_terminators=("scf.yield",))

    mode, _ = loop_vector_mode(op)
    if mode is not None:
        ctx.needs_env = True

    if not iter_slots:
        if mode in ("elementwise", "scatter_store"):
            # scatter_store may still decline at runtime (failed
            # injectivity proof) — it returns False without side effects
            # and the scalar loop below takes over, accounting normally.
            from repro.ir.vectorize import try_vectorized_loop

            fast_path = try_vectorized_loop
        elif mode in (
            "nest_elementwise",
            "nest_reduction",
            "nest_scatter",
            "nest_segmented",
        ):
            # Perfect loop-nest chains and segmented (triangular / CSR)
            # nests evaluate whole-space; a runtime decline (short trip
            # count, NaN min/max fold, failed injectivity or monotone
            # proof) is side-effect free, so the scalar nested walk below
            # stays correct.
            from repro.ir.vectorize import try_vectorized_nest

            fast_path = try_vectorized_nest
        elif mode == "memref_reduction":
            def fast_path(interp, loop, env, lb, ub, step):
                return (
                    try_vectorized_reduction(interp, loop, env, lb, ub, step)
                    is not None
                )
        else:
            fast_path = None

        def run(interp, frame):
            interp.steps += 1
            lb, ub, step = frame[lb_i], frame[ub_i], frame[st_i]
            obs = interp.loop_observer
            if obs is not None:
                obs(op, _observed_trips(lb, ub, step))
            if (
                fast_path is not None
                and interp.vectorize
                and fast_path(interp, op, frame[0], lb, ub, step)
            ):
                return
            max_steps = interp.max_steps
            iv = lb
            while iv < ub:
                frame[iv_slot] = iv
                body_run(interp, frame)
                if interp.steps > max_steps:
                    raise InterpreterError("interpreter step limit exceeded")
                iv += step
        return run

    reducible = mode == "iter_reduction"

    def run(interp, frame):
        interp.steps += 1
        lb, ub, step = frame[lb_i], frame[ub_i], frame[st_i]
        obs = interp.loop_observer
        if obs is not None:
            obs(op, _observed_trips(lb, ub, step))
        if reducible and interp.vectorize:
            finals = try_vectorized_reduction(
                interp, op, frame[0], lb, ub, step
            )
            if finals is not None:
                for slot, value in zip(res_slots, finals):
                    frame[slot] = value
                return
        carried = [frame[s] for s in iter_slots]
        max_steps = interp.max_steps
        iv = lb
        while iv < ub:
            frame[iv_slot] = iv
            for slot, value in zip(arg_slots, carried):
                frame[slot] = value
            body_run(interp, frame)
            carried = [frame[s] for s in yld_slots]
            if interp.steps > max_steps:
                raise InterpreterError("interpreter step limit exceeded")
            iv += step
        for slot, value in zip(res_slots, carried):
            frame[slot] = value
    return run


@compiled_for("scf.if", counts_own_steps=True)
def _emit_if(op: Operation, ctx: FnCompiler):
    cond_i = ctx.slot(op.operands[0])
    res_slots = tuple(ctx.slot_list(op.results))
    branches = []
    for region_index in (0, 1):
        block = _single_block(op, region_index)
        last = block.ops[-1] if block.ops else None
        if last is not None and last.name == "scf.yield":
            src = tuple(ctx.slot_list(last.operands))
        else:
            src = ()
        if len(src) != len(res_slots):
            # scalar set_results would fault at run time; stay scalar
            raise CannotCompile("scf.if branch/result arity mismatch")
        runner = ctx.compile_body(block.ops, allow_terminators=("scf.yield",))
        branches.append((runner, src))
    (then_run, then_src), (else_run, else_src) = branches

    if not res_slots:
        def run(interp, frame):
            interp.steps += 1
            if frame[cond_i]:
                then_run(interp, frame)
            else:
                else_run(interp, frame)
        return run

    def run(interp, frame):
        interp.steps += 1
        if frame[cond_i]:
            then_run(interp, frame)
            src = then_src
        else:
            else_run(interp, frame)
            src = else_src
        values = [frame[s] for s in src]
        for slot, value in zip(res_slots, values):
            frame[slot] = value
    return run


@compiled_for("scf.while", counts_own_steps=True)
def _emit_while(op: Operation, ctx: FnCompiler):
    from repro.ir.interpreter import InterpreterError

    before = _single_block(op, 0)
    after = _single_block(op, 1)
    cond_op = before.ops[-1] if before.ops else None
    if cond_op is None or cond_op.name != "scf.condition":
        raise CannotCompile("scf.while before-region must end in condition")
    yield_op = after.ops[-1] if after.ops else None
    if yield_op is None or yield_op.name != "scf.yield":
        raise CannotCompile("scf.while after-region must end in yield")

    init_slots = tuple(ctx.slot_list(op.operands))
    before_args = tuple(ctx.slot_list(before.args))
    after_args = tuple(ctx.slot_list(after.args))
    res_slots = tuple(ctx.slot_list(op.results))
    cond_i = ctx.slot(cond_op.operands[0])
    cond_args = tuple(ctx.slot_list(cond_op.operands[1:]))
    yld_slots = tuple(ctx.slot_list(yield_op.operands))
    before_run = ctx.compile_body(
        before.ops, allow_terminators=("scf.condition",)
    )
    after_run = ctx.compile_body(after.ops, allow_terminators=("scf.yield",))

    def run(interp, frame):
        interp.steps += 1
        values = [frame[s] for s in init_slots]
        max_steps = interp.max_steps
        while True:
            for slot, value in zip(before_args, values):
                frame[slot] = value
            before_run(interp, frame)
            args = [frame[s] for s in cond_args]
            if not frame[cond_i]:
                for slot, value in zip(res_slots, args):
                    frame[slot] = value
                return
            for slot, value in zip(after_args, args):
                frame[slot] = value
            after_run(interp, frame)
            values = [frame[s] for s in yld_slots]
            if interp.steps > max_steps:
                raise InterpreterError("interpreter step limit exceeded")
    return run


@impl("scf.parallel")
def _run_parallel(interp: Interpreter, op: Operation, env: dict):
    ndims_attr = op.attributes["num_dims"]
    assert isinstance(ndims_attr, IntegerAttr)
    n = ndims_attr.value
    values = interp.operand_values(op, env)
    lbs, ubs, steps = values[:n], values[n : 2 * n], values[2 * n :]
    body = op.regions[0].block

    def recurse(dim: int, ivs: list[int]) -> None:
        if dim == n:
            interp.run_block(body, env, ivs)
            return
        iv = lbs[dim]
        while iv < ubs[dim]:
            recurse(dim + 1, [*ivs, iv])
            iv += steps[dim]

    recurse(0, [])
    return None

"""SCF dialect: structured control flow (``scf.for``, ``scf.if``...)."""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.interpreter import Interpreter, Yielded, impl
from repro.ir.traits import IsTerminator
from repro.ir.types import TypeAttribute, index


class Yield(Operation):
    """Terminator yielding values to the enclosing structured op."""

    name = "scf.yield"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class For(Operation):
    """``scf.for %iv = %lb to %ub step %step iter_args(...)``.

    The body block receives ``[iv, *iter_args]``; the op returns the final
    iteration values.  The upper bound is exclusive (MLIR semantics).
    """

    name = "scf.for"

    def __init__(
        self,
        lb: SSAValue,
        ub: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Region | None = None,
    ):
        if body is None:
            body = Region(
                [Block([index] + [v.type for v in iter_args])]
            )
        super().__init__(
            operands=[lb, ub, step, *iter_args],
            result_types=[v.type for v in iter_args],
            regions=[body],
        )

    @property
    def lb(self) -> SSAValue:
        return self.operands[0]

    @property
    def ub(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> SSAValue:
        return self.body.args[0]

    def verify_(self) -> None:
        body = self.regions[0].block
        if len(body.args) != 1 + len(self.iter_args):
            raise IRError(
                "scf.for body must have induction variable plus one arg per "
                "iter_arg"
            )
        last = body.last_op
        if last is None or not isinstance(last, Yield):
            raise IRError("scf.for body must end with scf.yield")
        if len(last.operands) != len(self.results):
            raise IRError(
                "scf.for yield arity does not match op results"
            )


class If(Operation):
    """``scf.if`` with then/else regions, optionally yielding values."""

    name = "scf.if"

    def __init__(
        self,
        cond: SSAValue,
        result_types: Sequence[TypeAttribute] = (),
        then_region: Region | None = None,
        else_region: Region | None = None,
    ):
        then_region = then_region or Region([Block()])
        else_region = else_region or Region([Block()])
        super().__init__(
            operands=[cond],
            result_types=result_types,
            regions=[then_region, else_region],
        )

    @property
    def cond(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def else_block(self) -> Block:
        return self.regions[1].block


class While(Operation):
    """``scf.while`` with a "before" (condition) and "after" (body) region.

    The before region terminates with ``scf.condition``; the after region
    with ``scf.yield``.
    """

    name = "scf.while"

    def __init__(
        self,
        init_args: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute],
        before: Region,
        after: Region,
    ):
        super().__init__(
            operands=init_args,
            result_types=result_types,
            regions=[before, after],
        )


class Condition(Operation):
    """Terminator of the before-region of ``scf.while``."""

    name = "scf.condition"
    traits = (IsTerminator,)

    def __init__(self, cond: SSAValue, args: Sequence[SSAValue] = ()):
        super().__init__(operands=[cond, *args])


class Parallel(Operation):
    """``scf.parallel`` — a parallel loop nest (used after some
    auto-parallelisation flows; semantically a for loop here)."""

    name = "scf.parallel"

    def __init__(
        self,
        lbs: Sequence[SSAValue],
        ubs: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Region | None = None,
    ):
        n = len(lbs)
        if body is None:
            body = Region([Block([index] * n)])
        super().__init__(
            operands=[*lbs, *ubs, *steps],
            regions=[body],
            attributes={"num_dims": IntegerAttr.i64(n)},
        )


Scf = Dialect("scf", [Yield, For, If, While, Condition, Parallel])


# -- interpreter implementations ---------------------------------------------------


@impl("scf.yield")
def _run_yield(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


@impl("scf.for")
def _run_for(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    lb, ub, step = values[0], values[1], values[2]
    carried = list(values[3:])
    if not carried:
        from repro.ir.vectorize import try_vectorized_loop

        if try_vectorized_loop(interp, op, env, lb, ub, step):
            interp.set_results(op, env, [])
            return None
    body = op.regions[0].block
    iv = lb
    while iv < ub:
        signal = interp.run_block(body, env, [iv, *carried])
        if not isinstance(signal, Yielded):
            raise IRError("scf.for body did not yield")
        carried = list(signal.values)
        iv += step
    interp.set_results(op, env, carried)
    return None


@impl("scf.if")
def _run_if(interp: Interpreter, op: Operation, env: dict):
    (cond,) = (interp.get(env, op.operands[0]),)
    region = op.regions[0] if cond else op.regions[1]
    block = region.block
    if not block.ops:
        interp.set_results(op, env, [])
        return None
    signal = interp.run_block(block, env, [])
    if isinstance(signal, Yielded):
        interp.set_results(op, env, list(signal.values))
    else:
        interp.set_results(op, env, [])
    return None


@impl("scf.while")
def _run_while(interp: Interpreter, op: Operation, env: dict):
    carried = interp.operand_values(op, env)
    before = op.regions[0].block
    after = op.regions[1].block
    while True:
        signal = interp.run_block(before, env, carried)
        if not isinstance(signal, Yielded):
            raise IRError("scf.while before-region did not produce condition")
        cond, *args = signal.values
        if not cond:
            interp.set_results(op, env, list(args))
            return None
        signal = interp.run_block(after, env, args)
        if not isinstance(signal, Yielded):
            raise IRError("scf.while after-region did not yield")
        carried = list(signal.values)


@impl("scf.condition")
def _run_condition(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


@impl("scf.parallel")
def _run_parallel(interp: Interpreter, op: Operation, env: dict):
    ndims_attr = op.attributes["num_dims"]
    assert isinstance(ndims_attr, IntegerAttr)
    n = ndims_attr.value
    values = interp.operand_values(op, env)
    lbs, ubs, steps = values[:n], values[n : 2 * n], values[2 * n :]
    body = op.regions[0].block

    def recurse(dim: int, ivs: list[int]) -> None:
        if dim == n:
            interp.run_block(body, env, ivs)
            return
        iv = lbs[dim]
        while iv < ubs[dim]:
            recurse(dim + 1, [*ivs, iv])
            iv += steps[dim]

    recurse(0, [])
    return None

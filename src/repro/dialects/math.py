"""Math dialect: transcendental and misc scalar float functions."""

from __future__ import annotations

import math as _math

from repro.ir.core import Dialect, Operation, SSAValue
from repro.ir.interpreter import Interpreter, impl
from repro.ir.traits import Pure
from repro.ir.types import FloatType


class _UnaryFloatOp(Operation):
    def __init__(self, value: SSAValue):
        super().__init__(operands=[value], result_types=[value.type])


class Sqrt(_UnaryFloatOp):
    name = "math.sqrt"
    traits = (Pure,)


class Absf(_UnaryFloatOp):
    name = "math.absf"
    traits = (Pure,)


class Exp(_UnaryFloatOp):
    name = "math.exp"
    traits = (Pure,)


class Log(_UnaryFloatOp):
    name = "math.log"
    traits = (Pure,)


class Sin(_UnaryFloatOp):
    name = "math.sin"
    traits = (Pure,)


class Cos(_UnaryFloatOp):
    name = "math.cos"
    traits = (Pure,)


class Powf(Operation):
    name = "math.powf"
    traits = (Pure,)

    def __init__(self, base: SSAValue, exponent: SSAValue):
        super().__init__(operands=[base, exponent], result_types=[base.type])


Math = Dialect("math", [Sqrt, Absf, Exp, Log, Sin, Cos, Powf])


def _register_unary(name: str, fn) -> None:
    @impl(name)
    def run(interp: Interpreter, op: Operation, env: dict, _fn=fn):
        (value,) = interp.operand_values(op, env)
        result = _fn(value)
        ty = op.results[0].type
        if isinstance(ty, FloatType) and ty.width == 32:
            import numpy as np

            result = float(np.float32(result))
        interp.set_results(op, env, [result])
        return None


_register_unary("math.sqrt", _math.sqrt)
_register_unary("math.absf", abs)
_register_unary("math.exp", _math.exp)
_register_unary("math.log", _math.log)
_register_unary("math.sin", _math.sin)
_register_unary("math.cos", _math.cos)


@impl("math.powf")
def _run_powf(interp: Interpreter, op: Operation, env: dict):
    base, exponent = interp.operand_values(op, env)
    interp.set_results(op, env, [base**exponent])
    return None


# -- compiled-form emitters ---------------------------------------------------


from repro.ir.compile import FnCompiler, compiled_for


def _emit_unary(fn):
    def emit(op: Operation, ctx: FnCompiler):
        import numpy as np

        src_i = ctx.slot(op.operands[0])
        res_i = ctx.slot(op.results[0])
        ty = op.results[0].type
        if isinstance(ty, FloatType) and ty.width == 32:
            def run(interp, frame, _fn=fn):
                frame[res_i] = float(np.float32(_fn(frame[src_i])))
        else:
            def run(interp, frame, _fn=fn):
                frame[res_i] = _fn(frame[src_i])
        return run

    return emit


for _name, _fn in (
    ("math.sqrt", _math.sqrt),
    ("math.absf", abs),
    ("math.exp", _math.exp),
    ("math.log", _math.log),
    ("math.sin", _math.sin),
    ("math.cos", _math.cos),
):
    compiled_for(_name)(_emit_unary(_fn))


@compiled_for("math.powf")
def _emit_powf(op: Operation, ctx: FnCompiler):
    base_i, exp_i = (ctx.slot(o) for o in op.operands)
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        frame[res_i] = frame[base_i] ** frame[exp_i]
    return run

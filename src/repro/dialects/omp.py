"""OpenMP dialect (subset mirroring MLIR's ``omp`` dialect).

Covers exactly what the paper's flow consumes: ``target`` offload with
data mapping (``map_info``/``bounds``), data regions
(``target_data``/``target_enter_data``/``target_exit_data``/
``target_update``), and loop constructs (``parallel``, ``wsloop``,
``simd``, ``loop_nest``) with reduction support.

Sequential interpreter implementations give OpenMP's *semantics* so
frontend output can be executed and compared against post-lowering IR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.attributes import ArrayAttr, IntegerAttr, StringAttr, UnitAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.interpreter import Interpreter, Yielded, impl
from repro.ir.traits import IsolatedFromAbove, IsTerminator
from repro.ir.types import TypeAttribute, index

#: Map types supported by ``omp.map_info`` (OpenMP 5 map-type modifiers,
#: with the paper's ``tofrom,implicit`` spelling for implicit maps).
MAP_TYPES = (
    "to",
    "from",
    "tofrom",
    "alloc",
    "to,implicit",
    "from,implicit",
    "tofrom,implicit",
)

#: Reduction kinds accepted on ``omp.wsloop``/``omp.simd``.
REDUCTION_KINDS = ("add", "mul", "max", "min")


@dataclass(frozen=True)
class DataBoundsType(TypeAttribute):
    """Opaque result type of ``omp.bounds``."""

    name = "omp.data_bounds"

    def print(self) -> str:
        return "!omp.data_bounds"


data_bounds = DataBoundsType()


class BoundsOp(Operation):
    """``omp.bounds`` — array-section bounds (lower, upper inclusive)."""

    name = "omp.bounds"

    def __init__(self, lower: SSAValue, upper: SSAValue):
        super().__init__(operands=[lower, upper], result_types=[data_bounds])

    @property
    def lower(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper(self) -> SSAValue:
        return self.operands[1]


class MapInfoOp(Operation):
    """``omp.map_info`` — describes how one variable is mapped.

    Result is the mapped variable (pass-through), so ``omp.target`` can use
    map results as operands, exactly as in MLIR.
    """

    name = "omp.map_info"

    def __init__(
        self,
        var: SSAValue,
        var_name: str,
        map_type: str,
        bounds: Sequence[SSAValue] = (),
    ):
        if map_type not in MAP_TYPES:
            raise IRError(f"invalid map type {map_type!r}")
        super().__init__(
            operands=[var, *bounds],
            result_types=[var.type],
            attributes={
                "var_name": StringAttr(var_name),
                "map_type": StringAttr(map_type),
            },
        )

    @property
    def var(self) -> SSAValue:
        return self.operands[0]

    @property
    def bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]

    @property
    def var_name(self) -> str:
        attr = self.attributes["var_name"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def map_type(self) -> str:
        attr = self.attributes["map_type"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def is_implicit(self) -> bool:
        return self.map_type.endswith(",implicit")

    @property
    def base_map_type(self) -> str:
        return self.map_type.split(",")[0]

    @property
    def copies_to_device(self) -> bool:
        return self.base_map_type in ("to", "tofrom")

    @property
    def copies_from_device(self) -> bool:
        return self.base_map_type in ("from", "tofrom")


class TerminatorOp(Operation):
    """Region terminator for omp container ops."""

    name = "omp.terminator"
    traits = (IsTerminator,)

    def __init__(self):
        super().__init__()


class YieldOp(Operation):
    """Loop-body terminator."""

    name = "omp.yield"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class TargetOp(Operation):
    """``omp.target`` — offload the region to the device.

    IsolatedFromAbove: the region's block arguments correspond 1:1 to the
    ``map_info`` operands, which is what makes the later kernel extraction
    a pure region transplant.
    """

    name = "omp.target"
    traits = (IsolatedFromAbove,)

    def __init__(self, map_vars: Sequence[SSAValue], body: Region | None = None):
        if body is None:
            body = Region([Block([v.type for v in map_vars])])
        super().__init__(operands=map_vars, regions=[body])

    @property
    def map_vars(self) -> tuple[SSAValue, ...]:
        return self.operands

    @property
    def body(self) -> Block:
        return self.regions[0].block

    def map_info_ops(self) -> list[MapInfoOp]:
        """The defining ``omp.map_info`` for each operand."""
        infos = []
        for operand in self.operands:
            from repro.ir.core import OpResult

            if not isinstance(operand, OpResult) or not isinstance(
                operand.op, MapInfoOp
            ):
                raise IRError("omp.target operand is not an omp.map_info result")
            infos.append(operand.op)
        return infos

    def verify_(self) -> None:
        body = self.regions[0].block
        if len(body.args) != len(self.operands):
            raise IRError(
                "omp.target: region must have one block arg per mapped var"
            )


class TargetDataOp(Operation):
    """``omp.target_data`` — structured device data region (host code runs
    inside the region)."""

    name = "omp.target_data"

    def __init__(self, map_vars: Sequence[SSAValue], body: Region | None = None):
        if body is None:
            body = Region([Block()])
        super().__init__(operands=map_vars, regions=[body])

    @property
    def map_vars(self) -> tuple[SSAValue, ...]:
        return self.operands

    @property
    def body(self) -> Block:
        return self.regions[0].block


class TargetEnterDataOp(Operation):
    """Unstructured data-region begin."""

    name = "omp.target_enter_data"

    def __init__(self, map_vars: Sequence[SSAValue]):
        super().__init__(operands=map_vars)


class TargetExitDataOp(Operation):
    """Unstructured data-region end."""

    name = "omp.target_exit_data"

    def __init__(self, map_vars: Sequence[SSAValue]):
        super().__init__(operands=map_vars)


class TargetUpdateOp(Operation):
    """``omp.target_update`` — refresh host/device copies inside a region."""

    name = "omp.target_update"

    def __init__(self, map_vars: Sequence[SSAValue]):
        super().__init__(operands=map_vars)


class ParallelOp(Operation):
    """``omp.parallel`` — parallel region (teams of threads on CPU;
    spatial parallelism after FPGA lowering)."""

    name = "omp.parallel"

    def __init__(self, body: Region | None = None):
        super().__init__(regions=[body or Region([Block()])])

    @property
    def body(self) -> Block:
        return self.regions[0].block


class WsLoopOp(Operation):
    """``omp.wsloop`` — worksharing loop wrapper.

    The single region holds either an ``omp.loop_nest`` directly or an
    ``omp.simd`` wrapping one.  Reductions: ``reduction_vars`` are rank-0
    memrefs updated inside the loop; ``reduction_kinds`` names the
    combiner per variable.
    """

    name = "omp.wsloop"

    def __init__(
        self,
        body: Region | None = None,
        reduction_vars: Sequence[SSAValue] = (),
        reduction_kinds: Sequence[str] = (),
    ):
        if len(reduction_vars) != len(reduction_kinds):
            raise IRError("reduction vars/kinds length mismatch")
        for kind in reduction_kinds:
            if kind not in REDUCTION_KINDS:
                raise IRError(f"invalid reduction kind {kind!r}")
        attributes = {}
        if reduction_kinds:
            attributes["reduction_kinds"] = ArrayAttr(
                [StringAttr(k) for k in reduction_kinds]
            )
        super().__init__(
            operands=reduction_vars,
            regions=[body or Region([Block()])],
            attributes=attributes,
        )

    @property
    def reduction_vars(self) -> tuple[SSAValue, ...]:
        return self.operands

    @property
    def reduction_kinds(self) -> list[str]:
        attr = self.attributes.get("reduction_kinds")
        if not isinstance(attr, ArrayAttr):
            return []
        return [a.value for a in attr if isinstance(a, StringAttr)]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    def loop_nest(self) -> "LoopNestOp":
        for op in self.body.ops:
            if isinstance(op, LoopNestOp):
                return op
            if isinstance(op, SimdOp):
                return op.loop_nest()
        raise IRError("omp.wsloop does not contain a loop nest")


class SimdOp(Operation):
    """``omp.simd`` with a ``simdlen`` attribute: on the FPGA this becomes
    partial unrolling by ``simdlen`` (paper §3)."""

    name = "omp.simd"

    def __init__(self, simdlen: int = 1, body: Region | None = None):
        super().__init__(
            regions=[body or Region([Block()])],
            attributes={"simdlen": IntegerAttr.i64(simdlen)},
        )

    @property
    def simdlen(self) -> int:
        attr = self.attributes["simdlen"]
        assert isinstance(attr, IntegerAttr)
        return attr.value

    @property
    def body(self) -> Block:
        return self.regions[0].block

    def loop_nest(self) -> "LoopNestOp":
        for op in self.body.ops:
            if isinstance(op, LoopNestOp):
                return op
        raise IRError("omp.simd does not contain a loop nest")


class LoopNestOp(Operation):
    """``omp.loop_nest`` — the canonical loop nest: per-dimension
    lb/ub/step triples with the Fortran-style *inclusive* upper bounds
    marked by the ``inclusive`` unit attribute.

    Rank 1 is the paper's combined ``target parallel do``; ``collapse(n)``
    produces a rank-n nest whose body block carries one induction-variable
    argument per dimension (outermost first), mirroring MLIR's
    ``omp.loop_nest``.  Operands are laid out ``lbs... ubs... steps...``.
    """

    name = "omp.loop_nest"

    def __init__(
        self,
        lb: SSAValue | Sequence[SSAValue],
        ub: SSAValue | Sequence[SSAValue],
        step: SSAValue | Sequence[SSAValue],
        body: Region | None = None,
        inclusive: bool = True,
    ):
        lbs = [lb] if isinstance(lb, SSAValue) else list(lb)
        ubs = [ub] if isinstance(ub, SSAValue) else list(ub)
        steps = [step] if isinstance(step, SSAValue) else list(step)
        if not lbs or len(lbs) != len(ubs) or len(lbs) != len(steps):
            raise IRError("omp.loop_nest: lb/ub/step ranks must match")
        attributes = {"inclusive": UnitAttr()} if inclusive else {}
        super().__init__(
            operands=[*lbs, *ubs, *steps],
            regions=[body or Region([Block([index] * len(lbs))])],
            attributes=attributes,
        )

    @property
    def rank(self) -> int:
        return len(self.operands) // 3

    @property
    def lbs(self) -> tuple[SSAValue, ...]:
        return self.operands[: self.rank]

    @property
    def ubs(self) -> tuple[SSAValue, ...]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> tuple[SSAValue, ...]:
        return self.operands[2 * self.rank :]

    @property
    def lb(self) -> SSAValue:
        return self.operands[0]

    @property
    def ub(self) -> SSAValue:
        return self.operands[self.rank]

    @property
    def step(self) -> SSAValue:
        return self.operands[2 * self.rank]

    @property
    def inclusive(self) -> bool:
        return "inclusive" in self.attributes

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> SSAValue:
        return self.body.args[0]

    @property
    def induction_vars(self) -> tuple[SSAValue, ...]:
        return tuple(self.body.args)

    def verify_(self) -> None:
        if len(self.operands) % 3 != 0:
            raise IRError("omp.loop_nest needs lb/ub/step per dimension")
        if len(self.regions[0].block.args) != self.rank:
            raise IRError("omp.loop_nest body must have one IV arg per dim")


Omp = Dialect(
    "omp",
    [
        BoundsOp, MapInfoOp, TerminatorOp, YieldOp,
        TargetOp, TargetDataOp, TargetEnterDataOp, TargetExitDataOp,
        TargetUpdateOp, ParallelOp, WsLoopOp, SimdOp, LoopNestOp,
    ],
)


# -- interpreter implementations (sequential OpenMP semantics) -------------------


@impl("omp.bounds")
def _run_bounds(interp: Interpreter, op: Operation, env: dict):
    lower, upper = interp.operand_values(op, env)
    interp.set_results(op, env, [(int(lower), int(upper))])
    return None


@impl("omp.map_info")
def _run_map_info(interp: Interpreter, op: Operation, env: dict):
    interp.set_results(op, env, [interp.get(env, op.operands[0])])
    return None


@impl("omp.terminator")
def _run_terminator(interp: Interpreter, op: Operation, env: dict):
    return Yielded(())


@impl("omp.yield")
def _run_yield(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


@impl("omp.target")
def _run_target(interp: Interpreter, op: Operation, env: dict):
    args = interp.operand_values(op, env)
    interp.run_block(op.regions[0].block, env, args)
    return None


@impl("omp.target_data")
def _run_target_data(interp: Interpreter, op: Operation, env: dict):
    interp.run_block(op.regions[0].block, env, [])
    return None


@impl("omp.target_enter_data")
@impl("omp.target_exit_data")
@impl("omp.target_update")
def _run_data_edge(interp: Interpreter, op: Operation, env: dict):
    return None


@impl("omp.parallel")
def _run_parallel(interp: Interpreter, op: Operation, env: dict):
    interp.run_block(op.regions[0].block, env, [])
    return None


@impl("omp.wsloop")
@impl("omp.simd")
def _run_loop_wrapper(interp: Interpreter, op: Operation, env: dict):
    interp.run_block(op.regions[0].block, env, [])
    return None


@impl("omp.loop_nest")
def _run_loop_nest(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    rank = len(values) // 3
    lbs = list(values[:rank])
    ubs = list(values[rank : 2 * rank])
    steps = list(values[2 * rank :])
    if "inclusive" in op.attributes:
        ubs = [
            ub + (1 if step > 0 else -1) for ub, step in zip(ubs, steps)
        ]
    body = op.regions[0].block
    if rank == 1:
        lb, ub, step = lbs[0], ubs[0], steps[0]
        if step > 0 and interp.vectorize:
            from repro.ir.vectorize import (
                try_vectorized_loop,
                try_vectorized_reduction,
            )

            if try_vectorized_loop(interp, op, env, lb, ub, step):
                return None
            if try_vectorized_reduction(interp, op, env, lb, ub, step) is not None:
                return None
        iv = lb
        while (step > 0 and iv < ub) or (step < 0 and iv > ub):
            interp.run_block(body, env, [iv])
            iv += step
        return None
    if all(step > 0 for step in steps) and interp.vectorize:
        from repro.ir.vectorize import try_vectorized_loop_nest

        if try_vectorized_loop_nest(interp, op, env, lbs, ubs, steps):
            return None

    def run_dim(dim: int, ivs: list) -> None:
        lb, ub, step = lbs[dim], ubs[dim], steps[dim]
        iv = lb
        while (step > 0 and iv < ub) or (step < 0 and iv > ub):
            if dim + 1 == rank:
                interp.run_block(body, env, [*ivs, iv])
            else:
                run_dim(dim + 1, [*ivs, iv])
            iv += step

    run_dim(0, [])
    return None

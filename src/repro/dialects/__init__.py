"""All dialects used by the pipeline.

``register_all_dialects`` wires them into a :class:`~repro.ir.core.Context`
(used by the parser); ``register_parser_types`` exposes the opaque dialect
types (``!device.kernelhandle`` etc.).
"""

from __future__ import annotations

from typing import Callable

from repro.ir.core import Context

from repro.dialects import arith as arith
from repro.dialects import builtin as builtin
from repro.dialects import device as device
from repro.dialects import fir as fir
from repro.dialects import func as func
from repro.dialects import hls as hls
from repro.dialects import math as math
from repro.dialects import memref as memref
from repro.dialects import omp as omp
from repro.dialects import scf as scf


def register_all_dialects(ctx: Context) -> None:
    """Register every dialect in this package with ``ctx``."""
    ctx.register_dialect(builtin.Builtin)
    ctx.register_dialect(func.Func)
    ctx.register_dialect(arith.Arith)
    ctx.register_dialect(scf.Scf)
    ctx.register_dialect(memref.MemRef)
    ctx.register_dialect(math.Math)
    ctx.register_dialect(omp.Omp)
    ctx.register_dialect(fir.Fir)
    ctx.register_dialect(device.Device)
    ctx.register_dialect(hls.Hls)


def register_parser_types(register: Callable[[str, object], None]) -> None:
    """Register opaque dialect types with the textual parser."""
    register("!device.kernelhandle", device.kernel_handle)
    register("!hls.axi_protocol", hls.axi_protocol)
    register("!hls.stream", hls.stream)
    register("!omp.data_bounds", omp.data_bounds)

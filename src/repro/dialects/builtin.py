"""Builtin dialect: ``builtin.module``."""

from __future__ import annotations

from repro.ir.attributes import Attribute, StringAttr
from repro.ir.core import Block, Dialect, Operation, Region
from repro.ir.traits import IsolatedFromAbove


class ModuleOp(Operation):
    """Top-level container.

    The device-side module produced by the extraction pass carries the
    attribute ``target = "fpga"`` (paper, Listing 2).
    """

    name = "builtin.module"
    traits = (IsolatedFromAbove,)

    def __init__(
        self,
        ops: list[Operation] | None = None,
        attributes: dict[str, Attribute] | None = None,
    ):
        region = Region([Block()])
        super().__init__(regions=[region], attributes=attributes)
        for op in ops or []:
            region.block.add_op(op)

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def target(self) -> str | None:
        attr = self.attributes.get("target")
        return attr.value if isinstance(attr, StringAttr) else None

    def verify_(self) -> None:
        if len(self.regions) != 1:
            raise ValueError("builtin.module must have exactly one region")


Builtin = Dialect("builtin", [ModuleOp])

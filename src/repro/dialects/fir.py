"""FIR dialect — the Flang Fortran IR subset our frontend targets.

Faithful-but-reduced model of HLFIR/FIR (we collapse the two levels into
one dialect; DESIGN.md documents the simplification):

* variables live in memory (``fir.alloca`` + ``fir.declare``), scalars are
  rank-0 memrefs — this mirrors how Flang materializes locals before
  MemToReg-style cleanups;
* ``fir.do_loop`` has Fortran's *inclusive* upper bound and an optional
  ``unordered`` marker (iterations may run in any order);
* ``fir.convert`` covers the implicit numeric conversions Fortran inserts.

The *[3] lowering* (:mod:`repro.frontend.fir_to_core`) rewrites all of
this into ``memref``/``scf``/``arith``.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import StringAttr, UnitAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.interpreter import Interpreter, Yielded, impl
from repro.ir.traits import IsTerminator
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    TypeAttribute,
    index,
)


class AllocaOp(Operation):
    """``fir.alloca`` — storage for one Fortran variable.

    Dynamic extents (dummy-sized local arrays like ``real :: col(n)``)
    are passed as index operands, one per dynamic dimension.
    """

    name = "fir.alloca"

    def __init__(
        self,
        result_type: MemRefType,
        uniq_name: str,
        dynamic_sizes: Sequence[SSAValue] = (),
    ):
        super().__init__(
            operands=dynamic_sizes,
            result_types=[result_type],
            attributes={"uniq_name": StringAttr(uniq_name)},
        )

    @property
    def uniq_name(self) -> str:
        attr = self.attributes["uniq_name"]
        assert isinstance(attr, StringAttr)
        return attr.value


class DeclareOp(Operation):
    """``fir.declare`` — associates storage with a source-level name
    (stands in for ``hlfir.declare`` + ``fir.declare``)."""

    name = "fir.declare"

    def __init__(self, memref: SSAValue, uniq_name: str):
        super().__init__(
            operands=[memref],
            result_types=[memref.type],
            attributes={"uniq_name": StringAttr(uniq_name)},
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def uniq_name(self) -> str:
        attr = self.attributes["uniq_name"]
        assert isinstance(attr, StringAttr)
        return attr.value


class LoadOp(Operation):
    """``fir.load`` — read a scalar variable (rank-0 memref)."""

    name = "fir.load"

    def __init__(self, memref: SSAValue):
        ty = memref.type
        if not isinstance(ty, MemRefType):
            raise IRError("fir.load requires a memref operand")
        super().__init__(operands=[memref], result_types=[ty.element_type])


class StoreOp(Operation):
    """``fir.store %value to %memref``."""

    name = "fir.store"

    def __init__(self, value: SSAValue, memref: SSAValue):
        super().__init__(operands=[value, memref])


class CoordinateOp(Operation):
    """``fir.coordinate_of``-style element access: load/store go through
    ``memref`` ops after lowering; at FIR level we model array element
    reads/writes directly."""

    name = "fir.array_load"

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue]):
        ty = memref.type
        assert isinstance(ty, MemRefType)
        super().__init__(
            operands=[memref, *indices], result_types=[ty.element_type]
        )


class ArrayStoreOp(Operation):
    name = "fir.array_store"

    def __init__(self, value: SSAValue, memref: SSAValue, indices: Sequence[SSAValue]):
        super().__init__(operands=[value, memref, *indices])


class DoLoopOp(Operation):
    """``fir.do_loop %iv = %lb to %ub step %step`` (inclusive ub)."""

    name = "fir.do_loop"

    def __init__(
        self,
        lb: SSAValue,
        ub: SSAValue,
        step: SSAValue,
        body: Region | None = None,
        unordered: bool = False,
    ):
        attributes = {"unordered": UnitAttr()} if unordered else {}
        super().__init__(
            operands=[lb, ub, step],
            regions=[body or Region([Block([index])])],
            attributes=attributes,
        )

    @property
    def lb(self) -> SSAValue:
        return self.operands[0]

    @property
    def ub(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def unordered(self) -> bool:
        return "unordered" in self.attributes

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> SSAValue:
        return self.body.args[0]


class IfOp(Operation):
    """``fir.if`` with then/else regions (no results; Fortran variables
    live in memory)."""

    name = "fir.if"

    def __init__(
        self,
        cond: SSAValue,
        then_region: Region | None = None,
        else_region: Region | None = None,
    ):
        super().__init__(
            operands=[cond],
            regions=[then_region or Region([Block()]),
                     else_region or Region([Block()])],
        )

    @property
    def cond(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def else_block(self) -> Block:
        return self.regions[1].block


class ResultOp(Operation):
    """Region terminator for fir structured ops."""

    name = "fir.result"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class ConvertOp(Operation):
    """``fir.convert`` — numeric conversion between scalar types."""

    name = "fir.convert"

    def __init__(self, value: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[value], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class PrintOp(Operation):
    """``fir.print`` — list-directed ``print *`` (host-side I/O).

    Kept through lowering (the host codegen prints it as ``std::cout``);
    never allowed inside device kernels.
    """

    name = "fir.print"

    def __init__(self, values: Sequence[SSAValue], label: str = ""):
        super().__init__(
            operands=values, attributes={"label": StringAttr(label)}
        )

    @property
    def label(self) -> str:
        attr = self.attributes["label"]
        assert isinstance(attr, StringAttr)
        return attr.value


Fir = Dialect(
    "fir",
    [
        AllocaOp, DeclareOp, LoadOp, StoreOp, CoordinateOp, ArrayStoreOp,
        DoLoopOp, IfOp, ResultOp, ConvertOp, PrintOp,
    ],
)


# -- interpreter implementations ---------------------------------------------------


@impl("fir.alloca")
def _run_alloca(interp: Interpreter, op: Operation, env: dict):
    import numpy as np

    from repro.dialects.memref import element_dtype
    from repro.ir.types import DYNAMIC

    ty = op.results[0].type
    assert isinstance(ty, MemRefType)
    sizes = iter(interp.operand_values(op, env))
    shape = tuple(
        int(next(sizes)) if extent == DYNAMIC else extent
        for extent in ty.shape
    )
    interp.set_results(
        op, env, [np.zeros(shape, dtype=element_dtype(ty.element_type))]
    )
    return None


@impl("fir.declare")
def _run_declare(interp: Interpreter, op: Operation, env: dict):
    interp.set_results(op, env, [interp.get(env, op.operands[0])])
    return None


@impl("fir.load")
def _run_load(interp: Interpreter, op: Operation, env: dict):
    (array,) = interp.operand_values(op, env)
    interp.set_results(op, env, [array[()]])
    return None


@impl("fir.store")
def _run_store(interp: Interpreter, op: Operation, env: dict):
    value, array = interp.operand_values(op, env)
    array[()] = value
    return None


@impl("fir.array_load")
def _run_array_load(interp: Interpreter, op: Operation, env: dict):
    # FIR-level subscripts are Fortran 1-based; the 0-based conversion is
    # what fir-to-core makes explicit (arith.subi in the paper's Listing 4).
    values = interp.operand_values(op, env)
    array, indices = values[0], values[1:]
    interp.set_results(op, env, [array[tuple(int(i) - 1 for i in indices)]])
    return None


@impl("fir.array_store")
def _run_array_store(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    value, array, indices = values[0], values[1], values[2:]
    array[tuple(int(i) - 1 for i in indices)] = value
    return None


@impl("fir.do_loop")
def _run_do_loop(interp: Interpreter, op: Operation, env: dict):
    lb, ub, step = interp.operand_values(op, env)
    body = op.regions[0].block
    iv = lb
    while (step > 0 and iv <= ub) or (step < 0 and iv >= ub):
        interp.run_block(body, env, [iv])
        iv += step
    return None


@impl("fir.if")
def _run_if(interp: Interpreter, op: Operation, env: dict):
    cond = interp.get(env, op.operands[0])
    block = op.regions[0].block if cond else op.regions[1].block
    if block.ops:
        interp.run_block(block, env, [])
    return None


@impl("fir.result")
def _run_result(interp: Interpreter, op: Operation, env: dict):
    return Yielded(tuple(interp.operand_values(op, env)))


@impl("fir.print")
def _run_print(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    label_attr = op.attributes.get("label")
    label = label_attr.value if isinstance(label_attr, StringAttr) else ""
    parts = ([label] if label else []) + [str(v) for v in values]
    print(" ".join(parts))
    return None


@impl("fir.convert")
def _run_convert(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    ty = op.results[0].type
    if isinstance(ty, (IntegerType, IndexType)):
        result: object = int(value)
    elif isinstance(ty, FloatType):
        result = float(value)
        if ty.width == 32:
            import numpy as np

            result = float(np.float32(result))
    else:
        raise IRError(f"fir.convert to unsupported type {ty.print()}")
    interp.set_results(op, env, [result])
    return None

"""The ``device`` dialect — this paper's contribution.

Abstracts host/device interaction so the host side maps 1:1 onto OpenCL
driver calls (paper §3):

* data management: ``device.alloc``, ``device.lookup``,
  ``device.data_check_exists``, ``device.data_acquire``,
  ``device.data_release`` — device memory is tracked by a *string
  identifier* plus *memory space* (HBM bank / DDR channel on the U280);
* kernels: ``device.kernel_create`` (returns ``!device.kernelhandle``),
  ``device.kernel_launch`` (asynchronous), ``device.kernel_wait``.

Interpreter implementations are **not** registered here: they live in
:mod:`repro.runtime.executor`, which binds them to the simulated board's
buffer table and command queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.attributes import IntegerAttr, StringAttr, SymbolRefAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.traits import IsolatedFromAbove
from repro.ir.types import MemRefType, TypeAttribute, i1


@dataclass(frozen=True)
class KernelHandleType(TypeAttribute):
    """Opaque handle returned by ``device.kernel_create``."""

    name = "device.kernelhandle"

    def print(self) -> str:
        return "!device.kernelhandle"


kernel_handle = KernelHandleType()


class _IdentifiedOp(Operation):
    """Shared accessors for ops carrying ``name``/``memory_space`` attrs."""

    @property
    def identifier(self) -> str:
        attr = self.attributes["name"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def memory_space(self) -> int:
        attr = self.attributes["memory_space"]
        assert isinstance(attr, IntegerAttr)
        return attr.value


class AllocOp(_IdentifiedOp):
    """``device.alloc`` — allocate device memory in a memory space.

    Operands are the dynamic sizes; the result is a memref whose type
    carries the device memory space, e.g.
    ``memref<100xf64, 1 : i32>`` (paper, Listing 2).
    """

    name = "device.alloc"

    def __init__(
        self,
        result_type: MemRefType,
        dynamic_sizes: Sequence[SSAValue] = (),
        *,
        identifier: str,
        memory_space: int,
    ):
        if result_type.memory_space != memory_space:
            raise IRError(
                "device.alloc: result memref memory space must match the "
                "memory_space attribute"
            )
        super().__init__(
            operands=dynamic_sizes,
            result_types=[result_type],
            attributes={
                "name": StringAttr(identifier),
                "memory_space": IntegerAttr.i32(memory_space),
            },
        )


class LookupOp(_IdentifiedOp):
    """``device.lookup`` — find the memref previously allocated under an
    identifier in a memory space."""

    name = "device.lookup"

    def __init__(
        self, result_type: MemRefType, *, identifier: str, memory_space: int
    ):
        super().__init__(
            result_types=[result_type],
            attributes={
                "name": StringAttr(identifier),
                "memory_space": IntegerAttr.i32(memory_space),
            },
        )


class DataCheckExistsOp(Operation):
    """``device.data_check_exists`` — i1: is the identifier resident?

    Lowered onto the data-region reference counter: true iff counter > 0
    (paper §3, implicit-map handling).
    """

    name = "device.data_check_exists"

    def __init__(self, *, identifier: str):
        super().__init__(
            result_types=[i1],
            attributes={"name": StringAttr(identifier)},
        )

    @property
    def identifier(self) -> str:
        attr = self.attributes["name"]
        assert isinstance(attr, StringAttr)
        return attr.value


class DataAcquireOp(_IdentifiedOp):
    """``device.data_acquire`` — increment the identifier's region counter."""

    name = "device.data_acquire"

    def __init__(self, *, identifier: str, memory_space: int):
        super().__init__(
            attributes={
                "name": StringAttr(identifier),
                "memory_space": IntegerAttr.i32(memory_space),
            }
        )


class DataReleaseOp(_IdentifiedOp):
    """``device.data_release`` — decrement the identifier's region counter."""

    name = "device.data_release"

    def __init__(self, *, identifier: str, memory_space: int):
        super().__init__(
            attributes={
                "name": StringAttr(identifier),
                "memory_space": IntegerAttr.i32(memory_space),
            }
        )


class KernelCreateOp(Operation):
    """``device.kernel_create`` — define a kernel over device buffers.

    Initially (right after *lower omp target region*) the region holds the
    kernel body; the extraction pass moves the body into a separate
    ``target = "fpga"`` module and records the callee in the
    ``device_function`` attribute, leaving the region empty — exactly the
    two states shown in the paper's Listing 2.
    """

    name = "device.kernel_create"
    traits = (IsolatedFromAbove,)

    def __init__(
        self,
        args: Sequence[SSAValue],
        body: Region | None = None,
        device_function: str | None = None,
    ):
        if body is None:
            body = Region([Block([a.type for a in args])])
        attributes = {}
        if device_function is not None:
            attributes["device_function"] = SymbolRefAttr(device_function)
        super().__init__(
            operands=args,
            result_types=[kernel_handle],
            regions=[body],
            attributes=attributes,
        )

    @property
    def kernel_args(self) -> tuple[SSAValue, ...]:
        return self.operands

    @property
    def device_function(self) -> str | None:
        attr = self.attributes.get("device_function")
        return attr.symbol if isinstance(attr, SymbolRefAttr) else None

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def is_extracted(self) -> bool:
        return self.device_function is not None and not self.body.ops

    def verify_(self) -> None:
        body = self.regions[0].block
        if body.ops and len(body.args) != len(self.operands):
            raise IRError(
                "device.kernel_create: inline region must have one block "
                "arg per kernel argument"
            )


class KernelLaunchOp(Operation):
    """``device.kernel_launch`` — asynchronous launch via handle."""

    name = "device.kernel_launch"

    def __init__(self, handle: SSAValue):
        super().__init__(operands=[handle])

    @property
    def handle(self) -> SSAValue:
        return self.operands[0]


class KernelWaitOp(Operation):
    """``device.kernel_wait`` — block until the kernel completes."""

    name = "device.kernel_wait"

    def __init__(self, handle: SSAValue):
        super().__init__(operands=[handle])

    @property
    def handle(self) -> SSAValue:
        return self.operands[0]


Device = Dialect(
    "device",
    [
        AllocOp, LookupOp, DataCheckExistsOp, DataAcquireOp, DataReleaseOp,
        KernelCreateOp, KernelLaunchOp, KernelWaitOp,
    ],
)

"""Arith dialect: constants, integer/float arithmetic, comparisons, casts."""

from __future__ import annotations

import math
import operator
from typing import Callable

from repro.ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr
from repro.ir.core import Dialect, IRError, Operation, SSAValue
from repro.ir.interpreter import Interpreter, impl
from repro.ir.traits import ConstantLike, Pure
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    TypeAttribute,
    i1,
    index,
)


class Constant(Operation):
    """``arith.constant`` — materializes an integer, index or float."""

    name = "arith.constant"
    traits = (ConstantLike, Pure)

    def __init__(self, value: Attribute, result_type: TypeAttribute):
        super().__init__(result_types=[result_type], attributes={"value": value})

    # -- convenience constructors -------------------------------------------

    @staticmethod
    def index(value: int) -> "Constant":
        return Constant(IntegerAttr.index(value), index)

    @staticmethod
    def int(value: int, width: int = 32) -> "Constant":
        return Constant(IntegerAttr(value, width), IntegerType(width))

    @staticmethod
    def bool(value: bool) -> "Constant":
        return Constant(IntegerAttr.i1(value), i1)

    @staticmethod
    def float(value: float, width: int = 64) -> "Constant":
        return Constant(FloatAttr(value, width), FloatType(width))

    @property
    def value(self) -> Attribute:
        return self.attributes["value"]

    @property
    def python_value(self) -> int | float:
        attr = self.value
        if isinstance(attr, IntegerAttr):
            return attr.value
        if isinstance(attr, FloatAttr):
            return attr.value
        raise IRError(f"arith.constant with non-numeric value {attr}")

    def verify_(self) -> None:
        attr = self.value
        ty = self.results[0].type
        if isinstance(ty, FloatType) and not isinstance(attr, FloatAttr):
            raise IRError("float constant requires a FloatAttr value")
        if isinstance(ty, (IntegerType, IndexType)) and not isinstance(
            attr, IntegerAttr
        ):
            raise IRError("integer constant requires an IntegerAttr value")


class _BinaryOp(Operation):
    """Shared base: two same-type operands, one result of that type."""

    def __init__(self, lhs: SSAValue, rhs: SSAValue, *, fastmath: str | None = None):
        attributes: dict[str, Attribute] = {}
        if fastmath:
            attributes["fastmath"] = StringAttr(fastmath)
        super().__init__(
            operands=[lhs, rhs],
            result_types=[lhs.type],
            attributes=attributes,
        )

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        if self.operands[0].type != self.operands[1].type:
            raise IRError(f"{self.name}: operand types differ")
        if self.results[0].type != self.operands[0].type:
            raise IRError(f"{self.name}: result type differs from operands")


class AddI(_BinaryOp):
    name = "arith.addi"
    traits = (Pure,)


class SubI(_BinaryOp):
    name = "arith.subi"
    traits = (Pure,)


class MulI(_BinaryOp):
    name = "arith.muli"
    traits = (Pure,)


class DivSI(_BinaryOp):
    name = "arith.divsi"
    traits = (Pure,)


class RemSI(_BinaryOp):
    name = "arith.remsi"
    traits = (Pure,)


class AndI(_BinaryOp):
    name = "arith.andi"
    traits = (Pure,)


class OrI(_BinaryOp):
    name = "arith.ori"
    traits = (Pure,)


class XOrI(_BinaryOp):
    name = "arith.xori"
    traits = (Pure,)


class MinSI(_BinaryOp):
    name = "arith.minsi"
    traits = (Pure,)


class MaxSI(_BinaryOp):
    name = "arith.maxsi"
    traits = (Pure,)


class AddF(_BinaryOp):
    name = "arith.addf"
    traits = (Pure,)


class SubF(_BinaryOp):
    name = "arith.subf"
    traits = (Pure,)


class MulF(_BinaryOp):
    name = "arith.mulf"
    traits = (Pure,)


class DivF(_BinaryOp):
    name = "arith.divf"
    traits = (Pure,)


class MinF(_BinaryOp):
    name = "arith.minimumf"
    traits = (Pure,)


class MaxF(_BinaryOp):
    name = "arith.maximumf"
    traits = (Pure,)


#: Comparison predicates shared by cmpi/cmpf (a useful common subset).
CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "olt", "ole", "ogt", "oge")


class CmpI(Operation):
    """Integer comparison producing ``i1``."""

    name = "arith.cmpi"
    traits = (Pure,)

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"bad cmpi predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.value


class CmpF(Operation):
    """Float comparison producing ``i1``."""

    name = "arith.cmpf"
    traits = (Pure,)

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"bad cmpf predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.value


class Select(Operation):
    """``arith.select %cond, %true_value, %false_value``."""

    name = "arith.select"
    traits = (Pure,)

    def __init__(self, cond: SSAValue, true_value: SSAValue, false_value: SSAValue):
        super().__init__(
            operands=[cond, true_value, false_value],
            result_types=[true_value.type],
        )


class _CastOp(Operation):
    """Shared base for single-operand type casts."""

    def __init__(self, value: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[value], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class IndexCast(_CastOp):
    """int <-> index conversion."""

    name = "arith.index_cast"
    traits = (Pure,)


class SIToFP(_CastOp):
    name = "arith.sitofp"
    traits = (Pure,)


class FPToSI(_CastOp):
    name = "arith.fptosi"
    traits = (Pure,)


class ExtF(_CastOp):
    name = "arith.extf"
    traits = (Pure,)


class TruncF(_CastOp):
    name = "arith.truncf"
    traits = (Pure,)


class ExtSI(_CastOp):
    name = "arith.extsi"
    traits = (Pure,)


class TruncI(_CastOp):
    name = "arith.trunci"
    traits = (Pure,)


Arith = Dialect(
    "arith",
    [
        Constant, AddI, SubI, MulI, DivSI, RemSI, AndI, OrI, XOrI,
        MinSI, MaxSI, AddF, SubF, MulF, DivF, MinF, MaxF,
        CmpI, CmpF, Select, IndexCast, SIToFP, FPToSI, ExtF, TruncF,
        ExtSI, TruncI,
    ],
)


# -- interpreter implementations ---------------------------------------------------


@impl("arith.constant")
def _run_constant(interp: Interpreter, op: Operation, env: dict):
    attr = op.attributes["value"]
    if isinstance(attr, IntegerAttr):
        interp.set_results(op, env, [attr.value])
    elif isinstance(attr, FloatAttr):
        value = attr.value
        if attr.width == 32:
            import numpy as np

            value = float(np.float32(value))
        interp.set_results(op, env, [value])
    else:
        raise IRError(f"cannot interpret constant {attr}")
    return None


#: Scalar combiner per binop — the single source of truth shared by the
#: interpreter impls and the compiled-form emitters, so the two dispatch
#: tiers cannot drift apart.
_BINOP_FNS: dict[str, Callable] = {
    "arith.addi": operator.add,
    "arith.subi": operator.sub,
    "arith.muli": operator.mul,
    "arith.divsi": lambda a, b: int(math.trunc(a / b)),
    "arith.remsi": lambda a, b: int(math.fmod(a, b)),
    "arith.andi": operator.and_,
    "arith.ori": operator.or_,
    "arith.xori": operator.xor,
    "arith.minsi": min,
    "arith.maxsi": max,
    "arith.addf": operator.add,
    "arith.subf": operator.sub,
    "arith.mulf": operator.mul,
    "arith.divf": operator.truediv,
    "arith.minimumf": min,
    "arith.maximumf": max,
}


def _register_binop(name: str, fn: Callable) -> None:
    @impl(name)
    def run(interp: Interpreter, op: Operation, env: dict, _fn=fn):
        lhs, rhs = interp.operand_values(op, env)
        result = _fn(lhs, rhs)
        ty = op.results[0].type
        if isinstance(ty, FloatType) and ty.width == 32:
            import numpy as np

            result = float(np.float32(result))
        interp.set_results(op, env, [result])
        return None


for _name, _fn in _BINOP_FNS.items():
    _register_binop(_name, _fn)

_CMP_FNS: dict[str, Callable] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
}


def _run_cmp(interp: Interpreter, op: Operation, env: dict):
    predicate_attr = op.attributes["predicate"]
    assert isinstance(predicate_attr, StringAttr)
    lhs, rhs = interp.operand_values(op, env)
    interp.set_results(op, env, [bool(_CMP_FNS[predicate_attr.value](lhs, rhs))])
    return None


impl("arith.cmpi")(_run_cmp)
impl("arith.cmpf")(_run_cmp)


@impl("arith.select")
def _run_select(interp: Interpreter, op: Operation, env: dict):
    cond, true_value, false_value = interp.operand_values(op, env)
    interp.set_results(op, env, [true_value if cond else false_value])
    return None


@impl("arith.index_cast")
def _run_index_cast(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [int(value)])
    return None


impl("arith.extsi")(_run_index_cast)
impl("arith.trunci")(_run_index_cast)


@impl("arith.sitofp")
def _run_sitofp(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    result = float(value)
    ty = op.results[0].type
    if isinstance(ty, FloatType) and ty.width == 32:
        import numpy as np

        result = float(np.float32(result))
    interp.set_results(op, env, [result])
    return None


@impl("arith.fptosi")
def _run_fptosi(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [int(value)])
    return None


@impl("arith.extf")
def _run_extf(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [float(value)])
    return None


@impl("arith.truncf")
def _run_truncf(interp: Interpreter, op: Operation, env: dict):
    import numpy as np

    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [float(np.float32(value))])
    return None


# -- compiled-form emitters ---------------------------------------------------
#
# Block-JIT closures mirroring the interpreter impls above bit-for-bit:
# same Python operator tables, same float32 rounding points.  Constant
# operands are folded at compile time (transitively, since folded results
# become literals themselves).

import numpy as _np

from repro.ir.compile import NOT_CONST, FnCompiler, compiled_for

_f32 = _np.float32


@compiled_for("arith.constant")
def _emit_constant(op: Operation, ctx: FnCompiler):
    from repro.ir.compile import CannotCompile

    attr = op.attributes["value"]
    if isinstance(attr, IntegerAttr):
        value = attr.value
    elif isinstance(attr, FloatAttr):
        value = float(_f32(attr.value)) if attr.width == 32 else attr.value
    else:
        raise CannotCompile("arith.constant with non-numeric value")
    ctx.set_literal(op.results[0], value)
    return None


def _emit_binop(fn: Callable):
    def emit(op: Operation, ctx: FnCompiler):
        result = op.results[0]
        ty = result.type
        round32 = isinstance(ty, FloatType) and ty.width == 32
        a, b = op.operands
        lit_a, lit_b = ctx.literal(a), ctx.literal(b)
        if lit_a is not NOT_CONST and lit_b is not NOT_CONST:
            try:
                value = fn(lit_a, lit_b)
            except (ArithmeticError, ValueError):
                value = NOT_CONST  # fold later, fail at run time as scalar
            if value is not NOT_CONST:
                if round32:
                    value = float(_f32(value))
                ctx.set_literal(result, value)
                return None
        ai, bi, ri = ctx.slot(a), ctx.slot(b), ctx.slot(result)
        if round32:
            def run(interp, frame, _fn=fn):
                frame[ri] = float(_f32(_fn(frame[ai], frame[bi])))
        else:
            def run(interp, frame, _fn=fn):
                frame[ri] = _fn(frame[ai], frame[bi])
        return run

    return emit


for _name, _fn in _BINOP_FNS.items():
    compiled_for(_name)(_emit_binop(_fn))


def _emit_cmp(op: Operation, ctx: FnCompiler):
    predicate_attr = op.attributes["predicate"]
    assert isinstance(predicate_attr, StringAttr)
    fn = _CMP_FNS[predicate_attr.value]
    a, b = op.operands
    result = op.results[0]
    lit_a, lit_b = ctx.literal(a), ctx.literal(b)
    if lit_a is not NOT_CONST and lit_b is not NOT_CONST:
        ctx.set_literal(result, bool(fn(lit_a, lit_b)))
        return None
    ai, bi, ri = ctx.slot(a), ctx.slot(b), ctx.slot(result)

    def run(interp, frame, _fn=fn):
        frame[ri] = bool(_fn(frame[ai], frame[bi]))
    return run


compiled_for("arith.cmpi")(_emit_cmp)
compiled_for("arith.cmpf")(_emit_cmp)


@compiled_for("arith.select")
def _emit_select(op: Operation, ctx: FnCompiler):
    ci, ti, fi = (ctx.slot(o) for o in op.operands)
    ri = ctx.slot(op.results[0])

    def run(interp, frame):
        frame[ri] = frame[ti] if frame[ci] else frame[fi]
    return run


def _emit_cast(convert: Callable):
    def emit(op: Operation, ctx: FnCompiler):
        source = op.operands[0]
        result = op.results[0]
        lit = ctx.literal(source)
        if lit is not NOT_CONST:
            ctx.set_literal(result, convert(lit))
            return None
        si, ri = ctx.slot(source), ctx.slot(result)

        def run(interp, frame, _convert=convert):
            frame[ri] = _convert(frame[si])
        return run

    return emit


for _name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
    compiled_for(_name)(_emit_cast(int))
compiled_for("arith.fptosi")(_emit_cast(int))
compiled_for("arith.extf")(_emit_cast(float))
compiled_for("arith.truncf")(_emit_cast(lambda v: float(_f32(v))))


@compiled_for("arith.sitofp")
def _emit_sitofp(op: Operation, ctx: FnCompiler):
    ty = op.results[0].type
    if isinstance(ty, FloatType) and ty.width == 32:
        return _emit_cast(lambda v: float(_f32(float(v))))(op, ctx)
    return _emit_cast(float)(op, ctx)

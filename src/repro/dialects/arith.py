"""Arith dialect: constants, integer/float arithmetic, comparisons, casts."""

from __future__ import annotations

import math
import operator
from typing import Callable, Sequence

from repro.ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr
from repro.ir.core import Dialect, IRError, Operation, SSAValue
from repro.ir.interpreter import Interpreter, impl
from repro.ir.traits import ConstantLike, Pure
from repro.ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    TypeAttribute,
    f32,
    f64,
    i1,
    index,
)


class Constant(Operation):
    """``arith.constant`` — materializes an integer, index or float."""

    name = "arith.constant"
    traits = (ConstantLike, Pure)

    def __init__(self, value: Attribute, result_type: TypeAttribute):
        super().__init__(result_types=[result_type], attributes={"value": value})

    # -- convenience constructors -------------------------------------------

    @staticmethod
    def index(value: int) -> "Constant":
        return Constant(IntegerAttr.index(value), index)

    @staticmethod
    def int(value: int, width: int = 32) -> "Constant":
        return Constant(IntegerAttr(value, width), IntegerType(width))

    @staticmethod
    def bool(value: bool) -> "Constant":
        return Constant(IntegerAttr.i1(value), i1)

    @staticmethod
    def float(value: float, width: int = 64) -> "Constant":
        return Constant(FloatAttr(value, width), FloatType(width))

    @property
    def value(self) -> Attribute:
        return self.attributes["value"]

    @property
    def python_value(self) -> int | float:
        attr = self.value
        if isinstance(attr, IntegerAttr):
            return attr.value
        if isinstance(attr, FloatAttr):
            return attr.value
        raise IRError(f"arith.constant with non-numeric value {attr}")

    def verify_(self) -> None:
        attr = self.value
        ty = self.results[0].type
        if isinstance(ty, FloatType) and not isinstance(attr, FloatAttr):
            raise IRError("float constant requires a FloatAttr value")
        if isinstance(ty, (IntegerType, IndexType)) and not isinstance(
            attr, IntegerAttr
        ):
            raise IRError("integer constant requires an IntegerAttr value")


class _BinaryOp(Operation):
    """Shared base: two same-type operands, one result of that type."""

    def __init__(self, lhs: SSAValue, rhs: SSAValue, *, fastmath: str | None = None):
        attributes: dict[str, Attribute] = {}
        if fastmath:
            attributes["fastmath"] = StringAttr(fastmath)
        super().__init__(
            operands=[lhs, rhs],
            result_types=[lhs.type],
            attributes=attributes,
        )

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        if self.operands[0].type != self.operands[1].type:
            raise IRError(f"{self.name}: operand types differ")
        if self.results[0].type != self.operands[0].type:
            raise IRError(f"{self.name}: result type differs from operands")


class AddI(_BinaryOp):
    name = "arith.addi"
    traits = (Pure,)


class SubI(_BinaryOp):
    name = "arith.subi"
    traits = (Pure,)


class MulI(_BinaryOp):
    name = "arith.muli"
    traits = (Pure,)


class DivSI(_BinaryOp):
    name = "arith.divsi"
    traits = (Pure,)


class RemSI(_BinaryOp):
    name = "arith.remsi"
    traits = (Pure,)


class AndI(_BinaryOp):
    name = "arith.andi"
    traits = (Pure,)


class OrI(_BinaryOp):
    name = "arith.ori"
    traits = (Pure,)


class XOrI(_BinaryOp):
    name = "arith.xori"
    traits = (Pure,)


class MinSI(_BinaryOp):
    name = "arith.minsi"
    traits = (Pure,)


class MaxSI(_BinaryOp):
    name = "arith.maxsi"
    traits = (Pure,)


class AddF(_BinaryOp):
    name = "arith.addf"
    traits = (Pure,)


class SubF(_BinaryOp):
    name = "arith.subf"
    traits = (Pure,)


class MulF(_BinaryOp):
    name = "arith.mulf"
    traits = (Pure,)


class DivF(_BinaryOp):
    name = "arith.divf"
    traits = (Pure,)


class MinF(_BinaryOp):
    name = "arith.minimumf"
    traits = (Pure,)


class MaxF(_BinaryOp):
    name = "arith.maximumf"
    traits = (Pure,)


#: Comparison predicates shared by cmpi/cmpf (a useful common subset).
CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "olt", "ole", "ogt", "oge")


class CmpI(Operation):
    """Integer comparison producing ``i1``."""

    name = "arith.cmpi"
    traits = (Pure,)

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"bad cmpi predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.value


class CmpF(Operation):
    """Float comparison producing ``i1``."""

    name = "arith.cmpf"
    traits = (Pure,)

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"bad cmpf predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.value


class Select(Operation):
    """``arith.select %cond, %true_value, %false_value``."""

    name = "arith.select"
    traits = (Pure,)

    def __init__(self, cond: SSAValue, true_value: SSAValue, false_value: SSAValue):
        super().__init__(
            operands=[cond, true_value, false_value],
            result_types=[true_value.type],
        )


class _CastOp(Operation):
    """Shared base for single-operand type casts."""

    def __init__(self, value: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[value], result_types=[result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]


class IndexCast(_CastOp):
    """int <-> index conversion."""

    name = "arith.index_cast"
    traits = (Pure,)


class SIToFP(_CastOp):
    name = "arith.sitofp"
    traits = (Pure,)


class FPToSI(_CastOp):
    name = "arith.fptosi"
    traits = (Pure,)


class ExtF(_CastOp):
    name = "arith.extf"
    traits = (Pure,)


class TruncF(_CastOp):
    name = "arith.truncf"
    traits = (Pure,)


class ExtSI(_CastOp):
    name = "arith.extsi"
    traits = (Pure,)


class TruncI(_CastOp):
    name = "arith.trunci"
    traits = (Pure,)


Arith = Dialect(
    "arith",
    [
        Constant, AddI, SubI, MulI, DivSI, RemSI, AndI, OrI, XOrI,
        MinSI, MaxSI, AddF, SubF, MulF, DivF, MinF, MaxF,
        CmpI, CmpF, Select, IndexCast, SIToFP, FPToSI, ExtF, TruncF,
        ExtSI, TruncI,
    ],
)


# -- interpreter implementations ---------------------------------------------------


@impl("arith.constant")
def _run_constant(interp: Interpreter, op: Operation, env: dict):
    attr = op.attributes["value"]
    if isinstance(attr, IntegerAttr):
        interp.set_results(op, env, [attr.value])
    elif isinstance(attr, FloatAttr):
        value = attr.value
        if attr.width == 32:
            import numpy as np

            value = float(np.float32(value))
        interp.set_results(op, env, [value])
    else:
        raise IRError(f"cannot interpret constant {attr}")
    return None


def _register_binop(name: str, fn: Callable, *, is_float: bool = False) -> None:
    @impl(name)
    def run(interp: Interpreter, op: Operation, env: dict, _fn=fn):
        lhs, rhs = interp.operand_values(op, env)
        result = _fn(lhs, rhs)
        ty = op.results[0].type
        if isinstance(ty, FloatType) and ty.width == 32:
            import numpy as np

            result = float(np.float32(result))
        interp.set_results(op, env, [result])
        return None


_register_binop("arith.addi", operator.add)
_register_binop("arith.subi", operator.sub)
_register_binop("arith.muli", operator.mul)
_register_binop("arith.divsi", lambda a, b: int(math.trunc(a / b)))
_register_binop("arith.remsi", lambda a, b: int(math.fmod(a, b)))
_register_binop("arith.andi", operator.and_)
_register_binop("arith.ori", operator.or_)
_register_binop("arith.xori", operator.xor)
_register_binop("arith.minsi", min)
_register_binop("arith.maxsi", max)
_register_binop("arith.addf", operator.add, is_float=True)
_register_binop("arith.subf", operator.sub, is_float=True)
_register_binop("arith.mulf", operator.mul, is_float=True)
_register_binop("arith.divf", operator.truediv, is_float=True)
_register_binop("arith.minimumf", min, is_float=True)
_register_binop("arith.maximumf", max, is_float=True)

_CMP_FNS: dict[str, Callable] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
}


def _run_cmp(interp: Interpreter, op: Operation, env: dict):
    predicate_attr = op.attributes["predicate"]
    assert isinstance(predicate_attr, StringAttr)
    lhs, rhs = interp.operand_values(op, env)
    interp.set_results(op, env, [bool(_CMP_FNS[predicate_attr.value](lhs, rhs))])
    return None


impl("arith.cmpi")(_run_cmp)
impl("arith.cmpf")(_run_cmp)


@impl("arith.select")
def _run_select(interp: Interpreter, op: Operation, env: dict):
    cond, true_value, false_value = interp.operand_values(op, env)
    interp.set_results(op, env, [true_value if cond else false_value])
    return None


@impl("arith.index_cast")
def _run_index_cast(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [int(value)])
    return None


impl("arith.extsi")(_run_index_cast)
impl("arith.trunci")(_run_index_cast)


@impl("arith.sitofp")
def _run_sitofp(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    result = float(value)
    ty = op.results[0].type
    if isinstance(ty, FloatType) and ty.width == 32:
        import numpy as np

        result = float(np.float32(result))
    interp.set_results(op, env, [result])
    return None


@impl("arith.fptosi")
def _run_fptosi(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [int(value)])
    return None


@impl("arith.extf")
def _run_extf(interp: Interpreter, op: Operation, env: dict):
    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [float(value)])
    return None


@impl("arith.truncf")
def _run_truncf(interp: Interpreter, op: Operation, env: dict):
    import numpy as np

    (value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [float(np.float32(value))])
    return None

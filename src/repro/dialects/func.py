"""Func dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import StringAttr, SymbolRefAttr, TypeAttr
from repro.ir.core import Block, Dialect, IRError, Operation, Region, SSAValue
from repro.ir.interpreter import Interpreter, Returned, impl
from repro.ir.traits import IsolatedFromAbove, IsTerminator, SymbolOp
from repro.ir.types import FunctionType, TypeAttribute


class FuncOp(Operation):
    """``func.func @name`` with a single-region body.

    A declaration (no body block) is represented by an empty region.
    """

    name = "func.func"
    traits = (IsolatedFromAbove, SymbolOp)

    def __init__(
        self,
        sym_name: str,
        function_type: FunctionType,
        *,
        visibility: str = "public",
    ):
        region = Region([Block(function_type.inputs)])
        super().__init__(
            regions=[region],
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": TypeAttr(function_type),
                "sym_visibility": StringAttr(visibility),
            },
        )

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, TypeAttr)
        ft = attr.type
        assert isinstance(ft, FunctionType)
        return ft

    @property
    def body(self) -> Block:
        return self.regions[0].block

    def verify_(self) -> None:
        if not self.regions or not self.regions[0].blocks:
            return  # declaration
        body = self.regions[0].block
        expected = self.function_type.inputs
        got = tuple(a.type for a in body.args)
        if expected != got:
            raise IRError(
                f"func.func @{self.sym_name}: entry block args {got} do not "
                f"match signature {expected}"
            )


class ReturnOp(Operation):
    """``func.return`` terminator."""

    name = "func.return"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class CallOp(Operation):
    """Direct call to a symbol."""

    name = "func.call"

    def __init__(
        self,
        callee: str,
        args: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
    ):
        super().__init__(
            operands=args,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        attr = self.attributes["callee"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.symbol


Func = Dialect("func", [FuncOp, ReturnOp, CallOp])


# -- interpreter implementations ---------------------------------------------------


@impl("func.return")
def _run_return(interp: Interpreter, op: Operation, env: dict):
    return Returned(tuple(interp.operand_values(op, env)))


@impl("func.call")
def _run_call(interp: Interpreter, op: Operation, env: dict):
    callee = op.attributes["callee"]
    assert isinstance(callee, SymbolRefAttr)
    values = interp.call(callee.symbol, *interp.operand_values(op, env))
    interp.set_results(op, env, list(values))
    return None


@impl("func.func")
def _run_func(interp: Interpreter, op: Operation, env: dict):
    # A func.func encountered during block execution is a definition, not
    # an invocation: nothing to do.
    return None


@impl("builtin.module")
def _run_module(interp: Interpreter, op: Operation, env: dict):
    return None


# -- compiled-form emitters ---------------------------------------------------


from repro.ir.compile import FnCompiler, compiled_for


@compiled_for("func.call", counts_own_steps=True)
def _emit_call(op: Operation, ctx: FnCompiler):
    callee_attr = op.attributes["callee"]
    assert isinstance(callee_attr, SymbolRefAttr)
    callee = callee_attr.symbol
    arg_slots = tuple(ctx.slot_list(op.operands))
    res_slots = tuple(ctx.slot_list(op.results))
    n_results = len(res_slots)

    def run(interp, frame):
        interp.steps += 1
        values = interp.call(callee, *[frame[s] for s in arg_slots])
        if len(values) != n_results:
            from repro.ir.interpreter import InterpreterError

            raise InterpreterError(
                f"func.call: implementation produced {len(values)} values "
                f"for {n_results} results"
            )
        for slot, value in zip(res_slots, values):
            frame[slot] = value
    return run


@compiled_for("func.func")
def _emit_nested_func(op: Operation, ctx: FnCompiler):
    # A definition encountered mid-block is a no-op, as in the interpreter.
    return None

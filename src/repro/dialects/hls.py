"""HLS dialect (the [20] Stencil-HMLS substrate).

Operations carry the HLS-specific information Vitis needs:

* ``hls.axi_protocol`` — materializes an AXI protocol token (``m_axi``...);
* ``hls.interface`` — binds a kernel argument to a port ``bundle``;
* ``hls.pipeline`` — marks the enclosing loop as pipelined with the given
  initiation interval (II);
* ``hls.unroll`` — marks the enclosing loop as (partially) unrolled;
* ``hls.stream_read`` / ``hls.stream_write`` — runtime-library stream
  access (the precompiled runtime IR the paper links against).

Functionally these are annotations: the interpreter treats them as no-ops;
the Vitis simulator consumes them for scheduling and resource estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.attributes import IntegerAttr, StringAttr
from repro.ir.core import Dialect, IRError, Operation, SSAValue
from repro.ir.interpreter import Interpreter, impl
from repro.ir.types import TypeAttribute

#: AXI protocol codes (operand of ``hls.axi_protocol``).
M_AXI = 0
AXILITE = 1
AXIS = 2

PROTOCOL_NAMES = {M_AXI: "m_axi", AXILITE: "s_axilite", AXIS: "axis"}


@dataclass(frozen=True)
class AxiProtocolType(TypeAttribute):
    """Opaque protocol token type."""

    name = "hls.axi_protocol"

    def print(self) -> str:
        return "!hls.axi_protocol"


@dataclass(frozen=True)
class StreamType(TypeAttribute):
    """HLS stream carrying elements of a scalar type."""

    name = "hls.stream"

    def print(self) -> str:
        return "!hls.stream"


axi_protocol = AxiProtocolType()
stream = StreamType()


class AxiProtocolOp(Operation):
    """``hls.axi_protocol(%code)`` — protocol token from an i32 code."""

    name = "hls.axi_protocol"

    def __init__(self, code: SSAValue):
        super().__init__(operands=[code], result_types=[axi_protocol])


class InterfaceOp(Operation):
    """``hls.interface %arg, %proto {bundle = "gmem0"}``.

    Directs the mapping of a kernel input to a port and its protocol
    (paper, Listing 4).
    """

    name = "hls.interface"

    def __init__(self, arg: SSAValue, protocol: SSAValue, bundle: str):
        super().__init__(
            operands=[arg, protocol],
            attributes={"bundle": StringAttr(bundle)},
        )

    @property
    def arg(self) -> SSAValue:
        return self.operands[0]

    @property
    def bundle(self) -> str:
        attr = self.attributes["bundle"]
        assert isinstance(attr, StringAttr)
        return attr.value


class PipelineOp(Operation):
    """``hls.pipeline(%ii)`` — pipeline the enclosing loop with target II."""

    name = "hls.pipeline"

    def __init__(self, ii: SSAValue):
        super().__init__(operands=[ii])

    @property
    def ii(self) -> SSAValue:
        return self.operands[0]

    def static_ii(self) -> int | None:
        """The II when its operand is a constant (the common case)."""
        from repro.ir.core import OpResult

        operand = self.operands[0]
        if isinstance(operand, OpResult) and operand.op.name == "arith.constant":
            attr = operand.op.attributes["value"]
            if isinstance(attr, IntegerAttr):
                return attr.value
        return None


class UnrollOp(Operation):
    """``hls.unroll {factor = n}`` — request (partial) unrolling.

    The OpenMP-to-HLS transform performs the unrolling itself and leaves
    this marker so the backend replicates functional units; this mirrors
    how the flow emits a Vitis HLS unroll directive for ``simdlen``
    (paper §4, SAXPY discussion).
    """

    name = "hls.unroll"

    def __init__(self, factor: int):
        if factor < 1:
            raise IRError("unroll factor must be >= 1")
        super().__init__(attributes={"factor": IntegerAttr.i64(factor)})

    @property
    def factor(self) -> int:
        attr = self.attributes["factor"]
        assert isinstance(attr, IntegerAttr)
        return attr.value


class StreamReadOp(Operation):
    """Runtime-library stream read."""

    name = "hls.stream_read"

    def __init__(self, stream_value: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[stream_value], result_types=[result_type])


class StreamWriteOp(Operation):
    """Runtime-library stream write."""

    name = "hls.stream_write"

    def __init__(self, stream_value: SSAValue, value: SSAValue):
        super().__init__(operands=[stream_value, value])


Hls = Dialect(
    "hls",
    [
        AxiProtocolOp, InterfaceOp, PipelineOp, UnrollOp,
        StreamReadOp, StreamWriteOp,
    ],
)


# -- interpreter implementations (annotations are functional no-ops) ---------------


@impl("hls.axi_protocol")
def _run_axi_protocol(interp: Interpreter, op: Operation, env: dict):
    (code,) = interp.operand_values(op, env)
    interp.set_results(op, env, [PROTOCOL_NAMES.get(int(code), "m_axi")])
    return None


@impl("hls.interface")
@impl("hls.pipeline")
@impl("hls.unroll")
def _run_annotation(interp: Interpreter, op: Operation, env: dict):
    return None


@impl("hls.stream_read")
def _run_stream_read(interp: Interpreter, op: Operation, env: dict):
    (stream_value,) = interp.operand_values(op, env)
    interp.set_results(op, env, [stream_value.pop(0)])
    return None


@impl("hls.stream_write")
def _run_stream_write(interp: Interpreter, op: Operation, env: dict):
    stream_value, value = interp.operand_values(op, env)
    stream_value.append(value)
    return None


# -- compiled-form emitters ---------------------------------------------------


from repro.ir.compile import FnCompiler, compiled_for


@compiled_for("hls.axi_protocol")
def _emit_axi_protocol(op: Operation, ctx: FnCompiler):
    src_i = ctx.slot(op.operands[0])
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        frame[res_i] = PROTOCOL_NAMES.get(int(frame[src_i]), "m_axi")
    return run


@compiled_for("hls.interface")
@compiled_for("hls.pipeline")
@compiled_for("hls.unroll")
def _emit_annotation(op: Operation, ctx: FnCompiler):
    # Functional no-op; still bulk-counted as one interpreter step.
    return None

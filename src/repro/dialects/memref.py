"""MemRef dialect: allocation, load/store and host<->device DMA.

Memrefs are backed by NumPy arrays in the interpreter.  Rank-0 memrefs
model Fortran scalars.  ``memref.dma_start``/``memref.wait`` are the ops
the paper uses to move data between host memory and device memory spaces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ir.core import Dialect, IRError, Operation, SSAValue
from repro.ir.interpreter import Interpreter, impl
from repro.ir.traits import MemoryRead, MemoryWrite
from repro.ir.types import (
    DYNAMIC,
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    TypeAttribute,
    i32,
    index,
)


def element_dtype(ty: TypeAttribute) -> np.dtype:
    """NumPy dtype backing a memref element type."""
    if isinstance(ty, FloatType):
        return np.dtype(np.float32 if ty.width == 32 else np.float64)
    if isinstance(ty, IntegerType):
        if ty.width == 1:
            return np.dtype(np.bool_)
        return np.dtype(f"int{max(8, ty.width)}")
    if isinstance(ty, IndexType):
        return np.dtype(np.int64)
    raise IRError(f"no dtype for element type {ty.print()}")


class Alloc(Operation):
    """``memref.alloc`` with one operand per dynamic dimension."""

    name = "memref.alloc"

    def __init__(self, result_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()):
        expected = sum(1 for s in result_type.shape if s == DYNAMIC)
        if expected != len(dynamic_sizes):
            raise IRError(
                f"memref.alloc: {expected} dynamic sizes required, got "
                f"{len(dynamic_sizes)}"
            )
        super().__init__(operands=dynamic_sizes, result_types=[result_type])

    @property
    def memref_type(self) -> MemRefType:
        ty = self.results[0].type
        assert isinstance(ty, MemRefType)
        return ty


class Alloca(Alloc):
    """Stack allocation; same structure as alloc."""

    name = "memref.alloca"


class Dealloc(Operation):
    name = "memref.dealloc"

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])


class Load(Operation):
    """``memref.load %m[%i, %j]``."""

    name = "memref.load"
    traits = (MemoryRead,)

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue] = ()):
        ty = memref.type
        if not isinstance(ty, MemRefType):
            raise IRError("memref.load requires a memref operand")
        if len(indices) != ty.rank:
            raise IRError(
                f"memref.load: rank {ty.rank} memref indexed with "
                f"{len(indices)} indices"
            )
        super().__init__(
            operands=[memref, *indices], result_types=[ty.element_type]
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]


class Store(Operation):
    """``memref.store %v, %m[%i, %j]``."""

    name = "memref.store"
    traits = (MemoryWrite,)

    def __init__(
        self, value: SSAValue, memref: SSAValue, indices: Sequence[SSAValue] = ()
    ):
        ty = memref.type
        if not isinstance(ty, MemRefType):
            raise IRError("memref.store requires a memref operand")
        if len(indices) != ty.rank:
            raise IRError(
                f"memref.store: rank {ty.rank} memref indexed with "
                f"{len(indices)} indices"
            )
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        return self.operands[1]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[2:]


class Cast(Operation):
    """``memref.cast`` — static <-> dynamic shape conversion (layout and
    element type must agree).  Inserted at call sites where a statically
    shaped actual argument is passed to a dynamically shaped dummy."""

    name = "memref.cast"

    def __init__(self, source: SSAValue, result_type: MemRefType):
        src_ty = source.type
        if not isinstance(src_ty, MemRefType):
            raise IRError("memref.cast requires a memref operand")
        if src_ty.element_type != result_type.element_type:
            raise IRError("memref.cast cannot change the element type")
        if src_ty.rank != result_type.rank:
            raise IRError("memref.cast cannot change the rank")
        super().__init__(operands=[source], result_types=[result_type])


class Dim(Operation):
    """``memref.dim`` — runtime extent of a dimension."""

    name = "memref.dim"

    def __init__(self, memref: SSAValue, dim: SSAValue):
        super().__init__(operands=[memref, dim], result_types=[index])


class Copy(Operation):
    """``memref.copy %src, %dst`` (same shape)."""

    name = "memref.copy"
    traits = (MemoryRead, MemoryWrite)

    def __init__(self, source: SSAValue, dest: SSAValue):
        super().__init__(operands=[source, dest])


class DmaStart(Operation):
    """Asynchronous copy between memory spaces (host <-> device).

    Returns an ``i32`` DMA tag consumed by :class:`DmaWait`.  This is a
    simplified form of MLIR's ``memref.dma_start`` retaining the semantics
    the paper relies on: the copy direction is implied by the memory
    spaces of the two memrefs.
    """

    name = "memref.dma_start"
    traits = (MemoryRead, MemoryWrite)

    def __init__(self, source: SSAValue, dest: SSAValue):
        super().__init__(operands=[source, dest], result_types=[i32])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def dest(self) -> SSAValue:
        return self.operands[1]


class DmaWait(Operation):
    """Blocks until the DMA identified by the tag completes."""

    name = "memref.wait"

    def __init__(self, tag: SSAValue):
        super().__init__(operands=[tag])


MemRef = Dialect(
    "memref",
    [Alloc, Alloca, Dealloc, Load, Store, Cast, Dim, Copy, DmaStart, DmaWait],
)


# -- interpreter implementations ---------------------------------------------------


def _allocate(op: Operation, sizes: list[int]) -> np.ndarray:
    ty = op.results[0].type
    assert isinstance(ty, MemRefType)
    shape = []
    dynamic_iter = iter(sizes)
    for extent in ty.shape:
        shape.append(next(dynamic_iter) if extent == DYNAMIC else extent)
    return np.zeros(tuple(shape), dtype=element_dtype(ty.element_type))


@impl("memref.alloc")
def _run_alloc(interp: Interpreter, op: Operation, env: dict):
    interp.set_results(op, env, [_allocate(op, interp.operand_values(op, env))])
    return None


impl("memref.alloca")(_run_alloc)


@impl("memref.dealloc")
def _run_dealloc(interp: Interpreter, op: Operation, env: dict):
    return None


@impl("memref.load")
def _run_load(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    array, indices = values[0], values[1:]
    element = array[tuple(int(i) for i in indices)] if indices else array[()]
    if isinstance(element, np.floating):
        element = float(element) if array.dtype != np.float32 else element
    interp.set_results(op, env, [element])
    return None


@impl("memref.store")
def _run_store(interp: Interpreter, op: Operation, env: dict):
    values = interp.operand_values(op, env)
    value, array, indices = values[0], values[1], values[2:]
    if indices:
        array[tuple(int(i) for i in indices)] = value
    else:
        array[()] = value
    return None


@impl("memref.cast")
def _run_cast(interp: Interpreter, op: Operation, env: dict):
    interp.set_results(op, env, [interp.get(env, op.operands[0])])
    return None


@impl("memref.dim")
def _run_dim(interp: Interpreter, op: Operation, env: dict):
    array, dim = interp.operand_values(op, env)
    interp.set_results(op, env, [int(array.shape[int(dim)])])
    return None


@impl("memref.copy")
def _run_copy(interp: Interpreter, op: Operation, env: dict):
    source, dest = interp.operand_values(op, env)
    np.copyto(dest, source)
    return None


@impl("memref.dma_start")
def _run_dma_start(interp: Interpreter, op: Operation, env: dict):
    # Functionally the DMA completes immediately; timing is modelled by the
    # performance layer, not the interpreter.
    source, dest = interp.operand_values(op, env)
    np.copyto(dest, source)
    interp.set_results(op, env, [0])
    return None


@impl("memref.wait")
def _run_dma_wait(interp: Interpreter, op: Operation, env: dict):
    return None


# -- compiled-form emitters ---------------------------------------------------
#
# Load/store dominate interpreted kernel bodies, so they get rank-
# specialized closures; the rarer ops (alloc, copy, dma, dim...) go
# through the interpreter-impl fallback automatically.

from repro.ir.compile import FnCompiler, compiled_for


@compiled_for("memref.load")
def _emit_load(op: Operation, ctx: FnCompiler):
    mem_i = ctx.slot(op.operands[0])
    idx = tuple(ctx.slot_list(op.operands[1:]))
    res_i = ctx.slot(op.results[0])
    f32_dtype = np.float32

    if not idx:
        def run(interp, frame):
            array = frame[mem_i]
            element = array[()]
            if isinstance(element, np.floating):
                if array.dtype != f32_dtype:
                    element = float(element)
            frame[res_i] = element
        return run

    if len(idx) == 1:
        (i0,) = idx

        def run(interp, frame):
            array = frame[mem_i]
            element = array[int(frame[i0])]
            if isinstance(element, np.floating):
                if array.dtype != f32_dtype:
                    element = float(element)
            frame[res_i] = element
        return run

    def run(interp, frame):
        array = frame[mem_i]
        element = array[tuple(int(frame[i]) for i in idx)]
        if isinstance(element, np.floating):
            if array.dtype != f32_dtype:
                element = float(element)
        frame[res_i] = element
    return run


@compiled_for("memref.store")
def _emit_store(op: Operation, ctx: FnCompiler):
    val_i = ctx.slot(op.operands[0])
    mem_i = ctx.slot(op.operands[1])
    idx = tuple(ctx.slot_list(op.operands[2:]))

    if not idx:
        def run(interp, frame):
            frame[mem_i][()] = frame[val_i]
        return run

    if len(idx) == 1:
        (i0,) = idx

        def run(interp, frame):
            frame[mem_i][int(frame[i0])] = frame[val_i]
        return run

    def run(interp, frame):
        frame[mem_i][tuple(int(frame[i]) for i in idx)] = frame[val_i]
    return run


@compiled_for("memref.cast")
def _emit_cast(op: Operation, ctx: FnCompiler):
    src_i = ctx.slot(op.operands[0])
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        frame[res_i] = frame[src_i]
    return run


@compiled_for("memref.dim")
def _emit_dim(op: Operation, ctx: FnCompiler):
    mem_i, dim_i = (ctx.slot(o) for o in op.operands)
    res_i = ctx.slot(op.results[0])

    def run(interp, frame):
        frame[res_i] = int(frame[mem_i].shape[int(frame[dim_i])])
    return run


def _emit_alloc(op: Operation, ctx: FnCompiler):
    ty = op.results[0].type
    assert isinstance(ty, MemRefType)
    dtype = element_dtype(ty.element_type)
    size_slots = iter(ctx.slot_list(op.operands))
    # dynamic extents hold the operand slot; static ones -extent - 1
    shape_spec = tuple(
        next(size_slots) if extent == DYNAMIC else -extent - 1
        for extent in ty.shape
    )
    res_i = ctx.slot(op.results[0])
    if all(entry < 0 for entry in shape_spec):
        shape = tuple(-entry - 1 for entry in shape_spec)

        def run(interp, frame):
            frame[res_i] = np.zeros(shape, dtype=dtype)
        return run

    def run(interp, frame):
        frame[res_i] = np.zeros(
            tuple(
                int(frame[entry]) if entry >= 0 else -entry - 1
                for entry in shape_spec
            ),
            dtype=dtype,
        )
    return run


compiled_for("memref.alloc")(_emit_alloc)
compiled_for("memref.alloca")(_emit_alloc)


@compiled_for("memref.dealloc")
def _emit_dealloc(op: Operation, ctx: FnCompiler):
    return None


@compiled_for("memref.copy")
def _emit_copy(op: Operation, ctx: FnCompiler):
    src_i, dst_i = (ctx.slot(o) for o in op.operands)

    def run(interp, frame):
        np.copyto(frame[dst_i], frame[src_i])
    return run

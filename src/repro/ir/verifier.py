"""Structural and typed IR verification.

Structural checks: parent links, def-use consistency, dominance (within
single-block regions: defs precede uses), terminator placement and
per-op ``verify_`` hooks.  Typed checks (:func:`typed_check_op`):
operand/result element-type agreement on arith/math ops, memref rank
vs. subscript count on load/store, and iter_args type agreement on
``scf.for`` — so a pass that builds ill-typed IR fails at the pass
boundary instead of as an interpreter crash.  Called by the pass
manager between passes when verification is enabled, and directly by
tests; the kernel checker (:mod:`repro.analysis`) reuses
:func:`typed_check_op` to report the same conditions as ``TYPE``
diagnostics with source locations.
"""

from __future__ import annotations

from repro.ir.core import (
    Block,
    BlockArgument,
    IRError,
    Operation,
    OpResult,
    Region,
)
from repro.ir.traits import IsolatedFromAbove, IsTerminator
from repro.ir.types import MemRefType


class VerificationError(IRError):
    """Raised when the IR is structurally or type invalid."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested within it."""
    _verify_op(op, isolation_root=op)


def _verify_op(op: Operation, isolation_root: Operation) -> None:
    # Operand def-use back references.  Each operand's registered Use
    # object is checked directly against the value's use list via its
    # stored position — O(1) per operand, where scanning ``operand.uses``
    # is O(#uses) and quadratic on high-fanout values (a loop bound used
    # by thousands of ops pays its whole use list per user, per pass
    # boundary when ``verify_each`` is on).
    operands = op._operands
    operand_uses = op._operand_uses
    if len(operands) != len(operand_uses):
        raise VerificationError(
            f"{op.name}: operand/use bookkeeping length mismatch"
        )
    for index, (operand, use) in enumerate(zip(operands, operand_uses)):
        pos = use.pos
        if (
            use.operation is not op
            or use.index != index
            or pos < 0
            or pos >= len(operand.uses)
            or operand.uses[pos] is not use
        ):
            raise VerificationError(
                f"{op.name}: operand {index} missing back-reference use"
            )
        _check_visibility(op, operand, isolation_root)
    # Result forward references.
    for result in op.results:
        if result.op is not op:
            raise VerificationError(f"{op.name}: result owner link broken")
        for use in result.uses:
            if use.index >= len(use.operation.operands) or (
                use.operation.operands[use.index] is not result
            ):
                raise VerificationError(
                    f"{op.name}: stale use record on result"
                )
    # Type agreement.
    typed = typed_check_op(op)
    if typed is not None:
        code, message = typed
        raise VerificationError(f"{op.name}: [{code}] {message}")
    # Region structure.
    child_root = op if op.has_trait(IsolatedFromAbove) else isolation_root
    for region in op.regions:
        if region.parent is not op:
            raise VerificationError(f"{op.name}: region parent link broken")
        _verify_region(region, child_root)
    op.verify_()


def _verify_region(region: Region, isolation_root: Operation) -> None:
    for block in region.blocks:
        if block.parent is not region:
            raise VerificationError("block parent link broken")
        _verify_block(block, isolation_root)


def _verify_block(block: Block, isolation_root: Operation) -> None:
    seen: set[OpResult] = set()
    for position, op in enumerate(block.ops):
        if op.parent is not block:
            raise VerificationError(f"{op.name}: op parent link broken")
        # Same-block dominance: operands defined in this block must be
        # defined earlier.
        for operand in op.operands:
            if isinstance(operand, OpResult) and operand.op.parent is block:
                if operand not in seen:
                    raise VerificationError(
                        f"{op.name}: use of value before its definition"
                    )
        for result in op.results:
            seen.add(result)
        if op.has_trait(IsTerminator) and position != len(block.ops) - 1:
            raise VerificationError(
                f"{op.name}: terminator is not the last op in its block"
            )
        _verify_op(op, isolation_root)


def _check_visibility(
    op: Operation, operand, isolation_root: Operation
) -> None:
    """Operands must be defined in an enclosing region of ``op`` and must
    not cross an ``IsolatedFromAbove`` boundary."""
    if isinstance(operand, OpResult):
        definer = operand.op.parent
    elif isinstance(operand, BlockArgument):
        definer = operand.block
    else:  # pragma: no cover - defensive
        return
    if definer is None:
        raise VerificationError(
            f"{op.name}: operand defined by a detached op/block"
        )
    if op is isolation_root and op.parent is None:
        # Verifying a detached subtree: cannot reason about the root's own
        # operands, accept them.
        return
    # Walk up the enclosing-block chain; the defining block must appear
    # before any IsolatedFromAbove boundary is crossed.
    block = op.parent
    while block is not None:
        if block is definer:
            return
        parent_op = block.parent.parent if block.parent else None
        if parent_op is None:
            break
        if parent_op.has_trait(IsolatedFromAbove):
            raise VerificationError(
                f"{op.name}: operand crosses IsolatedFromAbove boundary "
                f"({parent_op.name})"
            )
        if parent_op is isolation_root:
            # Above a non-isolated verification root we cannot see
            # definitions; accept the use.
            return
        block = parent_op.parent
    raise VerificationError(
        f"{op.name}: operand is not visible from its use site"
    )


# ---------------------------------------------------------------------------
# Typed verification
# ---------------------------------------------------------------------------

#: Elementwise ops whose operands and results must all share one type.
_UNIFORM_TYPE_OPS = frozenset(
    {
        "arith.addi", "arith.subi", "arith.muli", "arith.divsi",
        "arith.remsi", "arith.andi", "arith.ori", "arith.xori",
        "arith.minsi", "arith.maxsi",
        "arith.addf", "arith.subf", "arith.mulf", "arith.divf",
        "arith.minimumf", "arith.maximumf",
        "math.sqrt", "math.absf", "math.exp", "math.log",
        "math.sin", "math.cos", "math.powf",
    }
)


def typed_check_op(op: Operation) -> tuple[str, str] | None:
    """Type-agreement check for one op: ``(rule code, message)`` or None.

    Rule codes mirror :data:`repro.analysis.diagnostics.RULES`:

    * ``TYPE001`` — operand/result element types disagree on an
      arith/math op (including ``arith.select``'s value legs);
    * ``TYPE002`` — memref rank vs. subscript count (and element type)
      on ``memref.load``/``memref.store``;
    * ``TYPE003`` — ``scf.for`` iter_args disagree between the init
      operands, body block arguments, yielded values and results.
    """
    name = op.name
    if name in _UNIFORM_TYPE_OPS:
        types = {o.type for o in op.operands} | {r.type for r in op.results}
        if len(types) > 1:
            rendered = ", ".join(sorted(t.print() for t in types))
            return (
                "TYPE001",
                f"operands/results of {name} must share one type, "
                f"found {rendered}",
            )
        return None
    if name == "arith.select":
        if len(op.operands) == 3:
            _, lhs, rhs = op.operands
            types = {lhs.type, rhs.type} | {r.type for r in op.results}
            if len(types) > 1:
                rendered = ", ".join(sorted(t.print() for t in types))
                return (
                    "TYPE001",
                    "value legs and result of arith.select must share one "
                    f"type, found {rendered}",
                )
        return None
    if name == "memref.load":
        if not op.operands:
            return None
        memref_type = op.operands[0].type
        if not isinstance(memref_type, MemRefType):
            return (
                "TYPE002",
                f"memref.load base is {memref_type.print()}, not a memref",
            )
        rank = len(memref_type.shape)
        subscripts = len(op.operands) - 1
        if subscripts != rank:
            return (
                "TYPE002",
                f"memref.load of rank-{rank} {memref_type.print()} takes "
                f"{rank} subscripts, got {subscripts}",
            )
        if op.results and op.results[0].type != memref_type.element_type:
            return (
                "TYPE002",
                f"memref.load result {op.results[0].type.print()} does not "
                f"match element type {memref_type.element_type.print()}",
            )
        return None
    if name == "memref.store":
        if len(op.operands) < 2:
            return None
        memref_type = op.operands[1].type
        if not isinstance(memref_type, MemRefType):
            return (
                "TYPE002",
                f"memref.store base is {memref_type.print()}, not a memref",
            )
        rank = len(memref_type.shape)
        subscripts = len(op.operands) - 2
        if subscripts != rank:
            return (
                "TYPE002",
                f"memref.store to rank-{rank} {memref_type.print()} takes "
                f"{rank} subscripts, got {subscripts}",
            )
        if op.operands[0].type != memref_type.element_type:
            return (
                "TYPE002",
                f"memref.store value {op.operands[0].type.print()} does not "
                f"match element type {memref_type.element_type.print()}",
            )
        return None
    if name == "scf.for":
        iter_args = op.operands[3:]
        body = op.regions[0].blocks[0] if op.regions and op.regions[0].blocks else None
        if body is None:
            return None
        carried = body.args[1:]
        yielded: tuple = ()
        if body.ops and body.ops[-1].name == "scf.yield":
            yielded = body.ops[-1].operands
        for position, init in enumerate(iter_args):
            expected = init.type
            for role, value in (
                ("body argument", carried[position] if position < len(carried) else None),
                ("yielded value", yielded[position] if position < len(yielded) else None),
                ("result", op.results[position] if position < len(op.results) else None),
            ):
                if value is not None and value.type != expected:
                    return (
                        "TYPE003",
                        f"scf.for iter_arg {position} is {expected.print()} "
                        f"but its {role} is {value.type.print()}",
                    )
        return None
    return None

"""Structural IR verification.

Checks parent links, def-use consistency, dominance (within single-block
regions: defs precede uses), terminator placement and per-op ``verify_``
hooks.  Called by the pass manager between passes when verification is
enabled, and directly by tests.
"""

from __future__ import annotations

from repro.ir.core import (
    Block,
    BlockArgument,
    IRError,
    Operation,
    OpResult,
    Region,
)
from repro.ir.traits import IsolatedFromAbove, IsTerminator


class VerificationError(IRError):
    """Raised when the IR is structurally invalid."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested within it."""
    _verify_op(op, isolation_root=op)


def _verify_op(op: Operation, isolation_root: Operation) -> None:
    # Operand def-use back references.
    for index, operand in enumerate(op.operands):
        if not any(
            use.operation is op and use.index == index for use in operand.uses
        ):
            raise VerificationError(
                f"{op.name}: operand {index} missing back-reference use"
            )
        _check_visibility(op, operand, isolation_root)
    # Result forward references.
    for result in op.results:
        if result.op is not op:
            raise VerificationError(f"{op.name}: result owner link broken")
        for use in result.uses:
            if use.index >= len(use.operation.operands) or (
                use.operation.operands[use.index] is not result
            ):
                raise VerificationError(
                    f"{op.name}: stale use record on result"
                )
    # Region structure.
    child_root = op if op.has_trait(IsolatedFromAbove) else isolation_root
    for region in op.regions:
        if region.parent is not op:
            raise VerificationError(f"{op.name}: region parent link broken")
        _verify_region(region, child_root)
    op.verify_()


def _verify_region(region: Region, isolation_root: Operation) -> None:
    for block in region.blocks:
        if block.parent is not region:
            raise VerificationError("block parent link broken")
        _verify_block(block, isolation_root)


def _verify_block(block: Block, isolation_root: Operation) -> None:
    seen: set[OpResult] = set()
    for position, op in enumerate(block.ops):
        if op.parent is not block:
            raise VerificationError(f"{op.name}: op parent link broken")
        # Same-block dominance: operands defined in this block must be
        # defined earlier.
        for operand in op.operands:
            if isinstance(operand, OpResult) and operand.op.parent is block:
                if operand not in seen:
                    raise VerificationError(
                        f"{op.name}: use of value before its definition"
                    )
        for result in op.results:
            seen.add(result)
        if op.has_trait(IsTerminator) and position != len(block.ops) - 1:
            raise VerificationError(
                f"{op.name}: terminator is not the last op in its block"
            )
        _verify_op(op, isolation_root)


def _check_visibility(
    op: Operation, operand, isolation_root: Operation
) -> None:
    """Operands must be defined in an enclosing region of ``op`` and must
    not cross an ``IsolatedFromAbove`` boundary."""
    if isinstance(operand, OpResult):
        definer = operand.op.parent
    elif isinstance(operand, BlockArgument):
        definer = operand.block
    else:  # pragma: no cover - defensive
        return
    if definer is None:
        raise VerificationError(
            f"{op.name}: operand defined by a detached op/block"
        )
    if op is isolation_root and op.parent is None:
        # Verifying a detached subtree: cannot reason about the root's own
        # operands, accept them.
        return
    # Walk up the enclosing-block chain; the defining block must appear
    # before any IsolatedFromAbove boundary is crossed.
    block = op.parent
    while block is not None:
        if block is definer:
            return
        parent_op = block.parent.parent if block.parent else None
        if parent_op is None:
            break
        if parent_op.has_trait(IsolatedFromAbove):
            raise VerificationError(
                f"{op.name}: operand crosses IsolatedFromAbove boundary "
                f"({parent_op.name})"
            )
        if parent_op is isolation_root:
            # Above a non-isolated verification root we cannot see
            # definitions; accept the use.
            return
        block = parent_op.parent
    raise VerificationError(
        f"{op.name}: operand is not visible from its use site"
    )

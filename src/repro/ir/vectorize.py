"""Vectorized loop execution for the interpreter.

Interpreting multi-million-trip loops op-by-op in Python is prohibitively
slow, so loops whose behaviour is provable are executed with NumPy over
the whole iteration space at once.  Four loop shapes are recognised (the
analysis is cached per loop op, so each loop is classified exactly once):

**Elementwise loops** (no iter_args, no reduction):

* every memory subscript must be affine in the induction variable with a
  non-zero stride (injective — no scatter collisions), or loop-invariant
  for loads;
* the body must be straight-line (no nested regions) and consist of
  elementwise arith/math/memref ops;
* :func:`repro.transforms.loop_analysis.loop_carried_dependences` must
  find nothing.

**Reduction loops over iter_args** — ``%acc`` carried through
``scf.for ... iter_args`` whose yielded value is
``combine(%acc, %expr)`` for an add/mul/min/max combiner, with ``%expr``
elementwise and independent of the accumulator.  ``%expr`` is evaluated
vectorized, then folded with a *sequential* NumPy reduction.

**Reduction loops over memref accumulators** — the shape the round-robin
reduction rewrite produces: ``P[idx] = combine(P[idx], %expr)`` where the
load and store share *provably equal* subscript values (SSA-identical, or
structurally equal chains — including two separate loads of the same
index-array cell, the frontend's lowering of ``h(bins(i))``) and nothing
else touches ``P``.  The subscript may be loop-invariant (a plain scalar
reduction, rank-0 included), vary per iteration (the periodic
``(i ...) mod N`` round-robin pattern), or be *indirect* — loaded from an
index array — with arbitrary collisions: repeated-index combining uses
``np.ufunc.at``, which applies updates strictly in iteration order, so a
colliding histogram ``h(bins(i)) = h(bins(i)) + w(i)`` needs no
injectivity proof and stays bit-exact in float32.

**Scatter-store loops** — elementwise bodies whose store subscript is
*indirect*: ``A[idx(i)] = %expr`` where ``idx`` is loaded from a memref
nothing in the body stores to (``transforms.loop_analysis`` classifies
the subscript ``indirect``).  Unlike the accumulator form, a plain
scatter must not write one cell twice — whole-space NumPy fancy
assignment does not promise scalar iteration order for duplicate indices
— so the store is guarded by an **injectivity proof**, a small lattice
evaluated per store subscript, strongest proof first:

1. ``affine``   — static: a subscript dimension ``a*iv + b`` with
   ``a != 0`` never repeats (no runtime work; the pre-existing
   elementwise path);
2. ``monotone`` — runtime, O(n): the loaded index vector is strictly
   increasing/decreasing, hence injective;
3. ``unique``   — runtime, O(n log n): ``np.unique`` finds no duplicate;
4. ``⊥``        — no proof: the loop logs a *reasoned* bail-out naming
   the failed proof and re-runs on the scalar tier (the deferred-store
   evaluation has mutated nothing at that point).

One statically injective (affine) dimension proves the whole subscript
tuple; otherwise any single indirect dimension passing the runtime proof
does.  Store application is deferred until every store's proof succeeds.

**Whole-space loop nests** — beyond the four rank-1 shapes, a rank-n
``omp.loop_nest`` or a *perfect chain* of ``scf.for`` loops (the form
``lower-omp-to-hls`` emits for ``collapse(n)``) collapses back into one
NumPy evaluation over the full iteration space: ``nest_elementwise``
when the stores affinely cover every dimension, ``nest_reduction``
when the innermost dimension folds into a memref accumulator with an
ordered per-cell accumulate, or ``nest_scatter`` when a store subscript
inside the nest is *indirect* — the rank-1 injectivity-proof lattice is
lifted to the whole flattened space (a tuple-wise ``lexsort`` duplicate
check when several dimensions vary), with every store deferred until
all proofs pass (see :func:`_nest_vector_plan`).  Step accounting and
inner-loop cycle observers replay the scalar nested walk exactly, so
every tier stays bit-identical in results *and* modelled numbers.  The
plan also re-stitches the ``simdlen``-unrolled main/remainder loop
pairs ``lower-omp-to-hls`` emits at factor > 1: when the main body is
a proven structural F-fold clone of the remainder body, the pair
collapses back into one dimension spanning ``[main.lb, remainder.ub)``
and the remainder body drives the whole space (step/observer
accounting still charges both loops exactly as the scalar walk would).

**Segmented (triangular / CSR) nests** — ``nest_segmented`` covers the
imperfect shapes whose inner trip count *varies* with the outer IV, the
paper's two remaining scalar cliffs:

* the *nest* flavour: an outer loop whose body is ``prologue /
  inner reduction loop / epilogue`` where the inner bounds are affine
  in the outer IV (triangular ``j = k+1, n``) or loaded from a
  monotone offset array (CSR row loops — SpMV's
  ``do jj = row_ptr(i), row_ptr(i+1)-1``).  The whole space is
  flattened with prefix sums over the per-row trip counts; the inner
  reduction folds per segment with an ordered ``accumulate`` (equal
  rows) or in-order ``ufunc.at`` over segment ids (ragged rows), both
  bit-exact in f32.  Offset-array bounds are runtime-proved
  *monotone non-decreasing*; shuffled offsets log a reasoned bail.
* the *span* flavour: a rank-1 elementwise loop whose bounds are
  runtime data (loaded, like SGESL's ``j = k+1, n`` after hoisting) is
  one runtime segment — it evaluates exactly like ``elementwise`` but
  with **no minimum-trip-count floor**, so the triangular tail of a
  launch sweep never falls off the fast tier.

Per-segment observer counts are batched (one call per distinct trip
count) and cycle sums stay exact because modelled cycles are
integer-valued floats.

Float32 ordering note: per-element semantics are identical to the scalar
interpreter — NumPy applies the same operation per lane, and no
reassociation occurs.  For ordered reductions (add, mul) the fast path
uses ``ufunc.accumulate``/``ufunc.at``, which combine strictly in
iteration order per accumulator cell, so float32 results are bit-identical
to the scalar walk (pairwise-summation tricks like ``np.sum`` are *not*
used).  min/max are combined with ``np.minimum``/``np.maximum``, which
are order-insensitive for finite values; inputs containing NaN bail to
the scalar path (Python ``min``/``max`` ignore a NaN rhs where NumPy
propagates it), leaving only the sign of zero on min/max ties as a
potential bit difference.  Integer reductions accumulate in int64 (the
scalar engine is unbounded).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ir.core import (
    Block,
    Operation,
    OpResult,
    SSAValue,
    semantic_attributes,
)

#: Bail-out diagnostics: enable with
#: ``logging.getLogger("repro.ir.vectorize").setLevel(logging.DEBUG)`` to
#: see why a hot loop fell back to the scalar tier.
logger = logging.getLogger("repro.ir.vectorize")

#: ops that are safe no-ops inside a vectorized body
_SKIPPED = {"hls.pipeline", "hls.unroll", "scf.yield", "omp.yield"}

_BINOPS = {
    "arith.addi": np.add, "arith.subi": np.subtract,
    "arith.muli": np.multiply,
    "arith.addf": np.add, "arith.subf": np.subtract,
    "arith.mulf": np.multiply, "arith.divf": np.divide,
    "arith.andi": np.bitwise_and, "arith.ori": np.bitwise_or,
    "arith.xori": np.bitwise_xor,
    "arith.minimumf": np.minimum, "arith.maximumf": np.maximum,
    "arith.minsi": np.minimum, "arith.maxsi": np.maximum,
}
_CMPS = {
    "eq": np.equal, "ne": np.not_equal,
    "slt": np.less, "sle": np.less_equal,
    "sgt": np.greater, "sge": np.greater_equal,
    "olt": np.less, "ole": np.less_equal,
    "ogt": np.greater, "oge": np.greater_equal,
}
_MATH = {
    "math.sqrt": np.sqrt, "math.absf": np.abs, "math.exp": np.exp,
    "math.log": np.log, "math.sin": np.sin, "math.cos": np.cos,
}

_SUPPORTED = (
    set(_BINOPS)
    | set(_MATH)
    | _SKIPPED
    | {
        "arith.constant", "arith.cmpi", "arith.cmpf", "arith.select",
        "arith.index_cast", "arith.extsi", "arith.trunci",
        "arith.sitofp", "arith.fptosi", "arith.extf", "arith.truncf",
        "arith.divsi", "arith.remsi",
        "memref.load", "memref.store",
    }
)

#: reduction combiners and their NumPy ufuncs
_REDUCERS = {
    "arith.addf": np.add, "arith.addi": np.add,
    "arith.mulf": np.multiply, "arith.muli": np.multiply,
    "arith.minimumf": np.minimum, "arith.minsi": np.minimum,
    "arith.maximumf": np.maximum, "arith.maxsi": np.maximum,
}

#: below this trip count the scalar engines win on constant factors
_MIN_TRIPS = 64

#: rank-n nests above this many total iterations are evaluated one
#: outermost slice at a time to bound the whole-space temporaries
_MAX_NEST_ELEMS = 1 << 22


def _trunc_divide(a, b):
    """``arith.divsi`` with the scalar engine's exact semantics:
    ``int(math.trunc(a / b))`` — truncating division *via float64*,
    including its precision behaviour."""
    return np.trunc(np.divide(a, b)).astype(np.int64)


def _body_is_vectorizable(body: Block) -> bool:
    for op in body.ops:
        if op.regions:
            return False
        if op.name not in _SUPPORTED:
            return False
    return True


def _is_gather_index(idx: SSAValue, iv: SSAValue, body: Block) -> bool:
    """True when ``idx`` is an indirect subscript: the value of a load
    from an index array that nothing in the body stores to, subscripted
    affinely itself — SpMV's ``x(col_idx(jj))`` shape.  Safe for *loads*
    only (a scatter through such an index could collide)."""
    from repro.transforms.loop_analysis import classify_index, root_memref

    if not isinstance(idx, OpResult):
        return False
    source = idx.op
    if source.name != "memref.load" or source.parent is not body:
        return False
    root = root_memref(source.operands[0])
    for op in body.ops:
        if op.name == "memref.store" and root_memref(op.operands[1]) is root:
            return False
    return all(
        classify_index(sub, iv, body).kind in ("affine", "invariant")
        for sub in source.operands[1:]
    )


def _load_index_ok(idx: SSAValue, iv: SSAValue, body: Block) -> bool:
    from repro.transforms.loop_analysis import classify_index

    # ``indirect`` covers the full gather chain (cast/addi/subi/muli
    # around a load from an un-stored index array) — SpMV's
    # ``x(col_idx(jj) - 1)`` wraps the loaded index in a Fortran 1-based
    # adjustment, which ``_is_gather_index`` alone would reject.
    if classify_index(idx, iv, body).kind in (
        "affine", "invariant", "indirect",
    ):
        return True
    return _is_gather_index(idx, iv, body)


def _stores_conflict(
    first: Operation, second: Operation, iv: SSAValue, body: Block, step
) -> bool:
    """True when two stores to one buffer might touch the same cell in
    *different* iterations — whole-space evaluation runs each store over
    the full index vector in op order, which would reorder such writes.

    Safe cases: identical subscripts in every dim (per-cell op order is
    preserved), or some dim on provably disjoint affine lattices (the
    unroll-by-F clones write interleaved strides and never collide).
    """
    from repro.transforms.loop_analysis import _exact_offset, classify_index

    if len(first.operands) != len(second.operands):
        return True
    for wa, wb in zip(first.operands[2:], second.operands[2:]):
        if wa is wb:
            continue  # same subscript value: same cell in this dim
        pa = classify_index(wa, iv, body)
        pb = classify_index(wb, iv, body)
        if (
            pa.kind == "affine"
            and pb.kind == "affine"
            and pa.parameter == pb.parameter
            and _exact_offset(wa, iv, body)
            and _exact_offset(wb, iv, body)
        ):
            delta = pa.offset - pb.offset
            if delta == 0:
                continue  # same cell in this dim every iteration
            stride = pa.parameter * (step or 1)
            if step is not None and delta % stride != 0:
                return False  # disjoint lattices: never the same cell
            return True  # collide after |delta/stride| iterations
        return True  # incomparable subscripts: assume conflict
    return False


def _loop_is_vectorizable(loop: Operation) -> bool:
    from repro.transforms.loop_analysis import (
        classify_index,
        loop_carried_dependences,
        root_memref,
        static_loop_step,
    )

    body = loop.regions[0].block
    if len(body.args) != 1 or not _body_is_vectorizable(body):
        return False
    if loop_carried_dependences(loop):
        return False
    iv = body.args[0]
    stores_by_root: dict[int, list[Operation]] = {}
    for op in body.ops:
        if op.name == "memref.store":
            key = id(root_memref(op.operands[1]))
            stores_by_root.setdefault(key, []).append(op)
    # Dependence analysis only relates stores to loads; store/store
    # overlap across iterations must be excluded separately.
    step_const = static_loop_step(loop)
    for stores in stores_by_root.values():
        for i, first in enumerate(stores):
            for other in stores[i + 1 :]:
                if _stores_conflict(first, other, iv, body, step_const):
                    return False
    # All store subscripts must be injective: every dimension affine
    # (non-zero stride) or loop-invariant, with at least one affine
    # dimension — the 2-D array row/column stores of the gallery nests.
    for op in body.ops:
        if op.name == "memref.store":
            if len(op.operands) == 2:
                return False  # rank-0 store: same cell every iteration
            affine_dims = 0
            for idx in op.operands[2:]:
                pattern = classify_index(idx, iv, body)
                if pattern.kind == "affine" and pattern.parameter != 0:
                    affine_dims += 1
                elif pattern.kind != "invariant":
                    return False
            if affine_dims == 0:
                return False  # same cell every iteration
        elif op.name == "memref.load":
            for idx in op.operands[1:]:
                if not _load_index_ok(idx, iv, body):
                    return False
    return True


# ---------------------------------------------------------------------------
# Reduction recognition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _IterReduction:
    """Per-iter_arg combiner plan: (combiner name, expr value, position)."""

    combiners: tuple[tuple[str, SSAValue, int], ...]
    skip: frozenset[int]  # op ids excluded from elementwise evaluation


@dataclass(frozen=True)
class _MemrefReduction:
    """``P[idx] = combine(P[idx], expr)`` accumulator plan."""

    op_name: str
    acc: SSAValue  # the memref operand of the accumulator load
    indices: tuple[SSAValue, ...]
    expr: SSAValue
    skip: frozenset[int]  # ids of the load/combiner/store


@dataclass(frozen=True)
class _ScatterStore:
    """Deferred-store plan for ``A[idx(i)] = expr`` scatter loops.

    ``proof_dims`` holds, per store, the subscript dimensions whose
    loaded index vector must pass the runtime injectivity proof — empty
    when a statically injective (affine) dimension already proves the
    tuple.
    """

    stores: tuple[Operation, ...]  # in body op order
    proof_dims: tuple[tuple[int, ...], ...]
    skip: frozenset[int]  # ids of the deferred stores


def _analyze_scatter_store(
    loop: Operation,
) -> tuple[_ScatterStore | None, str | None]:
    """Classify an indirect-store loop; ``(plan, None)`` on success,
    ``(None, reason)`` when the body *looks* like a scatter but fails a
    proof obligation (the reason becomes the logged bail-out), and
    ``(None, None)`` when the shape is something else entirely."""
    from repro.transforms.loop_analysis import classify_index, root_memref

    body = loop.regions[0].block
    if len(body.args) != 1:
        return None, None
    iv = body.args[0]
    for op in body.ops:
        if op.regions or op.name not in _SUPPORTED:
            return None, None
    stores = [op for op in body.ops if op.name == "memref.store"]
    loaded = {
        id(root_memref(op.operands[0]))
        for op in body.ops
        if op.name == "memref.load"
    }
    store_roots: set[int] = set()
    proof_dims: list[tuple[int, ...]] = []
    has_indirect = False
    for store in stores:
        if len(store.operands) == 2:
            return None, None  # rank-0 store: the reduction form's territory
        root = id(root_memref(store.operands[1]))
        if root in store_roots:
            return None, (
                "two scatter stores to one buffer cannot be ordered"
            )
        store_roots.add(root)
        indirect: list[int] = []
        statically_injective = False
        for dim, idx in enumerate(store.operands[2:]):
            pattern = classify_index(idx, iv, body)
            if pattern.kind == "affine" and pattern.parameter != 0:
                statically_injective = True
            elif pattern.kind == "indirect":
                indirect.append(dim)
            elif pattern.kind != "invariant":
                return None, (
                    "store subscript is neither affine nor a gather from "
                    "an un-stored index array"
                )
        if not indirect and not statically_injective:
            return None, None  # invariant-only subscript: not a scatter
        has_indirect = has_indirect or bool(indirect)
        proof_dims.append(() if statically_injective else tuple(indirect))
    if not has_indirect:
        return None, None  # plain affine stores: the elementwise path's job
    if loaded & store_roots:
        return None, (
            "a scattered-to buffer is also read in the body, so deferred "
            "store application could reorder a read-after-write"
        )
    for op in body.ops:
        if op.name == "memref.load":
            for idx in op.operands[1:]:
                if not _load_index_ok(idx, iv, body):
                    return None, "load subscript is not affine/invariant/gather"
    plan = _ScatterStore(
        stores=tuple(stores),
        proof_dims=tuple(proof_dims),
        skip=frozenset(id(op) for op in stores),
    )
    return plan, None


def _analyze_iter_reduction(loop: Operation) -> _IterReduction | None:
    if loop.name != "scf.for":
        return None
    from repro.transforms.loop_analysis import classify_index

    body = loop.regions[0].block
    if len(body.args) < 2:
        return None
    last = body.ops[-1] if body.ops else None
    if last is None or last.name != "scf.yield":
        return None
    if len(last.operands) != len(body.args) - 1:
        return None
    iv = body.args[0]
    combiners: list[tuple[str, SSAValue, int]] = []
    combiner_ids: set[int] = set()
    for position, acc in enumerate(body.args[1:]):
        if len(acc.uses) != 1:
            return None
        combiner = acc.uses[0].operation
        if combiner.parent is not body or combiner.name not in _REDUCERS:
            return None
        if len(combiner.results) != 1 or len(combiner.operands) != 2:
            return None
        result = combiner.results[0]
        if len(result.uses) != 1:
            return None
        yield_use = result.uses[0]
        if yield_use.operation is not last or yield_use.index != position:
            return None
        lhs, rhs = combiner.operands
        expr = rhs if lhs is acc else lhs if rhs is acc else None
        if expr is None:
            return None
        combiners.append((combiner.name, expr, position))
        combiner_ids.add(id(combiner))
    for op in body.ops:
        if id(op) in combiner_ids or op is last:
            continue
        if op.regions or op.name not in _SUPPORTED:
            return None
        if op.name == "memref.store":
            return None
        if op.name == "memref.load":
            for idx in op.operands[1:]:
                if not _load_index_ok(idx, iv, body):
                    return None
    return _IterReduction(tuple(combiners), frozenset(combiner_ids))


def _analyze_memref_reduction(loop: Operation) -> _MemrefReduction | None:
    body = loop.regions[0].block
    if len(body.args) != 1:
        return None
    return _analyze_memref_reduction_body(body, body.args[0])


def _analyze_memref_reduction_body(
    body: Block, iv: SSAValue
) -> _MemrefReduction | None:
    """The ``P[idx] = combine(P[idx], expr)`` accumulator shape in
    ``body``, reduced along ``iv`` — shared between rank-1 loops (``iv``
    is the loop IV) and rank-n nests (``iv`` is the innermost dim)."""
    from repro.transforms.loop_analysis import (
        classify_index,
        index_values_equal,
        root_memref,
    )

    for op in body.ops:
        if op.regions or op.name not in _SUPPORTED:
            return None
    stores = [op for op in body.ops if op.name == "memref.store"]
    if len(stores) != 1:
        return None
    store = stores[0]
    stored = store.operands[0]
    if not isinstance(stored, OpResult):
        return None
    combiner = stored.op
    if combiner.parent is not body or combiner.name not in _REDUCERS:
        return None
    if len(stored.uses) != 1:  # combiner feeds the store and nothing else
        return None
    acc_root = root_memref(store.operands[1])
    load = None
    expr = None
    for candidate, other in (
        (combiner.operands[0], combiner.operands[1]),
        (combiner.operands[1], combiner.operands[0]),
    ):
        if not isinstance(candidate, OpResult):
            continue
        source = candidate.op
        if (
            source.name == "memref.load"
            and source.parent is body
            and root_memref(source.operands[0]) is acc_root
            and len(candidate.uses) == 1
            and len(source.operands) - 1 == len(store.operands) - 2
            # Provably equal subscripts: SSA-identical, or structurally
            # equal chains (two separate loads of the same index-array
            # cell — the lowered ``h(bins(i)) = h(bins(i)) + ...``).
            and all(
                index_values_equal(a, b, body)
                for a, b in zip(source.operands[1:], store.operands[2:])
            )
        ):
            load, expr = source, other
            break
    if load is None:
        return None
    for op in body.ops:
        if op is load:
            continue
        if op.name == "memref.load" and root_memref(op.operands[0]) is acc_root:
            return None  # accumulator read outside the combiner chain
        if op.name == "memref.load":
            for idx in op.operands[1:]:
                if not _load_index_ok(idx, iv, body):
                    return None
    return _MemrefReduction(
        combiner.name,
        load.operands[0],
        tuple(load.operands[1:]),
        expr,
        frozenset({id(load), id(combiner), id(store)}),
    )


# ---------------------------------------------------------------------------
# Cached per-loop classification
# ---------------------------------------------------------------------------
#
# The cache hangs off the *root* op of the module/function the loop
# lives in (``Operation.analysis_cache``), so cached plans — which hold
# strong references to body ops and, through ``.parent`` chains, the
# whole module — live exactly as long as the module itself.  A process
# that compiles and drops many programs (the ROADMAP's long-running
# service model) leaks nothing: dropping the program drops the module
# drops the cache.  Entries are keyed by ``id(loop)`` with the loop op
# kept in the value, so an id recycled by the allocator can never alias
# a stale entry.


def _cache_for(loop: Operation) -> dict[int, tuple]:
    root = loop
    while root.parent_op is not None:
        root = root.parent_op
    cache = getattr(root, "analysis_cache", None)
    if cache is None:
        cache = root.analysis_cache = {}
    return cache


def _classify(loop: Operation) -> tuple:
    key = id(loop)
    _analysis_cache = _cache_for(loop)
    cached = _analysis_cache.get(key)
    if cached is not None and cached[0] is loop:
        return cached
    mode: str | None = None
    plan: Any = None
    program = None
    bail_kind: str | None = None
    bail_reason: str | None = None
    if len(loop.regions) >= 1 and len(loop.regions[0].blocks) == 1:
        body = loop.regions[0].blocks[0]
        if len(body.args) == 1:
            if _loop_is_vectorizable(loop):
                from repro.transforms.loop_analysis import bound_is_runtime

                if bound_is_runtime(loop.operands[0]) or bound_is_runtime(
                    loop.operands[1]
                ):
                    # span flavour: a runtime-bounded elementwise loop is
                    # one runtime segment — same evaluation, no static
                    # minimum-trip-count floor (the triangular cliff)
                    mode = "nest_segmented"
                    plan = _SegmentedSpan()
                else:
                    mode = "elementwise"
            else:
                plan = _analyze_memref_reduction(loop)
                if plan is not None:
                    mode = "memref_reduction"
                else:
                    plan, bail_reason = _analyze_scatter_store(loop)
                    if plan is not None:
                        mode = "scatter_store"
                    elif bail_reason is not None:
                        bail_kind = "scatter-store"
            if mode is None and bail_reason is None and any(
                op.name == "scf.for" for op in body.ops
            ):
                # A perfectly nested loop chain: whole-space evaluation
                # of the collapsed iteration space (rank-n nests that
                # lower-omp-to-hls produced from collapse(n)).
                mode, plan, program, bail_reason = _nest_vector_plan(loop)
                if mode is None:
                    # imperfect nests get a second chance as a segmented
                    # (triangular / CSR) shape before bailing
                    seg = _segmented_nest_plan(loop)
                    if seg[0] is not None:
                        mode, plan, program, bail_reason = seg
                    elif seg[3] is not None:
                        bail_kind = "segmented nest"
                        bail_reason = seg[3]
                    else:
                        bail_kind = (
                            f"rank-{_chain_depth(loop)} {loop.name} nest"
                        )
        else:
            plan = _analyze_iter_reduction(loop)
            if plan is not None:
                mode = "iter_reduction"
        if mode is not None and program is None:
            # Rank-1 fast paths: the induction variable is the sole iv
            # slot (iter_args feed skipped combiners, never the program).
            program = _compile_vector_body(
                list(body.ops),
                plan.skip if plan is not None else frozenset(),
                [body.args[0]],
            )
    cached = (loop, mode, plan, program)
    if mode is None and logger.isEnabledFor(logging.DEBUG):
        if bail_reason is not None:
            logger.debug(
                "scalar bail-out: %s loop not vectorized: %s",
                bail_kind or loop.name,
                bail_reason,
            )
        else:
            logger.debug(
                "scalar bail-out: %s loop (%d body ops) has no "
                "elementwise/reduction/scatter classification",
                loop.name,
                len(loop.regions[0].blocks[0].ops) if loop.regions else 0,
            )
    _analysis_cache[key] = cached
    return cached


def _chain_depth(loop: Operation) -> int:
    """Depth of the perfect loop chain rooted at ``loop`` (diagnostics)."""
    depth = len(loop.regions[0].block.args) if loop.name == "omp.loop_nest" else 1
    body = loop.regions[0].block
    while True:
        nested = [op for op in body.ops if op.name == "scf.for"]
        if len(nested) != 1:
            return depth
        depth += 1
        body = nested[0].regions[0].block


@dataclass(frozen=True)
class _ChainLevel:
    """One extra nest dimension contributed by a chain member.

    ``bounds`` is the ``(lb, exclusive ub, step)`` value triple of the
    *dimension* (for a stitched main/remainder pair: the main loop's lb,
    the remainder's ub and step — together they span the original,
    un-unrolled range).  ``stitch`` is None for a plain ``scf.for``
    member, else ``(main_for, rem_for, main_opcount, rem_opcount)`` for
    a proven ``simdlen`` main/remainder pair whose step/observer
    accounting must charge *both* loops like the scalar walk does.
    """

    bounds: tuple[SSAValue, SSAValue, SSAValue]
    stitch: tuple[Operation, Operation, int, int] | None = None


@dataclass(frozen=True)
class _NestScatter:
    """Deferred-store plan for indirect subscripts inside a nest.

    ``proof_dims`` holds, per store, the subscript dimensions whose
    index vectors join the runtime injectivity proof over the flattened
    space — empty when the subscript already covers every nest dim with
    statically injective affine dimensions.  All stores (even purely
    affine ones) are deferred so a failed proof leaves nothing mutated.
    """

    stores: tuple[Operation, ...]  # in program op order
    proof_dims: tuple[tuple[int, ...], ...]
    skip: frozenset[int]


@dataclass(frozen=True)
class _NestPlan:
    """Whole-space plan for a rank-n loop nest.

    A nest is either a rank-n ``omp.loop_nest`` (``root_dims == rank``)
    or a *perfect chain* of ``scf.for`` loops rooted at one outer loop
    (``root_dims == 1``); in both forms the chain may extend through
    further perfectly nested ``scf.for`` members (``chain``), each
    contributing one extra dimension whose bounds are loop-invariant —
    including a ``simdlen``-unrolled main/remainder pair re-stitched
    into a single dimension (see :class:`_ChainLevel`).

    ``charge_specs`` reproduce the scalar walk's step accounting: each
    ``(dims, ops)`` entry charges ``prod(trips[:dims]) * ops`` steps —
    one step per op visit per execution of that block.  ``observer_specs``
    fire the interpreter's loop observer for each chain member exactly as
    often as the scalar walk would (cycle accounting); stitched levels
    instead charge/observe through their ``_ChainLevel.stitch`` info.
    ``prelude`` holds, per chain member, the IV-independent body ops its
    bounds may depend on; each level is pre-evaluated (step-neutral)
    only when its containing body would execute under the scalar walk,
    so the iteration space can be sized before the vector program runs
    without ever evaluating an expression the scalar tier would not
    reach.
    """

    ivs: tuple[SSAValue, ...]  # one per dimension, outermost first
    root_dims: int
    chain: tuple[_ChainLevel, ...]  # levels below the root
    charge_specs: tuple[tuple[int, int], ...]
    observer_specs: tuple[tuple[int, Operation], ...]
    prelude: tuple[tuple[Operation, ...], ...]  # one entry per chain member
    reduction: _MemrefReduction | None  # innermost-dim reduction fold
    scatter: _NestScatter | None = None  # deferred indirect stores


def _defined_outside(value: SSAValue, root_body: Block) -> bool:
    """True when ``value`` is defined outside the nest entirely."""
    from repro.ir.core import BlockArgument

    if isinstance(value, BlockArgument):
        block = value.block
        while block is not None:
            if block is root_body:
                return False
            parent_op = block.parent.parent if block.parent else None
            if parent_op is None:
                return True
            block = parent_op.parent
        return True
    if isinstance(value, OpResult):
        from repro.transforms.loop_analysis import _defined_inside

        return not _defined_inside(value.op, root_body)
    return False


def _const_int(value: SSAValue) -> int | None:
    from repro.ir.attributes import IntegerAttr

    if isinstance(value, OpResult) and value.op.name == "arith.constant":
        attr = value.op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return attr.value
    return None


def _attr_int(attr) -> int | None:
    from repro.ir.attributes import IntegerAttr

    return attr.value if isinstance(attr, IntegerAttr) else None


def _match_unroll_pair(main: Operation, rem: Operation) -> int | None:
    """Prove two sibling loops are the ``simdlen``-unrolled
    main/remainder pair ``lower-omp-to-hls`` emits, returning the unroll
    factor, or None.

    The pair is *semantically* the plain loop ``for iv in [main.lb,
    rem.ub, rem.step)`` running the remainder body.  The proof cannot be
    a linear shape match against the emitter's output: ``canonicalize``
    runs afterwards and constant-folds the per-lane IV derivations,
    CSE's cloned constants, and shares IV-independent subexpressions
    across lanes.  Instead the proof is over the dataflow:

    * ``rem.lb`` is SSA-identical to ``main.ub``;
    * ``main.step`` is ``F * step`` of the remainder step, either as
      ``muli(step, F)`` or as a folded constant multiple;
    * ``main.ub`` is ``lb + (ub - lb) // chunk * chunk`` over the same
      SSA values (so the main loop never overruns the split point);
    * the main body's stores are exactly F lanes of the remainder
      body's stores, in lane order, where every store operand is
      recursively equivalent to its remainder counterpart under the
      lane-k binding ``rem_iv == main_iv + k*step`` — constants compare
      by value (CSE/cloning makes them distinct SSA values), everything
      else by matching op name/attrs/operands;
    * no buffer both loaded and stored in either body, so lane-order
      sharing of loads can never observe a value an earlier lane's
      store would have changed.
    """
    from repro.transforms.loop_analysis import root_memref

    for member in (main, rem):
        if member.results or len(member.regions[0].blocks) != 1:
            return None
        if len(member.regions[0].block.args) != 1:
            return None
    main_body = main.regions[0].block
    rem_body = rem.regions[0].block
    lb, main_ub, chunk = main.operands[:3]
    rem_lb, ub_ex, step = rem.operands[:3]
    if rem_lb is not main_ub:
        return None
    step_c = _const_int(step)
    factor: int | None = None
    if isinstance(chunk, OpResult) and chunk.op.name == "arith.muli":
        c_lhs, c_rhs = chunk.op.operands
        factor = _const_int(c_rhs) if c_lhs is step else (
            _const_int(c_lhs) if c_rhs is step else None
        )
    if factor is None:
        # canonicalize folds muli(const_step, const_F) to one constant
        chunk_c = _const_int(chunk)
        if chunk_c is not None and step_c not in (None, 0):
            factor, rem_f = divmod(chunk_c, step_c)
            if rem_f:
                factor = None
    if factor is None or factor < 2:
        return None
    # main_ub = addi(lb, muli(divsi(subi(ub_ex, lb), chunk), chunk)):
    # guarantees (main_ub - lb) % chunk == 0, so the chunked main loop
    # covers [lb, main_ub) exactly and never overruns the split point.
    if not (isinstance(main_ub, OpResult) and main_ub.op.name == "arith.addi"):
        return None
    mu_lhs, main_len = main_ub.op.operands
    if mu_lhs is not lb:
        return None
    if not (
        isinstance(main_len, OpResult) and main_len.op.name == "arith.muli"
    ):
        return None
    trips_v, chunk_v = main_len.op.operands
    if chunk_v is not chunk:
        return None
    if not (isinstance(trips_v, OpResult) and trips_v.op.name == "arith.divsi"):
        return None
    span_v, chunk_v2 = trips_v.op.operands
    if chunk_v2 is not chunk:
        return None
    if not (isinstance(span_v, OpResult) and span_v.op.name == "arith.subi"):
        return None
    if span_v.op.operands[0] is not ub_ex or span_v.op.operands[1] is not lb:
        return None

    # -- body dataflow equivalence ----------------------------------------
    main_iv, rem_iv = main_body.args[0], rem_body.args[0]
    rem_ops = list(rem_body.ops)
    main_ops = list(main_body.ops)
    for op in rem_ops + main_ops:
        if op.regions:
            return None
        if op.name == "hls.unroll":
            declared = _attr_int(op.attributes.get("factor"))
            if declared is not None and declared != factor:
                return None
        elif not (
            op.name in ("memref.load", "memref.store", "scf.yield")
            or op.name.startswith(("arith.", "math.", "hls."))
        ):
            return None
    # Lane-order execution of shared loads is only equivalent to the
    # plain sequential loop when no store can invalidate a load another
    # lane reuses — require load/store buffer roots to be disjoint.
    for ops in (main_ops, rem_ops):
        store_roots = {
            id(root_memref(op.operands[1]))
            for op in ops
            if op.name == "memref.store"
        }
        for op in ops:
            if op.name == "memref.load":
                if id(root_memref(op.operands[0])) in store_roots:
                    return None
    rem_stores = [op for op in rem_ops if op.name == "memref.store"]
    main_stores = [op for op in main_ops if op.name == "memref.store"]
    if not rem_stores or len(main_stores) != factor * len(rem_stores):
        return None
    rem_op_ids = {id(op) for op in rem_ops}

    def lane_iv(m_val: SSAValue, k: int) -> bool:
        if k == 0 and m_val is main_iv:
            return True
        if not (isinstance(m_val, OpResult) and m_val.op.name == "arith.addi"):
            return False
        a, b = m_val.op.operands
        off = b if a is main_iv else (a if b is main_iv else None)
        if off is None:
            return False
        off_c = _const_int(off)
        if off_c is not None and step_c is not None:
            return off_c == k * step_c
        if isinstance(off, OpResult) and off.op.name == "arith.muli":
            x, y = off.op.operands
            return (x is step and _const_int(y) == k) or (
                y is step and _const_int(x) == k
            )
        return False

    def equiv(
        m_val: SSAValue,
        r_val: SSAValue,
        k: int,
        memo: dict[tuple[int, int], bool],
    ) -> bool:
        if r_val is rem_iv:
            return lane_iv(m_val, k)
        key = (id(m_val), id(r_val))
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(r_val, OpResult) and id(r_val.op) in rem_op_ids:
            r_op = r_val.op
            ok = False
            if isinstance(m_val, OpResult):
                m_op = m_val.op
                ok = (
                    m_op.name == r_op.name
                    and semantic_attributes(m_op.attributes)
                    == semantic_attributes(r_op.attributes)
                    and m_val.index == r_val.index
                    and m_val.type == r_val.type
                    and len(m_op.operands) == len(r_op.operands)
                    and not m_op.regions
                    and all(
                        equiv(mo, ro, k, memo)
                        for mo, ro in zip(m_op.operands, r_op.operands)
                    )
                )
        else:
            # loop-invariant: same SSA value, or value-equal constants
            # (cloning and CSE leave equal constants as distinct values)
            ok = m_val is r_val or (
                isinstance(m_val, OpResult)
                and isinstance(r_val, OpResult)
                and m_val.op.name == r_val.op.name == "arith.constant"
                and semantic_attributes(m_val.op.attributes)
                == semantic_attributes(r_val.op.attributes)
                and m_val.type == r_val.type
            )
        memo[key] = ok
        return ok

    width = len(rem_stores)
    for k in range(factor):
        memo: dict[tuple[int, int], bool] = {}
        lane = main_stores[k * width : (k + 1) * width]
        for m_store, r_store in zip(lane, rem_stores):
            if (
                len(m_store.operands) != len(r_store.operands)
                or semantic_attributes(m_store.attributes)
                != semantic_attributes(r_store.attributes)
            ):
                return None
            if not all(
                equiv(mo, ro, k, memo)
                for mo, ro in zip(m_store.operands, r_store.operands)
            ):
                return None
    return factor


def _nest_vector_plan(loop: Operation):
    """Classify a loop nest for whole-space evaluation.

    ``loop`` is a rank-n ``omp.loop_nest`` or an ``scf.for`` whose body
    perfectly nests further loops.  Returns ``(mode, plan, program,
    reason)`` where mode is ``"nest_elementwise"`` (dependence-free body,
    stores cover every dimension), ``"nest_reduction"`` (the innermost
    dimension folds into a memref accumulator whose subscripts are
    invariant along it) or None with a reasoned bail-out diagnostic.
    """
    from repro.transforms.loop_analysis import classify_index, root_memref

    root_body = loop.regions[0].block
    if loop.name == "omp.loop_nest":
        ivs = list(root_body.args)
    else:
        ivs = [root_body.args[0]]
    root_dims = len(ivs)

    # -- walk the perfect chain ------------------------------------------------
    chain: list[_ChainLevel] = []
    charge_specs: list[tuple[int, int]] = []
    observer_specs: list[tuple[int, Operation]] = []
    # non-loop body ops above the innermost, one entry per chain member
    extras_by_level: list[list[Operation]] = []
    body = root_body
    innermost = None
    while innermost is None:
        nested = [op for op in body.ops if op.name == "scf.for"]
        if not nested:
            innermost = body
            charge_specs.append((len(ivs), max(1, len(body.ops))))
            break
        stitch_factor = None
        if len(nested) == 2:
            stitch_factor = _match_unroll_pair(nested[0], nested[1])
        if len(nested) > 1 and stitch_factor is None:
            return None, None, None, "body contains multiple nested loops"
        if stitch_factor is not None:
            main_for, rem_for = nested
            rem_body = rem_for.regions[0].block
            if any(op.name == "scf.for" for op in rem_body.ops):
                return None, None, None, (
                    "stitched main/remainder pair is not innermost"
                )
            level_loops = (main_for, rem_for)
        else:
            inner_for = nested[0]
            if inner_for.results or len(inner_for.regions[0].blocks) != 1:
                return None, None, None, "nested loop carries iter_args"
            inner_body = inner_for.regions[0].block
            if len(inner_body.args) != 1:
                return None, None, None, "nested loop carries iter_args"
            level_loops = (inner_for,)
        level_extras: list[Operation] = []
        for op in body.ops:
            if op in level_loops:
                continue
            if op.regions:
                return None, None, None, "body has nested regions or unsupported ops"
            if op.name not in _SUPPORTED:
                return None, None, None, "body has nested regions or unsupported ops"
            if op.name == "memref.store":
                return None, None, None, "store outside the innermost loop body"
            if op.name not in _SKIPPED:
                level_extras.append(op)
        extras_by_level.append(level_extras)
        charge_specs.append((len(ivs), max(1, len(body.ops))))
        if stitch_factor is not None:
            # The proven pair is semantically one loop over
            # [main.lb, rem.ub, rem.step) running the remainder body;
            # steps/cycles still charge both loops via the stitch info.
            chain.append(_ChainLevel(
                bounds=(
                    main_for.operands[0],
                    rem_for.operands[1],
                    rem_for.operands[2],
                ),
                stitch=(
                    main_for,
                    rem_for,
                    max(1, len(main_for.regions[0].block.ops)),
                    max(1, len(rem_body.ops)),
                ),
            ))
            ivs.append(rem_body.args[0])
            innermost = rem_body
            break
        observer_specs.append((len(ivs), inner_for))
        chain.append(_ChainLevel(bounds=tuple(inner_for.operands[:3])))
        ivs.append(inner_body.args[0])
        body = inner_body

    rank = len(ivs)
    if rank < 2:
        return None, None, None, "nest has a single dimension"
    if not _body_is_vectorizable(innermost):
        return None, None, None, "body has nested regions or unsupported ops"

    # -- collect memory accesses over the whole nest ---------------------------
    extra_ops = [op for level in extras_by_level for op in level]
    loaded: set[int] = set()
    store_counts: dict[int, int] = {}
    stores = []
    loads = []
    for op in [*extra_ops, *innermost.ops]:
        if op.name == "memref.store":
            key = id(root_memref(op.operands[1]))
            store_counts[key] = store_counts.get(key, 0) + 1
            stores.append(op)
        elif op.name == "memref.load":
            loaded.add(id(root_memref(op.operands[0])))
            loads.append(op)

    # -- chain-loop bounds must be invariant (IV-independent prelude) ----------
    # One prelude per chain level: a level's ops are only pre-evaluated
    # at runtime when its containing body would actually execute under
    # the scalar walk (a faulting bound expression below a zero-trip
    # dim must stay unevaluated, exactly like the scalar tier).
    independent: set[SSAValue] = set()
    prelude_levels: list[tuple[Operation, ...]] = []
    for level_extras in extras_by_level:
        level_prelude: list[Operation] = []
        for op in level_extras:
            if not all(
                _defined_outside(v, root_body) or v in independent
                for v in op.operands
            ):
                continue  # varies with a nest IV: evaluated by the program
            if op.name == "memref.load" and id(
                root_memref(op.operands[0])
            ) in store_counts:
                continue  # value may change as the nest runs
            independent.update(op.results)
            level_prelude.append(op)
        prelude_levels.append(tuple(level_prelude))
    for level in chain:
        level_bounds = list(level.bounds)
        if level.stitch is not None:
            # the stitched runtime also reads both loops' own triples
            level_bounds += list(level.stitch[0].operands[:3])
            level_bounds += list(level.stitch[1].operands[:3])
        for bound in level_bounds:
            if not (
                _defined_outside(bound, root_body) or bound in independent
            ):
                return None, None, None, (
                    "nested loop bounds vary with an outer induction "
                    "variable"
                )

    def loads_are_affine(skip: frozenset[int]) -> str | None:
        # ``indirect`` is safe for loads: gathers cannot collide, and the
        # classification already proves the index array is never stored
        # anywhere in the nest.
        for op in loads:
            if id(op) in skip:
                continue
            for idx in op.operands[1:]:
                for iv in ivs:
                    if classify_index(idx, iv, root_body).kind not in (
                        "affine", "invariant", "indirect",
                    ):
                        return "load subscript is not affine/invariant/gather"
        return None

    program_ops = [*extra_ops, *innermost.ops]

    # -- innermost-dim reduction: P[f(outer ivs)] = P[...] (+) expr ------------
    reduction = _analyze_memref_reduction_body(innermost, ivs[-1])
    if reduction is not None:
        acc_root = root_memref(reduction.acc)
        covered: set[int] = set()
        for idx in reduction.indices:
            affine_dim: int | None = None
            for dim, iv in enumerate(ivs):
                pattern = classify_index(idx, iv, root_body)
                if pattern.kind == "affine" and pattern.parameter != 0:
                    if dim == rank - 1:
                        return None, None, None, (
                            "accumulator subscript varies along the "
                            "reduction dim"
                        )
                    if affine_dim is not None:
                        return None, None, None, (
                            "accumulator subscript couples two IVs"
                        )
                    affine_dim = dim
                elif pattern.kind != "invariant":
                    return None, None, None, (
                        "accumulator subscript is not affine/invariant"
                    )
            if affine_dim is not None:
                covered.add(affine_dim)
        if covered != set(range(rank - 1)):
            return None, None, None, (
                "accumulator subscripts do not cover the outer nest dims"
            )
        for op in loads:
            if id(op) in reduction.skip:
                continue
            if root_memref(op.operands[0]) is acc_root:
                return None, None, None, (
                    "accumulator read outside the combiner chain"
                )
        reason = loads_are_affine(reduction.skip)
        if reason is not None:
            return None, None, None, reason
        plan = _NestPlan(
            ivs=tuple(ivs),
            root_dims=root_dims,
            chain=tuple(chain),
            charge_specs=tuple(charge_specs),
            observer_specs=tuple(observer_specs),
            prelude=tuple(prelude_levels),
            reduction=reduction,
        )
        program = _compile_vector_body(program_ops, reduction.skip, ivs)
        return "nest_reduction", plan, program, None

    # -- elementwise / scatter: dependence-free, stores injective --------------
    if loaded & set(store_counts):
        return None, None, None, (
            "a buffer is both loaded and stored in the nest body"
        )
    if any(count > 1 for count in store_counts.values()):
        return None, None, None, "multiple stores to one buffer"
    proof_dims: list[tuple[int, ...]] = []
    needs_proof = False
    for op in stores:
        if len(op.operands) == 2:
            return None, None, None, (
                "rank-0 store hits the same cell every iteration"
            )
        used_ivs: set[int] = set()
        store_has_indirect = False
        for idx in op.operands[2:]:
            affine_iv: int | None = None
            dim_indirect = False
            for dim, iv in enumerate(ivs):
                pattern = classify_index(idx, iv, root_body)
                if pattern.kind == "affine" and pattern.parameter != 0:
                    if affine_iv is not None:
                        return None, None, None, (
                            "store subscript couples two IVs"
                        )
                    affine_iv = dim
                elif pattern.kind == "indirect":
                    dim_indirect = True
                elif pattern.kind != "invariant":
                    return None, None, None, (
                        "store subscript is not affine/invariant/gather"
                    )
            if dim_indirect:
                # varies through runtime index-array contents: no static
                # coverage credit, the runtime proof decides
                store_has_indirect = True
            elif affine_iv is not None:
                used_ivs.add(affine_iv)
        if used_ivs == set(range(rank)):
            # statically injective over the whole space — any extra
            # indirect dims cannot introduce collisions
            proof_dims.append(())
        elif store_has_indirect:
            # the PR 4 injectivity lattice, lifted to nest level: prove
            # the full subscript *tuple* injective over the flat space
            proof_dims.append(tuple(range(len(op.operands) - 2)))
            needs_proof = True
        else:
            return None, None, None, (
                "store subscripts do not cover every nest dim"
            )
    reason = loads_are_affine(frozenset())
    if reason is not None:
        return None, None, None, reason
    scatter = None
    skip: frozenset[int] = frozenset()
    if needs_proof:
        # defer *every* store so a failed proof leaves nothing mutated
        scatter = _NestScatter(
            stores=tuple(stores),
            proof_dims=tuple(proof_dims),
            skip=frozenset(id(op) for op in stores),
        )
        skip = scatter.skip
    plan = _NestPlan(
        ivs=tuple(ivs),
        root_dims=root_dims,
        chain=tuple(chain),
        charge_specs=tuple(charge_specs),
        observer_specs=tuple(observer_specs),
        prelude=tuple(prelude_levels),
        reduction=None,
        scatter=scatter,
    )
    program = _compile_vector_body(program_ops, skip, ivs)
    mode = "nest_scatter" if scatter is not None else "nest_elementwise"
    return mode, plan, program, None


def _classify_nest(loop: Operation) -> tuple:
    """Cached classification for rank>=2 ``omp.loop_nest`` ops."""
    key = id(loop)
    _analysis_cache = _cache_for(loop)
    cached = _analysis_cache.get(key)
    if cached is not None and cached[0] is loop:
        return cached
    mode, plan, program, reason = _nest_vector_plan(loop)
    if mode is None:
        logger.debug(
            "scalar bail-out: rank-%d omp.loop_nest not vectorized: %s",
            len(loop.regions[0].block.args),
            reason,
        )
    cached = (loop, mode, plan, program)
    _analysis_cache[key] = cached
    return cached


# ---------------------------------------------------------------------------
# Segmented (triangular / CSR) nests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SegmentedSpan:
    """Span flavour of ``nest_segmented``: a rank-1 elementwise loop
    whose bounds are runtime data (SGESL's triangular ``j = k+1, n``
    after hoisting).  Evaluation is the plain elementwise fast path with
    *no* minimum-trip-count floor — each outer iteration is one runtime
    segment, and the floor is what made the triangular tail a scalar
    cliff.  The plan only exists to carry the empty skip set through the
    generic body compile."""

    skip: frozenset[int] = frozenset()


@dataclass(frozen=True)
class _SegmentedNest:
    """Whole-space plan for an imperfect outer/inner pair whose inner
    trip count varies with the outer IV: ``prologue / inner reduction
    loop / epilogue`` with triangular (affine) or CSR (offset-array)
    inner bounds.

    Phase A (``row_program``) evaluates the prologue over the outer iv
    vector — per-row inner bounds, the accumulator init value, epilogue
    subscripts.  The flat space is built with prefix sums over the
    per-row trip counts; ``inner_program`` evaluates the reduction
    expression over it, and the fold runs per segment in iteration
    order (bit-exact f32).  Phase B (``epilogue_program``) then runs the
    epilogue per row with the accumulator readback preset to the folded
    per-row values.  Nothing is mutated until every runtime proof (step
    sign, monotone offsets, NaN hazard) has passed.

    ``needs_monotone`` names the bounds (``"lb"``/``"ub"``) classified
    as offset-array loads; those vectors are runtime-proved monotone
    non-decreasing (the CSR contract) with a reasoned bail otherwise.
    ``acc_shared`` is True when the accumulator cell is invariant across
    rows (SpMV's alloca scratch: re-initialised per row by the prologue,
    read back by the epilogue); False means the cell is affine in the
    outer IV (``y(k) += ...``) and folds write back per row.
    """

    inner_for: Operation
    outer_ops: int  # scalar step charge per outer iteration
    inner_ops: int  # scalar step charge per inner iteration
    bounds: tuple[SSAValue, SSAValue, SSAValue]  # inner lb / ub / step
    needs_monotone: tuple[str, ...]
    reduction: _MemrefReduction
    acc_shared: bool
    init_value: SSAValue | None  # prologue accumulator-init stored value
    readback: Operation | None  # epilogue accumulator load (preset)
    row_program: Any  # phase A over the outer IV
    inner_program: Any  # flat space [outer, inner]
    epilogue_program: Any  # phase B over the outer IV


def _segmented_nest_plan(loop: Operation):
    """Classify the segmented (imperfect) nest shape — an outer loop
    whose body is ``prologue / one inner reduction loop / epilogue``,
    the inner bounds affine in the outer IV or loaded from an offset
    array.  Returns ``(mode, plan, program, reason)`` like
    :func:`_nest_vector_plan`; all-None means the shape is something
    else entirely (no reasoned diagnostic)."""
    from repro.transforms.loop_analysis import (
        classify_index,
        index_values_equal,
        root_memref,
    )

    body = loop.regions[0].block
    if len(body.args) != 1 or loop.results:
        return None, None, None, None
    iv_o = body.args[0]
    inner_loops = [op for op in body.ops if op.name == "scf.for"]
    if len(inner_loops) != 1:
        return None, None, None, None
    inner_for = inner_loops[0]
    if inner_for.results or len(inner_for.regions[0].blocks) != 1:
        return None, None, None, "inner loop carries iter_args"
    inner_body = inner_for.regions[0].block
    if len(inner_body.args) != 1:
        return None, None, None, "inner loop carries iter_args"
    if any(op.name == "scf.for" for op in inner_body.ops):
        return None, None, None, None  # deeper nests: the perfect-chain path
    pos = body.ops.index(inner_for)
    prologue = list(body.ops[:pos])
    epilogue = list(body.ops[pos + 1 :])
    for op in (*prologue, *epilogue):
        if op.regions or op.name not in _SUPPORTED:
            return None, None, None, (
                "outer body has nested regions or unsupported ops"
            )
    reduction = _analyze_memref_reduction_body(inner_body, inner_body.args[0])
    if reduction is None:
        return None, None, None, (
            "inner body is not a memref-accumulator reduction"
        )
    acc_root = root_memref(reduction.acc)

    # -- inner bounds: affine in the outer IV, or monotone offset loads --------
    lb_v, ub_v, step_v = inner_for.operands[:3]
    needs_monotone: list[str] = []
    for which, bound in (("lb", lb_v), ("ub", ub_v)):
        kind = classify_index(bound, iv_o, body).kind
        if kind == "indirect":
            needs_monotone.append(which)
        elif kind not in ("affine", "invariant"):
            return None, None, None, (
                "inner loop bounds are neither affine in the outer IV nor "
                "loaded from an offset array"
            )
    if classify_index(step_v, iv_o, body).kind != "invariant":
        return None, None, None, "inner loop step varies with the outer IV"

    # -- accumulator cell must be resolvable per row ---------------------------
    prologue_defined = {r for op in prologue for r in op.results}

    def row_resolvable(v: SSAValue) -> bool:
        # the outer IV itself is the phase-A vector
        return v is iv_o or _defined_outside(v, body) or v in prologue_defined

    if not all(row_resolvable(idx) for idx in reduction.indices):
        return None, None, None, (
            "accumulator subscript is computed inside the inner loop body"
        )
    acc_shared = True
    for idx in reduction.indices:
        pattern = classify_index(idx, iv_o, body)
        if pattern.kind == "affine" and pattern.parameter != 0:
            acc_shared = False  # one cell per row: injective writeback
        elif pattern.kind != "invariant":
            return None, None, None, (
                "accumulator subscript is not affine/invariant in the "
                "outer IV"
            )

    # -- prologue: pure compute plus (at most) the accumulator init store ------
    init_store = None
    for op in prologue:
        if op.name == "memref.store":
            if (
                root_memref(op.operands[1]) is acc_root
                and len(op.operands) - 2 == len(reduction.indices)
                and all(
                    index_values_equal(a, b, body)
                    for a, b in zip(op.operands[2:], reduction.indices)
                )
            ):
                if init_store is not None:
                    return None, None, None, (
                        "two accumulator init stores in the prologue"
                    )
                init_store = op
            else:
                return None, None, None, (
                    "prologue stores to a non-accumulator buffer"
                )
    if acc_shared and init_store is None:
        # without a per-row re-init the rows chain sequentially through
        # the shared cell — that is one long fold, not a segmented nest
        return None, None, None, (
            "shared accumulator carries a value across outer iterations"
        )

    # -- epilogue: the accumulator readback + injective per-row stores ---------
    readback = None
    epi_store_roots: set[int] = set()
    for op in epilogue:
        if op.name == "memref.load" and root_memref(op.operands[0]) is acc_root:
            if not acc_shared:
                return None, None, None, (
                    "per-row accumulator is read back in the epilogue"
                )
            if readback is not None:
                return None, None, None, (
                    "accumulator read twice in the epilogue"
                )
            if len(op.operands) - 1 != len(reduction.indices) or not all(
                index_values_equal(a, b, body)
                for a, b in zip(op.operands[1:], reduction.indices)
            ):
                return None, None, None, (
                    "epilogue accumulator load subscript differs from the "
                    "reduction cell"
                )
            readback = op
        elif op.name == "memref.store":
            root = root_memref(op.operands[1])
            if root is acc_root:
                return None, None, None, "epilogue stores to the accumulator"
            if id(root) in epi_store_roots:
                return None, None, None, "two epilogue stores to one buffer"
            epi_store_roots.add(id(root))
            if len(op.operands) == 2:
                return None, None, None, (
                    "rank-0 epilogue store hits the same cell every row"
                )
            affine_dims = 0
            for idx in op.operands[2:]:
                pattern = classify_index(idx, iv_o, body)
                if pattern.kind == "affine" and pattern.parameter != 0:
                    affine_dims += 1
                elif pattern.kind != "invariant":
                    return None, None, None, (
                        "epilogue store subscript is not affine/invariant "
                        "in the outer IV"
                    )
            if affine_dims == 0:
                return None, None, None, (
                    "epilogue store hits the same cell every row"
                )

    # -- nothing read anywhere in the nest may also be written in it -----------
    store_roots = {id(acc_root)} | epi_store_roots
    nest_loads = (
        [op for op in prologue if op.name == "memref.load"]
        + [
            op
            for op in inner_body.ops
            if op.name == "memref.load" and id(op) not in reduction.skip
        ]
        + [
            op
            for op in epilogue
            if op.name == "memref.load" and op is not readback
        ]
    )
    for op in nest_loads:
        if id(root_memref(op.operands[0])) in store_roots:
            return None, None, None, (
                "a buffer read in the nest is also written in the nest"
            )

    row_skip = (
        frozenset({id(init_store)}) if init_store is not None else frozenset()
    )
    epi_skip = (
        frozenset({id(readback)}) if readback is not None else frozenset()
    )
    plan = _SegmentedNest(
        inner_for=inner_for,
        outer_ops=max(1, len(body.ops)),
        inner_ops=max(1, len(inner_body.ops)),
        bounds=(lb_v, ub_v, step_v),
        needs_monotone=tuple(needs_monotone),
        reduction=reduction,
        acc_shared=acc_shared,
        init_value=init_store.operands[0] if init_store is not None else None,
        readback=readback,
        row_program=_compile_vector_body(prologue, row_skip, [iv_o]),
        inner_program=_compile_vector_body(
            list(inner_body.ops),
            reduction.skip,
            [iv_o, inner_body.args[0]],
        ),
        epilogue_program=_compile_vector_body(epilogue, epi_skip, [iv_o]),
    )
    return "nest_segmented", plan, plan.row_program, None


def _run_segmented_span(interp, loop: Operation, env, lb, ub, step) -> bool:
    """The span flavour at runtime: the elementwise evaluation with no
    minimum-trip-count floor (one runtime segment per dispatch)."""
    _, _, _, program = _classify(loop)
    trips = _trip_count(lb, ub, step)
    if trips == 0:
        return True
    body = loop.regions[0].block
    ivs = np.arange(lb, lb + trips * step, step, dtype=np.int64)
    program.run(interp, env, ivs)
    interp.steps += trips * max(1, len(body.ops))
    return True


def _run_segmented(interp, loop: Operation, env, lb, ub, step, plan) -> bool:
    """Execute a classified segmented nest whole-space.  True when
    handled — observers and step accounting then exactly match the
    scalar nested walk; a False return has mutated nothing (stores and
    accumulator writebacks are all deferred past the runtime proofs), so
    the scalar walk can rerun safely."""
    trips_o = _trip_count(lb, ub, step)
    if trips_o == 0:
        return True  # the scalar walk would do nothing either
    i_vec = np.arange(lb, lb + trips_o * step, step, dtype=np.int64)
    frame_a = plan.row_program.run(interp, env, i_vec)

    def row_value(v: SSAValue):
        slot = plan.row_program.slots.get(v)
        if slot is not None:
            return frame_a[slot]
        return interp.get(env, v)

    inner_step = row_value(plan.bounds[2])
    if np.ndim(inner_step) != 0:
        return False  # step varies per row: outside the contract
    inner_step = int(inner_step)
    if inner_step <= 0:
        return False  # the scalar walk decides (zero-trip or diverging)
    lb_vec = np.broadcast_to(
        np.asarray(row_value(plan.bounds[0]), dtype=np.int64), (trips_o,)
    )
    ub_vec = np.broadcast_to(
        np.asarray(row_value(plan.bounds[1]), dtype=np.int64), (trips_o,)
    )
    for which, vec in (("lb", lb_vec), ("ub", ub_vec)):
        if which in plan.needs_monotone and trips_o > 1 and bool(
            np.any(np.diff(vec) < 0)
        ):
            logger.debug(
                "scalar bail-out: segmented nest %s offsets are not "
                "monotone non-decreasing (shuffled offset array); "
                "rerunning the loop on the scalar tier",
                which,
            )
            return False
    trips_vec = np.maximum(0, -((lb_vec - ub_vec) // inner_step))
    total = int(trips_vec.sum())
    if trips_o + total < _MIN_TRIPS:
        return False  # scalar wins on constant factors

    reduction = plan.reduction
    acc_arr = row_value(reduction.acc)
    dtype = acc_arr.dtype
    ufunc = _REDUCERS[reduction.op_name]
    cell_values = [row_value(i) for i in reduction.indices]
    cell = tuple(
        np.asarray(v) if np.ndim(v) else int(v) for v in cell_values
    )
    if plan.init_value is not None:
        init_rows = _as_vector(row_value(plan.init_value), trips_o, dtype)
    else:
        init_rows = _as_vector(
            acc_arr[cell] if cell else acc_arr[()], trips_o, dtype
        )

    folded_all = np.empty(trips_o, dtype=dtype)
    cum = np.cumsum(trips_vec)
    r0 = 0
    while r0 < trips_o:
        if total <= _MAX_NEST_ELEMS:
            r1 = trips_o
        else:
            # Bound peak memory: whole rows per chunk, so segments never
            # straddle a chunk boundary and every fold stays per-row.
            base = int(cum[r0 - 1]) if r0 else 0
            r1 = int(
                np.searchsorted(cum, base + _MAX_NEST_ELEMS, side="right")
            )
            r1 = min(max(r1, r0 + 1), trips_o)
        seg = trips_vec[r0:r1]
        rows_n = r1 - r0
        ctotal = int(seg.sum())
        init_chunk = init_rows[r0:r1]
        if ctotal == 0:
            folded_all[r0:r1] = init_chunk  # empty segments keep the init
            r0 = r1
            continue
        starts = np.cumsum(seg) - seg
        outer_flat = np.repeat(i_vec[r0:r1], seg)
        inner_flat = (
            np.repeat(lb_vec[r0:r1], seg)
            + (np.arange(ctotal, dtype=np.int64) - np.repeat(starts, seg))
            * inner_step
        )

        def resolve(v: SSAValue, _r0=r0, _r1=r1, _seg=seg):
            slot = plan.row_program.slots.get(v)
            if slot is not None:
                val = frame_a[slot]
                if np.ndim(val) == 0:
                    return val
                return np.repeat(val[_r0:_r1], _seg)
            return interp.get(env, v)

        frame_i = plan.inner_program.run_with(
            interp, env, [outer_flat, inner_flat], resolve
        )
        slot = plan.inner_program.slots.get(reduction.expr)
        expr_vec = _as_vector(
            frame_i[slot] if slot is not None else resolve(reduction.expr),
            ctotal,
            dtype,
        )
        if _minmax_nan_hazard(reduction.op_name, init_chunk, expr_vec):
            logger.debug(
                "scalar bail-out: %s reduction input contains NaN "
                "(np.minimum/np.maximum propagate NaN where the scalar "
                "engine's min/max ignore a NaN rhs); rerunning the loop "
                "on the scalar tier",
                reduction.op_name,
            )
            return False  # nothing mutated yet: all writes are deferred
        t0 = int(seg[0])
        if bool(np.all(seg == t0)):
            # equal rows: one ordered accumulate over an init column
            expr_mat = expr_vec.reshape(rows_n, t0)
            if ufunc is np.minimum or ufunc is np.maximum:
                folded = ufunc(init_chunk, ufunc.reduce(expr_mat, axis=1))
            else:
                seq = np.empty((rows_n, t0 + 1), dtype=dtype)
                seq[:, 0] = init_chunk
                seq[:, 1:] = expr_mat
                folded = ufunc.accumulate(seq, axis=1)[:, -1]
        else:
            # ragged rows: in-order per-cell combine over segment ids
            folded = init_chunk.astype(dtype, copy=True)
            seg_ids = np.repeat(np.arange(rows_n), seg)
            ufunc.at(folded, seg_ids, expr_vec)
        folded_all[r0:r1] = folded
        r0 = r1

    # -- every proof passed: run the epilogue and write the folds back ---------
    def resolve_epi(v: SSAValue):
        if plan.readback is not None and v is plan.readback.results[0]:
            return folded_all
        return row_value(v)

    plan.epilogue_program.run_with(interp, env, [i_vec], resolve_epi)
    if plan.acc_shared:
        # the scalar walk leaves the last row's fold in the shared cell
        if cell:
            acc_arr[cell] = folded_all[-1]
        else:
            acc_arr[()] = folded_all[-1]
    elif plan.init_value is not None:
        acc_arr[cell] = folded_all  # init store ran even for empty rows
    else:
        nz = trips_vec > 0
        if bool(nz.all()):
            acc_arr[cell] = folded_all
        else:
            # zero-trip rows never touched their cell in the scalar walk
            cell_nz = tuple(c[nz] if np.ndim(c) else c for c in cell)
            acc_arr[cell_nz] = folded_all[nz]

    interp.steps += trips_o * plan.outer_ops + total * plan.inner_ops
    observer = interp.loop_observer
    if observer is not None:
        # one observer call per distinct per-row trip count, batched —
        # modelled cycles are integer-valued floats, so sums stay exact
        uniq, counts = np.unique(trips_vec, return_counts=True)
        for t, c in zip(uniq, counts):
            _fire_observer(observer, plan.inner_for, int(t), int(c))
    return True


def _classify_guarded(interp, loop: Operation, classifier) -> tuple:
    """Classification that degrades instead of crashing.

    The classifiers are side-effect free, so an engine bug inside the
    vectorizer's analysis must never take down a run the scalar tier
    could complete: the crash is recorded as a ``vectorized -> scalar``
    degradation (once — the cache is poisoned with a no-mode entry) and
    the caller takes its normal scalar bail path.  The cache is consulted
    here too, so the poisoned entry short-circuits before the crashed
    classifier runs again.
    """
    cache = _cache_for(loop)
    cached = cache.get(id(loop))
    if cached is not None and cached[0] is loop:
        return cached
    try:
        return classifier(loop)
    except Exception as error:  # noqa: BLE001 - degrade, never crash
        cached = (loop, None, None, None)
        cache[id(loop)] = cached
        from repro.reliability.report import record_degradation

        record_degradation(
            interp,
            "vectorized",
            "scalar",
            f"{loop.name} classification",
            error,
        )
        return cached


def _accepts_count(observer) -> bool:
    """True when the observer accepts the batching ``count`` argument."""
    import inspect

    try:
        inspect.signature(observer).bind("op", "trips", "count")
    except TypeError:
        return False
    return True


def _fire_observer(observer, op: Operation, trips: int, count: int) -> None:
    """Fire the loop observer as often as the scalar walk would.

    Batched observers (``observer(op, trips, count)``) get one call;
    two-argument observers are called ``count`` times.  Arity is probed
    by signature, not by catching TypeError — an error raised *inside*
    the observer must propagate, not trigger duplicate calls.
    """
    if _accepts_count(observer):
        observer(op, trips, count)
    else:
        for _ in range(count):
            observer(op, trips)


def _flatten_space(dim_values: list) -> list:
    """Row-major per-dimension index vectors over the product space."""
    size = 1
    for values in dim_values:
        size *= len(values)
    vecs = []
    reps_after = size
    reps_before = 1
    for values in dim_values:
        t = len(values)
        reps_after //= t
        vecs.append(np.tile(np.repeat(values, reps_after), reps_before))
        reps_before *= t
    return vecs


def _run_nest(interp, loop: Operation, env, root_bounds, plan, program) -> bool:
    """Execute a classified nest whole-space.  ``root_bounds`` holds one
    ``(lb, exclusive ub, step)`` triple per root dimension; chain-member
    bounds are read from the environment (after the step-neutral prelude
    evaluation).  Returns True when handled — observers and step
    accounting then exactly match the scalar nested walk; False leaves
    no visible side effects, so the scalar walk can rerun safely.
    """
    trips = [_trip_count(lb, ub, step) for lb, ub, step in root_bounds]
    bounds = list(root_bounds)
    total = 1
    for t in trips:
        total *= t
    #: (dims, main_for, rem_for, main_ops, rem_ops, main_trips, rem_trips)
    stitch_runtime: list[tuple] = []
    for level, level_prelude in zip(plan.chain, plan.prelude):
        if total == 0:
            # The scalar walk never reaches this level: its bound
            # expressions must stay unevaluated (they may fault), and
            # every deeper charge/observer product is zero regardless.
            trips.append(0)
            continue
        if level_prelude:
            # Bounds of chain loops may depend on IV-independent body
            # ops (e.g. the cloned ``n`` load of an inner ``do k = 1,
            # n``); they are pure, so pre-evaluating them is
            # step-neutral and idempotent.
            before = interp.steps
            try:
                for op in level_prelude:
                    interp.run_op(op, env)
            finally:
                interp.steps = before
        lb = interp.get(env, level.bounds[0])
        ub = interp.get(env, level.bounds[1])
        step = interp.get(env, level.bounds[2])
        if step <= 0:
            return False
        if level.stitch is not None:
            main_for, rem_for, main_ops, rem_ops = level.stitch
            m_lb, m_ub, m_step = (
                interp.get(env, v) for v in main_for.operands[:3]
            )
            r_lb, r_ub, r_step = (
                interp.get(env, v) for v in rem_for.operands[:3]
            )
            if m_step <= 0:
                return False
            stitch_runtime.append((
                len(trips), main_for, rem_for, main_ops, rem_ops,
                _trip_count(m_lb, m_ub, m_step),
                _trip_count(r_lb, r_ub, r_step),
            ))
        bounds.append((lb, ub, step))
        trips.append(_trip_count(lb, ub, step))
        total *= trips[-1]
    if 0 < total < _MIN_TRIPS:
        return False  # scalar wins on constant factors

    def commit() -> bool:
        steps_charged = 0
        for dims, op_count in plan.charge_specs:
            executions = 1
            for t in trips[:dims]:
                executions *= t
            steps_charged += executions * op_count
        observer = interp.loop_observer
        for entry in stitch_runtime:
            dims, main_for, rem_for, main_ops, rem_ops, m_t, r_t = entry
            executions = 1
            for t in trips[:dims]:
                executions *= t
            steps_charged += executions * (m_t * main_ops + r_t * rem_ops)
            if observer is not None and executions:
                _fire_observer(observer, main_for, m_t, executions)
                _fire_observer(observer, rem_for, r_t, executions)
        interp.steps += steps_charged
        if observer is not None:
            for dims, chain_op in plan.observer_specs:
                count = 1
                for t in trips[:dims]:
                    count *= t
                if count:
                    _fire_observer(observer, chain_op, trips[dims], count)
        return True

    if total == 0:
        return commit()

    reduction = plan.reduction
    red_trips = trips[-1] if reduction is not None else 1
    dim_values = [
        np.arange(lb, lb + t * step, step, dtype=np.int64)
        for (lb, _, step), t in zip(bounds, trips)
    ]
    if total <= _MAX_NEST_ELEMS:
        outer_chunks = [dim_values[0]]
    else:
        # Bound peak memory: evaluate chunks of outermost-dim slices (the
        # whole-space temporaries scale with the *product* of the dims).
        inner_total = total // trips[0]
        per_chunk = max(1, _MAX_NEST_ELEMS // max(1, inner_total))
        outer_chunks = [
            dim_values[0][start : start + per_chunk]
            for start in range(0, trips[0], per_chunk)
        ]
        if reduction is not None and _REDUCERS[reduction.op_name] in (
            np.minimum, np.maximum,
        ):
            # Chunked evaluation commits chunk-by-chunk, but a NaN found
            # in a later chunk must abort *before* anything was stored —
            # stay scalar rather than risk a partial update.
            logger.debug(
                "scalar bail-out: min/max nest reduction exceeds the "
                "whole-space size bound (NaN check needs one pass); "
                "rerunning the loop on the scalar tier",
            )
            return False
    if plan.scatter is not None and len(outer_chunks) > 1:
        # Injectivity must hold over the *whole* space: chunked
        # evaluation commits chunk-by-chunk before later chunks are
        # proved, so oversized scatter nests stay scalar.
        logger.debug(
            "scalar bail-out: scatter nest exceeds the whole-space size "
            "bound (injectivity needs one pass); rerunning the loop on "
            "the scalar tier",
        )
        return False

    for chunk in outer_chunks:
        vecs = _flatten_space([chunk, *dim_values[1:]])
        frame = program.run(interp, env, vecs)
        if plan.scatter is not None:
            if not _apply_nest_scatter(
                interp, env, plan.scatter, program, frame, len(vecs[0])
            ):
                return False  # failed proof: nothing was mutated
            continue
        if reduction is None:
            continue  # stores were applied by the compiled program

        def value(v: SSAValue, frame=frame):  # bind this chunk's frame
            slot = program.slots.get(v)
            if slot is not None:
                return frame[slot]
            return interp.get(env, v)

        array = value(reduction.acc)
        dtype = array.dtype
        chunk_total = len(vecs[0])
        outer_n = chunk_total // red_trips
        vec = _as_vector(value(reduction.expr), chunk_total, dtype)
        if _minmax_nan_hazard(reduction.op_name, array, vec):
            logger.debug(
                "scalar bail-out: %s reduction input contains NaN "
                "(np.minimum/np.maximum propagate NaN where the scalar "
                "engine's min/max ignore a NaN rhs); rerunning the loop "
                "on the scalar tier",
                reduction.op_name,
            )
            return False  # single chunk (see above): nothing stored yet
        # Subscripts are invariant along the reduction dim (the fastest-
        # varying axis), so one representative per outer point suffices.
        cell = tuple(
            np.asarray(i)[::red_trips] if np.ndim(i) else int(i)
            for i in (value(i) for i in reduction.indices)
        )
        init = array[cell]
        expr_mat = vec.reshape(outer_n, red_trips)
        ufunc = _REDUCERS[reduction.op_name]
        if ufunc is np.minimum or ufunc is np.maximum:
            folded = ufunc(init, ufunc.reduce(expr_mat, axis=1))
        else:
            # Ordered fold per accumulator cell: bit-exact f32, matching
            # the scalar walk's left-to-right combine order.
            seq = np.empty((outer_n, red_trips + 1), dtype=dtype)
            seq[:, 0] = init
            seq[:, 1:] = expr_mat
            folded = ufunc.accumulate(seq, axis=1)[:, -1]
        array[cell] = folded

    return commit()


def try_vectorized_nest(
    interp, loop: Operation, env, lb: int, ub: int, step: int
) -> bool:
    """Whole-space evaluation of a perfect ``scf.for`` nest rooted at
    ``loop``.  Returns True when handled; the scalar walk must run
    otherwise."""
    _, mode, plan, program = _classify_guarded(interp, loop, _classify)
    if mode == "nest_segmented":
        if isinstance(plan, _SegmentedSpan):
            return _run_segmented_span(interp, loop, env, lb, ub, step)
        return _run_segmented(interp, loop, env, lb, ub, step, plan)
    if mode not in ("nest_elementwise", "nest_reduction", "nest_scatter"):
        return False
    return _run_nest(interp, loop, env, [(lb, ub, step)], plan, program)


def try_vectorized_loop_nest(
    interp, loop: Operation, env, lbs, ubs, steps
) -> bool:
    """Whole-iteration-space evaluation of a rank-n ``omp.loop_nest``
    (elementwise, or folding an innermost-dim reduction).

    ``ubs`` are already exclusive.  Returns True when handled; the
    scalar nested walk must run otherwise.  Step accounting matches the
    scalar walk exactly (one step per body op per innermost iteration).
    """
    _, mode, plan, program = _classify_guarded(interp, loop, _classify_nest)
    if mode is None:
        return False
    return _run_nest(
        interp, loop, env, list(zip(lbs, ubs, steps)), plan, program
    )


def loop_vector_mode(loop: Operation) -> tuple[str | None, Any]:
    """Classify ``loop`` once: ``("elementwise", None)``,
    ``("iter_reduction", plan)``, ``("memref_reduction", plan)``,
    ``("scatter_store", plan)``, ``("nest_elementwise", plan)`` /
    ``("nest_reduction", plan)`` / ``("nest_scatter", plan)`` for
    perfect loop-nest chain roots, ``("nest_segmented", plan)`` for
    runtime-bounded span loops and triangular/CSR outer-inner pairs, or
    ``(None, None)``.  Cached per loop op."""
    cached = _classify(loop)
    return cached[1], cached[2]


def invalidate_analysis(root: Operation) -> None:
    """Drop cached loop classifications under ``root`` (called by the
    pass manager / rewrite driver after in-place mutation)."""
    cache = _cache_for(root)
    for op in root.walk():
        cache.pop(id(op), None)


# ---------------------------------------------------------------------------
# Elementwise body evaluation (shared by all fast paths)
# ---------------------------------------------------------------------------
#
# The body is translated *once per loop op* into a small slot-frame
# program (closures over integer slot indices, constants prefilled in the
# template) and cached with the loop classification, so per-execution
# cost is just the NumPy work plus one closure call per body op.


class _VectorProgram:
    """Compiled whole-iteration-space evaluator for one loop body.

    Frame slot 0 holds the instruction tuple itself, so a run needs only
    one template copy plus the outer-value fetches.  ``iv_slots`` holds
    one slot per induction variable (rank-n ``omp.loop_nest`` bodies have
    several); ``run`` accepts a single iv vector for rank 1 or a sequence
    of per-dimension vectors otherwise.
    """

    __slots__ = ("template", "slots", "iv_slots", "outer")

    def __init__(self, template, slots, iv_slots, outer):
        self.template = template
        self.slots = slots
        self.iv_slots = iv_slots
        #: loop-invariant values fetched from the interpreter env per run
        self.outer = outer

    def run(self, interp, env, ivs) -> list:
        frame = self.template.copy()
        if len(self.iv_slots) == 1:
            frame[self.iv_slots[0]] = ivs
        else:
            for slot, vec in zip(self.iv_slots, ivs):
                frame[slot] = vec
        get = interp.get
        for slot, value in self.outer:
            frame[slot] = get(env, value)
        for instr in frame[0]:
            instr(frame)
        return frame

    def run_with(self, interp, env, ivs, resolve) -> list:
        """Like :meth:`run`, but every outer-value fetch goes through
        ``resolve`` — the segmented nest runner uses this to feed
        per-row phase values (prologue results repeated per segment, the
        folded accumulator preset for the epilogue readback) where
        :meth:`run` would consult the interpreter environment.  ``ivs``
        is always a sequence with one vector per iv slot."""
        frame = self.template.copy()
        for slot, vec in zip(self.iv_slots, ivs):
            frame[slot] = vec
        for slot, value in self.outer:
            frame[slot] = resolve(value)
        for instr in frame[0]:
            instr(frame)
        return frame


class _VectorCompiler:
    def __init__(self):
        self.slots: dict[SSAValue, int] = {}
        #: slot 0 holds the instruction tuple itself (frame is self-contained)
        self.template: list = [None]
        self.outer: list[tuple[int, SSAValue]] = []
        self.instrs: list = []

    def dst(self, value: SSAValue) -> int:
        slot = self.slots.get(value)
        if slot is None:
            slot = self.slots[value] = len(self.template)
            self.template.append(None)
        return slot

    def src(self, value: SSAValue) -> int:
        slot = self.slots.get(value)
        if slot is None:
            slot = self.dst(value)
            self.outer.append((slot, value))
        return slot


def _compile_vector_body(
    ops, skip: frozenset[int], ivs
) -> _VectorProgram:
    """Translate the (already validated) op sequence into a vector
    program.  ``ivs`` holds one induction-variable value per nest
    dimension (rank-n nests gather them from several blocks)."""
    from repro.ir.attributes import FloatAttr, IntegerAttr, StringAttr
    from repro.ir.types import FloatType

    ctx = _VectorCompiler()
    iv_slots = tuple(ctx.dst(iv) for iv in ivs)

    for op in ops:
        name = op.name
        if name in _SKIPPED or id(op) in skip:
            continue
        if name == "arith.constant":
            attr = op.attributes["value"]
            if isinstance(attr, IntegerAttr):
                ctx.template[ctx.dst(op.results[0])] = attr.value
            elif isinstance(attr, FloatAttr):
                ctx.template[ctx.dst(op.results[0])] = (
                    np.float32(attr.value) if attr.width == 32 else attr.value
                )
            continue
        if name in _BINOPS or name in ("arith.divsi", "arith.remsi",
                                       "arith.cmpi", "arith.cmpf"):
            if name in _BINOPS:
                fn = _BINOPS[name]
            elif name == "arith.divsi":
                fn = _trunc_divide
            elif name == "arith.remsi":
                fn = np.fmod  # trunc-style remainder, like math.fmod
            else:
                predicate = op.attributes["predicate"]
                assert isinstance(predicate, StringAttr)
                fn = _CMPS[predicate.value]
            a, b = ctx.src(op.operands[0]), ctx.src(op.operands[1])
            r = ctx.dst(op.results[0])

            def instr(frame, _fn=fn, _a=a, _b=b, _r=r):
                frame[_r] = _fn(frame[_a], frame[_b])
            ctx.instrs.append(instr)
            continue
        if name == "arith.select":
            c, t, f = (ctx.src(o) for o in op.operands)
            r = ctx.dst(op.results[0])

            def instr(frame, _c=c, _t=t, _f=f, _r=r):
                frame[_r] = np.where(frame[_c], frame[_t], frame[_f])
            ctx.instrs.append(instr)
            continue
        if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            # width-preserving in the reference interpreter: alias the slot
            ctx.slots[op.results[0]] = ctx.src(op.operands[0])
            continue
        if name in ("arith.sitofp", "arith.fptosi", "arith.extf",
                    "arith.truncf"):
            if name == "arith.sitofp":
                ty = op.results[0].type
                dtype = (
                    np.float32
                    if isinstance(ty, FloatType) and ty.width == 32
                    else np.float64
                )
            elif name == "arith.fptosi":
                dtype = np.int64
            elif name == "arith.extf":
                dtype = np.float64
            else:
                dtype = np.float32
            s = ctx.src(op.operands[0])
            r = ctx.dst(op.results[0])

            def instr(frame, _s=s, _r=r, _dtype=dtype):
                frame[_r] = np.asarray(frame[_s]).astype(_dtype)
            ctx.instrs.append(instr)
            continue
        if name in _MATH:
            fn = _MATH[name]
            s = ctx.src(op.operands[0])
            r = ctx.dst(op.results[0])

            def instr(frame, _fn=fn, _s=s, _r=r):
                frame[_r] = _fn(frame[_s])
            ctx.instrs.append(instr)
            continue
        if name == "memref.load":
            m = ctx.src(op.operands[0])
            idx = tuple(ctx.src(i) for i in op.operands[1:])
            r = ctx.dst(op.results[0])
            if not idx:
                def instr(frame, _m=m, _r=r):
                    frame[_r] = frame[_m][()]
            elif len(idx) == 1:
                def instr(frame, _m=m, _i=idx[0], _r=r):
                    frame[_r] = frame[_m][frame[_i]]
            else:
                def instr(frame, _m=m, _idx=idx, _r=r):
                    frame[_r] = frame[_m][tuple(frame[i] for i in _idx)]
            ctx.instrs.append(instr)
            continue
        if name == "memref.store":
            v = ctx.src(op.operands[0])
            m = ctx.src(op.operands[1])
            idx = tuple(ctx.src(i) for i in op.operands[2:])
            if len(idx) == 1:
                def instr(frame, _v=v, _m=m, _i=idx[0]):
                    frame[_m][frame[_i]] = frame[_v]
            else:
                def instr(frame, _v=v, _m=m, _idx=idx):
                    frame[_m][tuple(frame[i] for i in _idx)] = frame[_v]
            ctx.instrs.append(instr)
            continue
        raise AssertionError(f"vectorizer admitted unsupported op {name}")

    ctx.template[0] = tuple(ctx.instrs)
    return _VectorProgram(ctx.template, ctx.slots, iv_slots, tuple(ctx.outer))


def _trip_count(lb, ub, step) -> int:
    return max(0, -(-(ub - lb) // step)) if step > 0 else 0


# ---------------------------------------------------------------------------
# Elementwise fast path
# ---------------------------------------------------------------------------


def _prove_injective(vec: np.ndarray) -> str | None:
    """Runtime tiers of the injectivity-proof lattice (see the module
    docstring): ``monotone`` (O(n)) before ``unique`` (O(n log n));
    None when the vector has duplicates."""
    if vec.size <= 1:
        return "trivial"
    deltas = np.diff(vec)
    if bool(np.all(deltas > 0)) or bool(np.all(deltas < 0)):
        return "monotone"
    if np.unique(vec).size == vec.size:
        return "unique"
    return None


def _prove_injective_tuple(columns, total: int) -> str | None:
    """The injectivity lattice lifted to a subscript *tuple* over the
    flattened nest space: a single varying column uses the rank-1 tiers
    (monotone before unique); several columns are lexsorted together and
    proved duplicate-free by adjacent comparison (O(n log n))."""
    arrays = [np.broadcast_to(np.asarray(c), (total,)) for c in columns]
    if total <= 1:
        return "trivial"
    if len(arrays) == 1:
        return _prove_injective(arrays[0])
    order = np.lexsort(arrays)
    dup = np.ones(total - 1, dtype=bool)
    for a in arrays:
        sorted_col = a[order]
        dup &= sorted_col[1:] == sorted_col[:-1]
    return None if bool(dup.any()) else "tuple-unique"


def _apply_nest_scatter(
    interp, env, scatter: _NestScatter, program, frame, total: int
) -> bool:
    """Prove every deferred nest store injective over the flat space,
    then apply them in op order.  False (nothing mutated — all stores
    were skipped from the compiled program) means the scalar walk must
    rerun."""

    def value(v: SSAValue):
        slot = program.slots.get(v)
        if slot is not None:
            return frame[slot]
        return interp.get(env, v)

    resolved = []
    for store, dims_to_prove in zip(scatter.stores, scatter.proof_dims):
        indices = [value(i) for i in store.operands[2:]]
        if dims_to_prove:
            proof = _prove_injective_tuple(
                [indices[d] for d in dims_to_prove], total
            )
            if proof is None:
                logger.debug(
                    "scalar bail-out: nest scatter store failed the "
                    "injectivity proof (subscript tuple has duplicate "
                    "entries over the flattened space); rerunning the "
                    "loop on the scalar tier",
                )
                return False
        resolved.append((store, indices))
    for store, indices in resolved:
        array = value(store.operands[1])
        key = tuple(
            np.asarray(i) if np.ndim(i) else int(i) for i in indices
        )
        array[key if len(key) > 1 else key[0]] = value(store.operands[0])
    return True


def try_vectorized_loop(
    interp, loop: Operation, env, lb: int, ub: int, step: int
) -> bool:
    """Execute the loop vectorized if provably safe.  Returns True when
    handled (the scalar path must run otherwise)."""
    _, mode, plan, program = _classify_guarded(interp, loop, _classify)
    if mode not in ("elementwise", "scatter_store"):
        return False
    trips = _trip_count(lb, ub, step)
    if trips == 0:
        return True
    if trips < _MIN_TRIPS:
        return False  # scalar is cheaper for short loops
    body = loop.regions[0].block
    ivs = np.arange(lb, lb + trips * step, step, dtype=np.int64)
    frame = program.run(interp, env, ivs)

    if mode == "scatter_store":
        # Stores were deferred (skipped from the compiled body), so the
        # evaluation above mutated nothing: prove every store's subscript
        # injective *before* applying any of them, and fall back to the
        # scalar walk cleanly when a proof fails.
        def value(v: SSAValue):
            slot = program.slots.get(v)
            if slot is not None:
                return frame[slot]
            return interp.get(env, v)

        resolved = []
        for store, proof_dims in zip(plan.stores, plan.proof_dims):
            indices = [value(i) for i in store.operands[2:]]
            proof = "affine" if not proof_dims else None
            for dim in proof_dims:
                proof = _prove_injective(np.asarray(indices[dim]))
                if proof is not None:
                    break
            if proof is None:
                logger.debug(
                    "scalar bail-out: scatter store failed the "
                    "injectivity proof (index vector has duplicate "
                    "entries; neither monotone nor unique); rerunning "
                    "the loop on the scalar tier",
                )
                return False
            resolved.append((store, indices))
        for store, indices in resolved:
            array = value(store.operands[1])
            key = tuple(
                np.asarray(i) if np.ndim(i) else int(i) for i in indices
            )
            array[key if len(key) > 1 else key[0]] = value(store.operands[0])

    # Account interpreter steps as if the loop ran scalar, so CPU-baseline
    # time models are independent of this fast path.
    interp.steps += trips * max(1, len(body.ops))
    return True


# ---------------------------------------------------------------------------
# Reduction fast paths
# ---------------------------------------------------------------------------


def _dtype_for(ty) -> np.dtype:
    from repro.ir.types import FloatType

    if isinstance(ty, FloatType):
        return np.dtype(np.float32 if ty.width == 32 else np.float64)
    return np.dtype(np.int64)


def _as_vector(value, trips: int, dtype) -> np.ndarray:
    vec = np.asarray(value)
    if vec.ndim == 0:
        return np.full(trips, vec[()], dtype=dtype)
    return vec.astype(dtype, copy=False)


def _minmax_nan_hazard(op_name: str, init, vec: np.ndarray) -> bool:
    """NaNs make ``np.minimum``/``np.maximum`` diverge from the scalar
    engine's Python ``min``/``max`` (which ignore a NaN rhs); those
    inputs must take the scalar path."""
    ufunc = _REDUCERS[op_name]
    if ufunc is not np.minimum and ufunc is not np.maximum:
        return False
    if vec.dtype.kind != "f":
        return False
    # init is a scalar for iter_args reductions and the whole accumulator
    # array for the memref form
    return bool(np.isnan(vec).any()) or bool(np.isnan(init).any())


def _reduce_chain(op_name: str, init, vec: np.ndarray, dtype) -> Any:
    """Fold ``init ⊕ vec[0] ⊕ vec[1] ⊕ ...`` with the scalar engine's
    rounding order (ordered accumulate for add/mul)."""
    ufunc = _REDUCERS[op_name]
    if ufunc is np.minimum or ufunc is np.maximum:
        partial = ufunc.reduce(vec)
        return ufunc(np.asarray(init).astype(dtype, copy=False)[()], partial)
    seq = np.empty(len(vec) + 1, dtype=dtype)
    seq[0] = init
    seq[1:] = vec
    return ufunc.accumulate(seq)[-1]


def _to_python(value, ty):
    from repro.ir.types import FloatType

    if isinstance(ty, FloatType):
        return float(value)
    return int(value)


def try_vectorized_reduction(
    interp, loop: Operation, env, lb: int, ub: int, step: int
) -> list | None:
    """Execute a recognised reduction loop vectorized.

    Returns the loop's final result values when handled (``[]`` for
    memref-accumulator loops, which have no results); None means the
    scalar path must run.
    """
    _, mode, plan, program = _classify_guarded(interp, loop, _classify)
    if mode not in ("iter_reduction", "memref_reduction"):
        return None
    trips = _trip_count(lb, ub, step)
    if trips < _MIN_TRIPS:
        return None
    body = loop.regions[0].block
    ivs = np.arange(lb, lb + trips * step, step, dtype=np.int64)
    frame = program.run(interp, env, ivs)

    def value(v: SSAValue):
        slot = program.slots.get(v)
        if slot is not None:
            return frame[slot]
        return interp.get(env, v)

    if mode == "iter_reduction":
        finals = []
        for op_name, expr, position in plan.combiners:
            result_type = loop.results[position].type
            dtype = _dtype_for(result_type)
            init = interp.get(env, loop.operands[3 + position])
            vec = _as_vector(value(expr), trips, dtype)
            if _minmax_nan_hazard(op_name, init, vec):
                logger.debug(
                    "scalar bail-out: %s reduction input contains NaN "
                    "(np.minimum/np.maximum propagate NaN where the "
                    "scalar engine's min/max ignore a NaN rhs); "
                    "rerunning the loop on the scalar tier",
                    op_name,
                )
                return None  # evaluation was side-effect free: rerun scalar
            reduced = _reduce_chain(op_name, init, vec, dtype)
            finals.append(_to_python(reduced, result_type))
        interp.steps += trips * max(1, len(body.ops))
        return finals

    array = value(plan.acc)
    dtype = array.dtype
    index_values = [value(i) for i in plan.indices]
    vec = _as_vector(value(plan.expr), trips, dtype)
    if _minmax_nan_hazard(plan.op_name, array, vec):
        logger.debug(
            "scalar bail-out: %s reduction input contains NaN "
            "(np.minimum/np.maximum propagate NaN where the scalar "
            "engine's min/max ignore a NaN rhs); rerunning the loop on "
            "the scalar tier",
            plan.op_name,
        )
        return None  # the accumulator is untouched so far: rerun scalar
    if all(np.ndim(i) == 0 for i in index_values):
        cell = tuple(int(i) for i in index_values)
        init = array[cell] if cell else array[()]
        reduced = _reduce_chain(plan.op_name, init, vec, dtype)
        if cell:
            array[cell] = reduced
        else:
            array[()] = reduced
    else:
        indices = tuple(
            np.asarray(i) if np.ndim(i) else int(i) for i in index_values
        )
        ufunc = _REDUCERS[plan.op_name]
        ufunc.at(array, indices if len(indices) > 1 else indices[0], vec)
    interp.steps += trips * max(1, len(body.ops))
    return []

"""Vectorized loop execution for the interpreter.

Interpreting multi-million-trip loops op-by-op in Python is prohibitively
slow, so loops that are provably *dependence-free and elementwise* are
executed with NumPy over the whole iteration space at once:

* every memory subscript must be affine in the induction variable with a
  non-zero stride (injective — no scatter collisions), or loop-invariant
  for loads;
* the body must be straight-line (no nested regions) and consist of
  elementwise arith/math/memref ops;
* :func:`repro.transforms.loop_analysis.loop_carried_dependences` must
  find nothing (reductions and recurrences take the scalar path).

Per-element float32 semantics are identical to the scalar interpreter —
NumPy applies the same operation per lane; no reassociation occurs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ir.core import Block, Operation, SSAValue

#: ops that are safe no-ops inside a vectorized body
_SKIPPED = {"hls.pipeline", "hls.unroll", "scf.yield", "omp.yield"}

_BINOPS = {
    "arith.addi": np.add, "arith.subi": np.subtract,
    "arith.muli": np.multiply,
    "arith.addf": np.add, "arith.subf": np.subtract,
    "arith.mulf": np.multiply, "arith.divf": np.divide,
    "arith.andi": np.bitwise_and, "arith.ori": np.bitwise_or,
    "arith.xori": np.bitwise_xor,
    "arith.minimumf": np.minimum, "arith.maximumf": np.maximum,
    "arith.minsi": np.minimum, "arith.maxsi": np.maximum,
}
_CMPS = {
    "eq": np.equal, "ne": np.not_equal,
    "slt": np.less, "sle": np.less_equal,
    "sgt": np.greater, "sge": np.greater_equal,
    "olt": np.less, "ole": np.less_equal,
    "ogt": np.greater, "oge": np.greater_equal,
}
_MATH = {
    "math.sqrt": np.sqrt, "math.absf": np.abs, "math.exp": np.exp,
    "math.log": np.log, "math.sin": np.sin, "math.cos": np.cos,
}

_SUPPORTED = (
    set(_BINOPS)
    | set(_MATH)
    | _SKIPPED
    | {
        "arith.constant", "arith.cmpi", "arith.cmpf", "arith.select",
        "arith.index_cast", "arith.extsi", "arith.trunci",
        "arith.sitofp", "arith.fptosi", "arith.extf", "arith.truncf",
        "arith.divsi", "arith.remsi",
        "memref.load", "memref.store",
    }
)


def _body_is_vectorizable(body: Block) -> bool:
    for op in body.ops:
        if op.regions:
            return False
        if op.name not in _SUPPORTED:
            return False
    return True


def _loop_is_vectorizable(loop: Operation) -> bool:
    from repro.transforms.loop_analysis import (
        classify_index,
        loop_carried_dependences,
    )

    body = loop.regions[0].block
    if len(body.args) != 1 or not _body_is_vectorizable(body):
        return False
    if loop_carried_dependences(loop):
        return False
    iv = body.args[0]
    # All store subscripts must be injective (affine, non-zero stride).
    for op in body.ops:
        if op.name == "memref.store":
            for idx in op.operands[2:]:
                pattern = classify_index(idx, iv, body)
                if pattern.kind != "affine" or pattern.parameter == 0:
                    return False
        elif op.name == "memref.load":
            for idx in op.operands[1:]:
                if classify_index(idx, iv, body).kind not in ("affine", "invariant"):
                    return False
    return True


# Keyed by id(); the op itself is kept in the value so the id cannot be
# recycled by the allocator while the cache entry lives.
_vectorizable_cache: dict[int, tuple[Operation, bool]] = {}


def try_vectorized_loop(
    interp, loop: Operation, env: dict, lb: int, ub: int, step: int
) -> bool:
    """Execute the loop vectorized if provably safe.  Returns True when
    handled (the scalar path must run otherwise)."""
    key = id(loop)
    cached = _vectorizable_cache.get(key)
    if cached is None or cached[0] is not loop:
        cached = (loop, _loop_is_vectorizable(loop))
        _vectorizable_cache[key] = cached
    if not cached[1]:
        return False
    trips = max(0, -(-(ub - lb) // step)) if step > 0 else 0
    if trips == 0:
        return True
    if trips < 64:
        return False  # scalar is cheaper for short loops
    body = loop.regions[0].block
    ivs = np.arange(lb, lb + trips * step, step, dtype=np.int64)
    venv: dict[SSAValue, Any] = {body.args[0]: ivs}

    def value(v: SSAValue) -> Any:
        if v in venv:
            return venv[v]
        return interp.get(env, v)  # loop-invariant outer value

    from repro.ir.attributes import FloatAttr, IntegerAttr, StringAttr

    for op in body.ops:
        name = op.name
        if name in _SKIPPED:
            continue
        if name == "arith.constant":
            attr = op.attributes["value"]
            if isinstance(attr, IntegerAttr):
                venv[op.results[0]] = attr.value
            elif isinstance(attr, FloatAttr):
                venv[op.results[0]] = (
                    np.float32(attr.value) if attr.width == 32 else attr.value
                )
            continue
        if name in _BINOPS:
            venv[op.results[0]] = _BINOPS[name](
                value(op.operands[0]), value(op.operands[1])
            )
            continue
        if name == "arith.divsi":
            lhs, rhs = value(op.operands[0]), value(op.operands[1])
            quotient = np.floor_divide(lhs, rhs)
            venv[op.results[0]] = quotient
            continue
        if name == "arith.remsi":
            venv[op.results[0]] = np.remainder(
                value(op.operands[0]), value(op.operands[1])
            )
            continue
        if name in ("arith.cmpi", "arith.cmpf"):
            predicate = op.attributes["predicate"]
            assert isinstance(predicate, StringAttr)
            venv[op.results[0]] = _CMPS[predicate.value](
                value(op.operands[0]), value(op.operands[1])
            )
            continue
        if name == "arith.select":
            venv[op.results[0]] = np.where(
                value(op.operands[0]),
                value(op.operands[1]),
                value(op.operands[2]),
            )
            continue
        if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            venv[op.results[0]] = value(op.operands[0])
            continue
        if name == "arith.sitofp":
            from repro.ir.types import FloatType

            ty = op.results[0].type
            dtype = np.float32 if isinstance(ty, FloatType) and ty.width == 32 else np.float64
            venv[op.results[0]] = np.asarray(value(op.operands[0])).astype(dtype)
            continue
        if name == "arith.fptosi":
            venv[op.results[0]] = np.asarray(value(op.operands[0])).astype(np.int64)
            continue
        if name == "arith.extf":
            venv[op.results[0]] = np.asarray(value(op.operands[0])).astype(np.float64)
            continue
        if name == "arith.truncf":
            venv[op.results[0]] = np.asarray(value(op.operands[0])).astype(np.float32)
            continue
        if name in _MATH:
            venv[op.results[0]] = _MATH[name](value(op.operands[0]))
            continue
        if name == "memref.load":
            array = value(op.operands[0])
            indices = [value(i) for i in op.operands[1:]]
            if not indices:
                venv[op.results[0]] = array[()]
            else:
                venv[op.results[0]] = array[tuple(indices)]
            continue
        if name == "memref.store":
            stored = value(op.operands[0])
            array = value(op.operands[1])
            indices = [value(i) for i in op.operands[2:]]
            array[tuple(indices)] = stored
            continue
        raise AssertionError(f"vectorizer admitted unsupported op {name}")

    # Account interpreter steps as if the loop ran scalar, so CPU-baseline
    # time models are independent of this fast path.
    interp.steps += trips * max(1, len(body.ops))
    return True

"""Insertion-point based IR builder.

A :class:`Builder` tracks where the next operation is inserted.  It is the
standard way frontend lowerings and transforms create IR::

    builder = Builder.at_end(block)
    c0 = builder.insert(arith.Constant.index(0)).results[0]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

from repro.ir.attributes import IntegerAttr
from repro.ir.core import LOC_ATTR, Block, IRError, Operation, Region, SSAValue

OpT = TypeVar("OpT", bound=Operation)


@dataclass
class InsertPoint:
    """A position inside a block: before ``anchor`` or at the block's end."""

    block: Block
    anchor: Operation | None = None  # insert before this op; None = at end

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block, None)

    @staticmethod
    def at_start(block: Block) -> "InsertPoint":
        return InsertPoint(block, block.first_op)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        return InsertPoint(op.parent, op)

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        idx = op.parent.index_of(op)
        ops = op.parent.ops
        anchor = ops[idx + 1] if idx + 1 < len(ops) else None
        return InsertPoint(op.parent, anchor)


class Builder:
    """Inserts operations at a movable insertion point.

    When :attr:`loc` is set to a positive source line, every inserted op
    that does not already carry a ``loc`` attribute is stamped with it —
    the frontend lowering sets this at each statement/expression dispatch
    so diagnostics can point at the originating Fortran line.
    """

    def __init__(self, insert_point: InsertPoint):
        self.insert_point = insert_point
        self.loc: int = 0

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(InsertPoint.at_start(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        return Builder(InsertPoint.before(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        return Builder(InsertPoint.after(op))

    # -- insertion ------------------------------------------------------------

    def insert(self, op: OpT) -> OpT:
        """Insert ``op`` at the current point and return it."""
        block = self.insert_point.block
        anchor = self.insert_point.anchor
        if anchor is None:
            block.add_op(op)
        else:
            block.insert_op_before(op, anchor)
        if self.loc > 0 and LOC_ATTR not in op.attributes:
            op.attributes[LOC_ATTR] = IntegerAttr.i64(self.loc)
        return op

    def insert_all(self, ops: Iterable[Operation]) -> list[Operation]:
        return [self.insert(op) for op in ops]

    # -- movement -------------------------------------------------------------

    def set_insertion_point(self, point: InsertPoint) -> None:
        self.insert_point = point

    def goto_end(self, block: Block) -> None:
        self.insert_point = InsertPoint.at_end(block)

    def goto_start(self, block: Block) -> None:
        self.insert_point = InsertPoint.at_start(block)

    def goto_before(self, op: Operation) -> None:
        self.insert_point = InsertPoint.before(op)

    def goto_after(self, op: Operation) -> None:
        self.insert_point = InsertPoint.after(op)

    @property
    def block(self) -> Block:
        return self.insert_point.block


def build_region(
    arg_types: Sequence = (),
) -> tuple[Region, Block, Builder]:
    """Create a single-block region plus a builder positioned in it."""
    region = Region.with_block(arg_types)
    block = region.block
    return region, block, Builder.at_end(block)


def move_ops(ops: Sequence[Operation], target: Builder) -> None:
    """Detach ``ops`` from their blocks and insert them at ``target``."""
    for op in ops:
        op.detach()
        target.insert(op)


def inline_block_before(block: Block, anchor: Operation, arg_values: Sequence[SSAValue]) -> None:
    """Inline all ops of ``block`` before ``anchor``, substituting args.

    The block must not be used afterwards; its arguments are replaced by
    ``arg_values``.
    """
    if len(arg_values) != len(block.args):
        raise IRError(
            f"inline_block_before: expected {len(block.args)} argument "
            f"values, got {len(arg_values)}"
        )
    for arg, value in zip(block.args, arg_values):
        arg.replace_by(value)
    ops = list(block.ops)
    for op in ops:
        op.detach()
    anchor.parent.insert_ops_before(ops, anchor)  # type: ignore[union-attr]

"""Reference IR interpreter.

Executes modules functionally: memrefs are NumPy arrays, scalars are Python
numbers.  Dialect modules register implementations with the :func:`impl`
decorator; the runtime package adds handlers for ``device`` ops that talk
to the simulated board.

The interpreter is the ground truth for *correctness* — performance numbers
come from the analytic FPGA/CPU models, not from wall-clock interpretation.
Three execution tiers produce identical results and identical step counts:

1. scalar op-by-op dispatch (this module; ``compiled=False`` forces it);
2. block-JIT compiled closures (:mod:`repro.ir.compile`, the default) —
   each function is translated once into specialized Python closures;
3. NumPy whole-loop evaluation for provably safe loops
   (:mod:`repro.ir.vectorize`; ``vectorize=False`` disables it), entered
   from either of the first two tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.ir.core import Block, IRError, Operation, SSAValue


class InterpreterError(IRError):
    """Raised when execution goes wrong (missing impl, bad values...)."""


@dataclass
class Returned:
    """Signal: a function body executed ``func.return``."""

    values: tuple[Any, ...]


@dataclass
class Yielded:
    """Signal: a structured-control-flow region yielded values."""

    values: tuple[Any, ...]


#: An op implementation: ``(interp, op, env) -> None | Returned | Yielded``.
#: Result values must be written into ``env`` by the implementation via
#: :meth:`Interpreter.set_results`.
OpImpl = Callable[["Interpreter", Operation, dict], Any]

_GLOBAL_IMPLS: dict[str, OpImpl] = {}


def impl(op_name: str) -> Callable[[OpImpl], OpImpl]:
    """Register a global op implementation (decorator)."""

    def register(fn: OpImpl) -> OpImpl:
        _GLOBAL_IMPLS[op_name] = fn
        return fn

    return register


class Interpreter:
    """Executes a module. See module docstring."""

    def __init__(
        self,
        module: Operation,
        extra_impls: dict[str, OpImpl] | None = None,
        max_steps: int = 500_000_000,
        *,
        compiled: bool = True,
        vectorize: bool = True,
    ):
        self.module = module
        self.impls: dict[str, OpImpl] = dict(_GLOBAL_IMPLS)
        if extra_impls:
            self.impls.update(extra_impls)
        self.max_steps = max_steps
        self.steps = 0
        #: enable the block-JIT tier (falls back to scalar per function)
        self.compiled = compiled
        #: enable the NumPy whole-loop tier (both engines honour this)
        self.vectorize = vectorize
        #: optional ``(loop_op, trips)`` callback fired once per ``scf.for``
        #: execution — the cycle-accounting hook of the kernel runner.  A
        #: batching observer may accept ``(loop_op, trips, count)``: the
        #: vectorized nest fast path charges ``count`` identical inner-loop
        #: executions in one call (two-argument observers get ``count``
        #: separate calls instead).
        self.loop_observer: Callable[[Operation, int], None] | None = None
        #: the FpgaExecutor driving this interpreter, if any — compiled
        #: device-op closures bind to it directly.
        self.host_executor = None
        #: optional :class:`~repro.reliability.report.RunReport` — engine
        #: tier degradations are recorded here when an executor armed one
        self.reliability_report = None
        self._functions: dict[str, Operation] | None = None
        self._compilation = None
        #: functions whose block-JIT compilation crashed this session —
        #: recorded once, then permanently served by the scalar tier
        self._degraded_functions: set[str] = set()

    # -- function lookup ---------------------------------------------------------

    def functions(self) -> dict[str, Operation]:
        if self._functions is None:
            from repro.ir.attributes import StringAttr

            self._functions = {}
            for op in self.module.walk():
                if op.name == "func.func":
                    sym = op.attributes.get("sym_name")
                    if isinstance(sym, StringAttr):
                        self._functions[sym.value] = op
        return self._functions

    def get_function(self, name: str) -> Operation:
        funcs = self.functions()
        if name not in funcs:
            raise InterpreterError(
                f"no function named {name!r}; have {sorted(funcs)}"
            )
        return funcs[name]

    # -- execution -----------------------------------------------------------------

    def call(self, name: str, *args: Any) -> tuple[Any, ...]:
        """Call a function by symbol name with Python/NumPy arguments."""
        func = self.get_function(name)
        body = func.regions[0].block
        if len(args) != len(body.args):
            raise InterpreterError(
                f"function {name!r} expects {len(body.args)} arguments, "
                f"got {len(args)}"
            )
        if self.compiled and name not in self._degraded_functions:
            try:
                compiled_fn = self._compiled_function(name, func)
            except Exception as error:  # noqa: BLE001 - degrade, never crash
                self._degraded_functions.add(name)
                from repro.reliability.report import record_degradation

                record_degradation(self, "block-jit", "scalar", name, error)
                compiled_fn = None
            if compiled_fn is not None:
                return compiled_fn.call(self, args)
        env: dict[SSAValue, Any] = {}
        result = self.run_block(body, env, args)
        if isinstance(result, Returned):
            return result.values
        return ()

    def _compiled_function(self, name: str, func: Operation):
        """Block-JIT artifact for ``func`` (None -> scalar path)."""
        compilation = self._compilation
        if compilation is None:
            from repro.ir.compile import (
                get_module_compilation,
                overridden_native_ops,
            )

            compilation = self._compilation = get_module_compilation(
                self.module, overridden_native_ops(self.impls)
            )
        return compilation.get_function(name, func)

    def run_block(
        self, block: Block, env: dict, args: Sequence[Any] = ()
    ) -> Any:
        """Execute a block with the given block-argument values."""
        for block_arg, value in zip(block.args, args):
            env[block_arg] = value
        for op in block.ops:
            signal = self.run_op(op, env)
            if isinstance(signal, (Returned, Yielded)):
                return signal
        return None

    def run_op(self, op: Operation, env: dict) -> Any:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError("interpreter step limit exceeded")
        handler = self.impls.get(op.name)
        if handler is None:
            raise InterpreterError(f"no interpreter impl for op {op.name!r}")
        return handler(self, op, env)

    # -- helpers for implementations --------------------------------------------------

    def get(self, env: dict, value: SSAValue) -> Any:
        if value not in env:
            raise InterpreterError(
                f"value of type {value.type.print()} has not been computed"
            )
        return env[value]

    def operand_values(self, op: Operation, env: dict) -> list[Any]:
        return [self.get(env, operand) for operand in op.operands]

    def set_results(self, op: Operation, env: dict, values: Sequence[Any]) -> None:
        if len(values) != len(op.results):
            raise InterpreterError(
                f"{op.name}: implementation produced {len(values)} values "
                f"for {len(op.results)} results"
            )
        for result, value in zip(op.results, values):
            env[result] = value

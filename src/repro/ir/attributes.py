"""Attribute hierarchy for the IR.

Attributes are immutable, hashable compile-time values attached to
operations (and, via :class:`~repro.ir.types.TypeAttribute`, the types of
SSA values).  The design mirrors MLIR/xDSL: every attribute knows how to
print itself in MLIR-ish textual syntax, and equality is structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.types import TypeAttribute


class Attribute:
    """Base class for all attributes.

    Subclasses must be immutable value objects: ``__eq__``/``__hash__``
    are structural (dataclasses with ``frozen=True`` get this for free).
    """

    #: MLIR-style mnemonic used by the printer/parser, e.g. ``"index"``.
    name: str = "attribute"

    def print(self) -> str:
        """Return the textual form of this attribute."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement print()"
        )

    def __str__(self) -> str:
        return self.print()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.print()})"


@dataclass(frozen=True)
class UnitAttr(Attribute):
    """Presence-only attribute (MLIR ``unit``)."""

    name = "unit"

    def print(self) -> str:
        return "unit"


@dataclass(frozen=True)
class BoolAttr(Attribute):
    """Boolean attribute, printed ``true``/``false``."""

    name = "bool"
    value: bool = False

    def print(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    """An integer with an associated integer/index type.

    Printed as ``5 : i32``.  ``width`` of 0 denotes ``index``.
    """

    name = "integer"
    value: int = 0
    width: int = 64

    def print(self) -> str:
        ty = "index" if self.width == 0 else f"i{self.width}"
        return f"{self.value} : {ty}"

    @staticmethod
    def index(value: int) -> "IntegerAttr":
        return IntegerAttr(value, 0)

    @staticmethod
    def i1(value: bool | int) -> "IntegerAttr":
        return IntegerAttr(int(bool(value)), 1)

    @staticmethod
    def i32(value: int) -> "IntegerAttr":
        return IntegerAttr(value, 32)

    @staticmethod
    def i64(value: int) -> "IntegerAttr":
        return IntegerAttr(value, 64)


@dataclass(frozen=True)
class FloatAttr(Attribute):
    """A float with a width (32 or 64). Printed ``1.0 : f32``."""

    name = "float"
    value: float = 0.0
    width: int = 64

    def print(self) -> str:
        return f"{self.value!r} : f{self.width}"


@dataclass(frozen=True)
class StringAttr(Attribute):
    """A quoted string attribute."""

    name = "string"
    value: str = ""

    def print(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """Reference to a symbol, printed ``@name``."""

    name = "symbol_ref"
    symbol: str = ""

    def print(self) -> str:
        return f"@{self.symbol}"


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    """Ordered list of attributes, printed ``[a, b, c]``."""

    name = "array"
    elements: tuple[Attribute, ...] = ()

    def __init__(self, elements: Sequence[Attribute] = ()):
        object.__setattr__(self, "elements", tuple(elements))

    def print(self) -> str:
        return "[" + ", ".join(e.print() for e in self.elements) + "]"

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, idx: int) -> Attribute:
        return self.elements[idx]


@dataclass(frozen=True)
class DenseArrayAttr(Attribute):
    """Dense array of ints, printed ``array<i64: 1, 2, 3>``."""

    name = "dense_array"
    values: tuple[int, ...] = ()
    element_width: int = 64

    def __init__(self, values: Sequence[int] = (), element_width: int = 64):
        object.__setattr__(self, "values", tuple(int(v) for v in values))
        object.__setattr__(self, "element_width", element_width)

    def print(self) -> str:
        body = ", ".join(str(v) for v in self.values)
        sep = ": " if body else ""
        return f"array<i{self.element_width}{sep}{body}>"

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)


class DictionaryAttr(Attribute):
    """String-keyed dictionary of attributes, printed ``{a = ..., b = ...}``.

    Stored as a sorted tuple of pairs so the attribute remains hashable and
    equality is order-insensitive.
    """

    name = "dictionary"

    __slots__ = ("entries",)

    def __init__(self, entries: dict[str, Attribute] | Sequence[tuple[str, Attribute]] = ()):
        if isinstance(entries, dict):
            items = tuple(sorted(entries.items()))
        else:
            items = tuple(sorted(entries))
        self.entries: tuple[tuple[str, Attribute], ...] = items

    def print(self) -> str:
        inner = ", ".join(f"{k} = {v.print()}" for k, v in self.entries)
        return "{" + inner + "}"

    def as_dict(self) -> dict[str, Attribute]:
        return dict(self.entries)

    def __getitem__(self, key: str) -> Attribute:
        for k, v in self.entries:
            if k == key:
                return v
        raise KeyError(key)

    def __contains__(self, key: str) -> bool:
        return any(k == key for k, _ in self.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DictionaryAttr) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)


@dataclass(frozen=True)
class TypeAttr(Attribute):
    """Wraps a type so it can be used as an attribute value."""

    name = "type"
    type: "TypeAttribute" = None  # type: ignore[assignment]

    def print(self) -> str:
        return self.type.print()


def attr_from_python(value: object) -> Attribute:
    """Best-effort conversion from a plain Python value to an attribute.

    Convenience for builders and tests; integers become ``i64`` attributes,
    floats ``f64``, and sequences become :class:`ArrayAttr`.
    """
    from repro.ir.types import TypeAttribute

    if isinstance(value, TypeAttribute):
        return TypeAttr(value)
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr.i64(value)
    if isinstance(value, float):
        return FloatAttr(value, 64)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, TypeAttribute):
        return TypeAttr(value)
    if isinstance(value, dict):
        return DictionaryAttr({k: attr_from_python(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return ArrayAttr([attr_from_python(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to an Attribute")

"""Operation traits.

Traits are lightweight marker classes attached to op classes through the
``traits`` class attribute; passes query them with ``op.has_trait(...)``
instead of hard-coding op lists.
"""

from __future__ import annotations


class OpTrait:
    """Base class for all traits."""


class IsTerminator(OpTrait):
    """The op must be the last op of its block."""


class Pure(OpTrait):
    """No side effects: eligible for CSE and dead-code elimination."""


class ConstantLike(OpTrait):
    """The op materializes a compile-time constant."""


class HasParent(OpTrait):
    """The op must be directly nested in one of ``parent_op_names``."""

    parent_op_names: tuple[str, ...] = ()


class IsolatedFromAbove(OpTrait):
    """Regions of the op may not reference values defined outside it."""


class SymbolOp(OpTrait):
    """The op defines a symbol via a ``sym_name`` attribute."""


class MemoryRead(OpTrait):
    """The op reads from a memory resource."""


class MemoryWrite(OpTrait):
    """The op writes to a memory resource."""

"""Core IR data structures: SSA values, operations, blocks and regions.

The structure follows MLIR/xDSL: an :class:`Operation` holds operands
(uses of :class:`SSAValue`), produces results, carries a dictionary of
attributes and owns a list of :class:`Region` s, each containing
:class:`Block` s of nested operations.  Def-use chains are maintained
eagerly so rewrites can use :meth:`SSAValue.replace_by`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence, TypeVar

from repro.ir.attributes import Attribute
from repro.ir.types import TypeAttribute

OpT = TypeVar("OpT", bound="Operation")


class IRError(Exception):
    """Raised on malformed IR manipulation or verification failure."""


#: Attribute key carrying the originating Fortran source line (an
#: ``IntegerAttr``).  Purely informational: every structural comparison
#: (CSE keys, constant dedup, vectorizer stitch matching) must go through
#: :func:`semantic_attributes` so two ops differing only in provenance
#: still compare equal.
LOC_ATTR = "loc"


def semantic_attributes(attributes: dict[str, "Attribute"]) -> dict[str, "Attribute"]:
    """``attributes`` minus location/provenance keys.

    Use this (not the raw dict) whenever two operations are compared for
    semantic equivalence; copies only when a provenance key is present.
    """
    if LOC_ATTR in attributes:
        return {k: v for k, v in attributes.items() if k != LOC_ATTR}
    return attributes


# ---------------------------------------------------------------------------
# SSA values
# ---------------------------------------------------------------------------


class Use:
    """A single use of an SSA value: (operation, operand index).

    ``pos`` is the use's position inside the owning value's ``uses`` list,
    maintained by :meth:`SSAValue.add_use`/:meth:`SSAValue.remove_use_object`
    so unlinking an operand is O(1) instead of a linear scan.
    """

    __slots__ = ("operation", "index", "pos")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index
        self.pos = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Use({self.operation.name}, {self.index})"


class SSAValue:
    """Base class for values in SSA form."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: TypeAttribute):
        self.type = type
        self.uses: list[Use] = []
        #: Optional printer hint, e.g. ``"a"`` prints as ``%a``.
        self.name_hint: str | None = None

    # -- def-use management -------------------------------------------------

    def add_use(self, use: Use) -> None:
        use.pos = len(self.uses)
        self.uses.append(use)

    def remove_use_object(self, use: Use) -> None:
        """Unlink ``use`` in O(1) (swap-remove; use order is not stable)."""
        pos = use.pos
        if pos < 0 or pos >= len(self.uses) or self.uses[pos] is not use:
            raise IRError("attempting to remove a use that does not exist")
        last = self.uses.pop()
        if last is not use:
            self.uses[pos] = last
            last.pos = pos
        use.pos = -1

    def remove_use(self, operation: "Operation", index: int) -> None:
        """Compatibility shim: locate the use by (operation, index)."""
        for use in self.uses:
            if use.operation is operation and use.index == index:
                self.remove_use_object(use)
                return
        raise IRError("attempting to remove a use that does not exist")

    def replace_by(self, other: "SSAValue") -> None:
        """Replace all uses of this value with ``other``."""
        if other is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, other)
        assert not self.uses

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    @property
    def single_use(self) -> Use | None:
        return self.uses[0] if len(self.uses) == 1 else None

    def owner_block(self) -> "Block | None":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} : {self.type.print()}>"


class OpResult(SSAValue):
    """Result value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(self, type: TypeAttribute, op: "Operation", index: int):
        super().__init__(type)
        self.op = op
        self.index = index

    def owner_block(self) -> "Block | None":
        return self.op.parent


class BlockArgument(SSAValue):
    """Argument of a block (loop induction variables, function params...)."""

    __slots__ = ("block", "index")

    def __init__(self, type: TypeAttribute, block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    def owner_block(self) -> "Block | None":
        return self.block


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class Operation:
    """A generic, extensible operation.

    Subclasses set the class attribute :attr:`name` (e.g.
    ``"device.alloc"``) and usually provide a typed ``__init__`` plus
    property accessors.  All state lives in the generic containers so the
    printer, parser, interpreter and rewriters work uniformly.
    """

    #: Fully qualified operation name, ``dialect.mnemonic``.
    name: str = "builtin.unregistered"

    #: Trait classes (see :mod:`repro.ir.traits`).
    traits: tuple[type, ...] = ()

    __slots__ = (
        "_operands",
        "_operand_uses",
        "_operands_tuple",
        "results",
        "attributes",
        "regions",
        "parent",
        # Lazily attached per-root analysis state (e.g. the vectorizer's
        # loop-classification cache).  Never printed, cloned or compared;
        # lives and dies with the op so cached plans cannot outlive the
        # module they reference.
        "analysis_cache",
    )

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: dict[str, Attribute] | None = None,
        regions: Sequence["Region"] | None = None,
    ):
        self._operands: list[SSAValue] = []
        #: Use objects registered with each operand (parallel to _operands)
        #: so unlinking does not scan the value's use list.
        self._operand_uses: list[Use] = []
        self._operands_tuple: tuple[SSAValue, ...] | None = None
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = dict(attributes or {})
        self.regions: list[Region] = []
        self.parent: Block | None = None
        for operand in operands:
            self.add_operand(operand)
        for region in regions or ():
            self.add_region(region)

    # -- operand management --------------------------------------------------

    @property
    def operands(self) -> tuple[SSAValue, ...]:
        cached = self._operands_tuple
        if cached is None:
            cached = self._operands_tuple = tuple(self._operands)
        return cached

    def add_operand(self, value: SSAValue) -> None:
        if not isinstance(value, SSAValue):
            raise IRError(
                f"operand of {self.name} must be an SSAValue, got {value!r}"
            )
        index = len(self._operands)
        self._operands.append(value)
        self._operands_tuple = None
        use = Use(self, index)
        self._operand_uses.append(use)
        value.add_use(use)

    def set_operand(self, index: int, value: SSAValue) -> None:
        old = self._operands[index]
        old.remove_use_object(self._operand_uses[index])
        self._operands[index] = value
        self._operands_tuple = None
        use = Use(self, index)
        self._operand_uses[index] = use
        value.add_use(use)

    def drop_all_references(self) -> None:
        """Remove this op's uses of its operands (prior to erasure)."""
        for operand, use in zip(self._operands, self._operand_uses):
            operand.remove_use_object(use)
        self._operands.clear()
        self._operand_uses.clear()
        self._operands_tuple = None

    # -- structure -----------------------------------------------------------

    def add_region(self, region: "Region") -> None:
        if region.parent is not None:
            raise IRError("region already attached to an operation")
        region.parent = self
        self.regions.append(region)

    @property
    def parent_op(self) -> "Operation | None":
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    def get_parent_of_type(self, op_type: type[OpT]) -> OpT | None:
        op = self.parent_op
        while op is not None and not isinstance(op, op_type):
            op = op.parent_op
        return op  # type: ignore[return-value]

    def is_ancestor_of(self, other: "Operation") -> bool:
        op: Operation | None = other
        while op is not None:
            if op is self:
                return True
            op = op.parent_op
        return False

    # -- erasure / movement ----------------------------------------------------

    def detach(self) -> None:
        """Remove from the parent block without destroying the op."""
        if self.parent is not None:
            self.parent.ops.remove(self)
            self.parent = None

    def erase(self, *, safe: bool = True) -> None:
        """Detach and destroy this operation.

        With ``safe=True`` (default), raises if any result still has uses.
        """
        if safe:
            for result in self.results:
                if result.has_uses:
                    raise IRError(
                        f"erasing {self.name} whose result is still in use"
                    )
        self.detach()
        self.drop_all_references()
        for region in self.regions:
            region.drop_all_references()

    # -- traversal -----------------------------------------------------------

    def walk(self, reverse: bool = False) -> Iterator["Operation"]:
        """Pre-order walk of this op and every nested op."""
        yield self
        regions = reversed(self.regions) if reverse else self.regions
        for region in regions:
            blocks = reversed(region.blocks) if reverse else region.blocks
            for block in blocks:
                ops = reversed(list(block.ops)) if reverse else list(block.ops)
                for op in ops:
                    yield from op.walk(reverse=reverse)

    def walk_type(self, op_type: type[OpT]) -> Iterator[OpT]:
        for op in self.walk():
            if isinstance(op, op_type):
                yield op

    # -- attribute helpers -----------------------------------------------------

    def get_attr(self, key: str, default: Attribute | None = None) -> Attribute | None:
        return self.attributes.get(key, default)

    def has_trait(self, trait: type) -> bool:
        return any(issubclass(t, trait) for t in self.traits)

    # -- pickling --------------------------------------------------------------

    def __getstate__(self):
        """Exclude :attr:`analysis_cache` from pickling.

        The cache holds compiled vector plans (NumPy closures) that are
        neither picklable nor meaningful in another process; a loaded
        module starts with a cold cache and re-derives identical plans.
        """
        state = super().__getstate__()
        if (
            isinstance(state, tuple)
            and len(state) == 2
            and isinstance(state[1], dict)
        ):
            state[1].pop("analysis_cache", None)
        return state

    # -- cloning ---------------------------------------------------------------

    def clone(
        self, value_map: dict[SSAValue, SSAValue] | None = None
    ) -> "Operation":
        """Deep-copy this operation.

        ``value_map`` maps old values to new ones; operands not present in
        the map are kept as-is (uses of values defined above the clone).
        The map is extended with result and block-argument mappings.
        """
        if value_map is None:
            value_map = {}
        new_operands = [value_map.get(o, o) for o in self._operands]
        op = object.__new__(type(self))
        Operation.__init__(
            op,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
        )
        for old_res, new_res in zip(self.results, op.results):
            value_map[old_res] = new_res
            new_res.name_hint = old_res.name_hint
        for region in self.regions:
            op.add_region(region.clone(value_map))
        return op

    # -- verification ------------------------------------------------------------

    def verify_(self) -> None:
        """Op-specific verification hook; subclasses may override."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<op {self.name} ({len(self._operands)} operands)>"

    def __str__(self) -> str:
        from repro.ir.printer import Printer

        return Printer().print_op_to_string(self)


class UnregisteredOp(Operation):
    """Fallback for ops parsed without a registered class."""

    name = "builtin.unregistered"

    __slots__ = ("op_name",)

    def __init__(self, op_name: str, **kwargs):
        self.op_name = op_name
        super().__init__(**kwargs)


# ---------------------------------------------------------------------------
# Blocks and regions
# ---------------------------------------------------------------------------


class Block:
    """A straight-line sequence of operations with block arguments."""

    __slots__ = ("args", "ops", "parent")

    def __init__(self, arg_types: Sequence[TypeAttribute] = ()):
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.ops: list[Operation] = []
        self.parent: Region | None = None

    def add_op(self, op: Operation) -> Operation:
        """Append ``op`` to this block."""
        if op.parent is not None:
            raise IRError("operation already attached to a block")
        op.parent = self
        self.ops.append(op)
        return op

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def _anchor_index(self, anchor: Operation, anchor_index: int | None) -> int:
        """Resolve ``anchor``'s position, trusting a caller-supplied index
        when it checks out so repeated insertions avoid ``list.index``."""
        if (
            anchor_index is not None
            and 0 <= anchor_index < len(self.ops)
            and self.ops[anchor_index] is anchor
        ):
            return anchor_index
        return self.ops.index(anchor)

    def insert_op_before(
        self,
        op: Operation,
        anchor: Operation,
        *,
        anchor_index: int | None = None,
    ) -> None:
        if anchor.parent is not self:
            raise IRError("anchor operation is not in this block")
        if op.parent is not None:
            raise IRError("operation already attached to a block")
        op.parent = self
        self.ops.insert(self._anchor_index(anchor, anchor_index), op)

    def insert_op_after(
        self,
        op: Operation,
        anchor: Operation,
        *,
        anchor_index: int | None = None,
    ) -> None:
        if anchor.parent is not self:
            raise IRError("anchor operation is not in this block")
        if op.parent is not None:
            raise IRError("operation already attached to a block")
        op.parent = self
        self.ops.insert(self._anchor_index(anchor, anchor_index) + 1, op)

    def insert_ops_before(
        self, ops: Sequence[Operation], anchor: Operation
    ) -> None:
        """Insert ``ops`` (in order) before ``anchor`` with one position
        lookup for the whole batch."""
        if anchor.parent is not self:
            raise IRError("anchor operation is not in this block")
        position = self.ops.index(anchor)
        for op in ops:
            if op.parent is not None:
                raise IRError("operation already attached to a block")
            op.parent = self
        self.ops[position:position] = list(ops)

    def add_arg(self, type: TypeAttribute) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.args))
        self.args.append(arg)
        return arg

    def erase_arg(self, arg: BlockArgument) -> None:
        if arg.has_uses:
            raise IRError("erasing block argument that is still in use")
        self.args.remove(arg)
        for i, a in enumerate(self.args):
            a.index = i

    @property
    def first_op(self) -> Operation | None:
        return self.ops[0] if self.ops else None

    @property
    def last_op(self) -> Operation | None:
        return self.ops[-1] if self.ops else None

    def index_of(self, op: Operation) -> int:
        return self.ops.index(op)

    def drop_all_references(self) -> None:
        for op in self.ops:
            op.drop_all_references()
            for region in op.regions:
                region.drop_all_references()

    def clone(self, value_map: dict[SSAValue, SSAValue]) -> "Block":
        new = Block([a.type for a in self.args])
        for old_arg, new_arg in zip(self.args, new.args):
            value_map[old_arg] = new_arg
            new_arg.name_hint = old_arg.name_hint
        for op in self.ops:
            new.add_op(op.clone(value_map))
        return new

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] | None = None):
        self.blocks: list[Block] = []
        self.parent: Operation | None = None
        for block in blocks or ():
            self.add_block(block)

    @staticmethod
    def with_block(arg_types: Sequence[TypeAttribute] = ()) -> "Region":
        return Region([Block(arg_types)])

    def add_block(self, block: Block) -> Block:
        if block.parent is not None:
            raise IRError("block already attached to a region")
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def block(self) -> Block:
        """The single block of this region (raises if not single-block)."""
        if len(self.blocks) != 1:
            raise IRError(
                f"expected single-block region, found {len(self.blocks)} blocks"
            )
        return self.blocks[0]

    @property
    def first_block(self) -> Block | None:
        return self.blocks[0] if self.blocks else None

    def drop_all_references(self) -> None:
        for block in self.blocks:
            block.drop_all_references()

    def clone(self, value_map: dict[SSAValue, SSAValue] | None = None) -> "Region":
        if value_map is None:
            value_map = {}
        region = Region()
        for block in self.blocks:
            region.add_block(block.clone(value_map))
        return region

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            for op in list(block.ops):
                yield from op.walk()

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


# ---------------------------------------------------------------------------
# Dialects and context
# ---------------------------------------------------------------------------


class Dialect:
    """A named set of operation classes and (optionally) type constructors."""

    def __init__(
        self,
        name: str,
        operations: Sequence[type[Operation]] = (),
        attributes: Sequence[type[Attribute]] = (),
    ):
        self.name = name
        self.operations = list(operations)
        self.attributes = list(attributes)


class Context:
    """Registry mapping operation names to classes, used by the parser."""

    def __init__(self):
        self._op_registry: dict[str, type[Operation]] = {}
        self._dialects: dict[str, Dialect] = {}

    def register_dialect(self, dialect: Dialect) -> None:
        if dialect.name in self._dialects:
            return
        self._dialects[dialect.name] = dialect
        for op_cls in dialect.operations:
            self._op_registry[op_cls.name] = op_cls

    def get_op(self, name: str) -> type[Operation] | None:
        return self._op_registry.get(name)

    def registered_dialects(self) -> list[str]:
        return sorted(self._dialects)

    @property
    def op_names(self) -> list[str]:
        return sorted(self._op_registry)


_default_context: Context | None = None


def default_context() -> Context:
    """The global context with every dialect in :mod:`repro.dialects`."""
    global _default_context
    if _default_context is None:
        from repro.dialects import register_all_dialects

        _default_context = Context()
        register_all_dialects(_default_context)
    return _default_context


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def ops_topologically_sorted(block: Block) -> list[Operation]:
    """Return block ops sorted so every def precedes its uses.

    Used by transforms that build blocks out of order; ops whose operands
    are all defined outside the block keep their relative order.  Kahn's
    algorithm over the in-block def-use edges, O(n + e) with a heap keyed
    by original position so ties keep source order (the same order the
    previous quadratic scan produced).
    """
    position: dict[int, int] = {id(op): i for i, op in enumerate(block.ops)}
    indegree: dict[int, int] = {id(op): 0 for op in block.ops}
    dependents: dict[int, list[Operation]] = {id(op): [] for op in block.ops}
    for op in block.ops:
        for operand in op._operands:
            if isinstance(operand, OpResult) and operand.op.parent is block:
                if operand.op is not op:  # self-loops cannot be satisfied
                    indegree[id(op)] += 1
                    dependents[id(operand.op)].append(op)

    ready = [
        (position[id(op)], op) for op in block.ops if indegree[id(op)] == 0
    ]
    heapq.heapify(ready)
    result: list[Operation] = []
    while ready:
        _, op = heapq.heappop(ready)
        result.append(op)
        for user in dependents[id(op)]:
            indegree[id(user)] -= 1
            if indegree[id(user)] == 0:
                heapq.heappush(ready, (position[id(user)], user))
    if len(result) != len(block.ops):
        raise IRError("cycle detected while sorting block operations")
    return result

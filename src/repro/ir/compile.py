"""Block-JIT compilation of IR functions into Python closures.

The reference interpreter dispatches every executed op through a
``dict[str, OpImpl]`` and keeps values in a ``dict[SSAValue, Any]``.  That
is the right ground truth but the wrong steady state: one SGESL n=512
simulated run re-walks the same host driver and kernel bodies hundreds of
thousands of times.  This module walks each ``func.func`` **once** and
emits a chain of specialized Python closures:

* values live in a flat *frame* (a plain list); operand lookups become
  fixed integer indices assigned at compile time;
* ``arith.constant`` is folded into the frame template (and constant
  arithmetic is folded transitively at compile time);
* ``scf.for`` / ``scf.if`` / ``scf.while`` compile to native Python
  loops/branches around their compiled bodies;
* ops without a compiled form (``device.*``, ``omp.*``, anything a caller
  overrode) fall back to the interpreter impl, looked up at *run* time so
  per-executor bindings keep working — the frame is wrapped in a
  dict-compatible proxy for those handlers;
* compiled artifacts are cached per module (and per set of overridden
  core ops), so the ~2k kernel launches of one SGESL run — and every run
  after the first — reuse a single compiled artifact.

Step accounting is preserved *exactly*: straight-line segments bump
``interp.steps`` by their op count in one add, loops bump per iteration,
so the CPU-baseline time model (seconds-per-step) and the step limit see
the same numbers as scalar interpretation.

Functions that cannot be compiled (multi-block regions, overridden
terminators, exotic constants) transparently fall back to the scalar
interpreter — compilation is an optimization, never a semantics change.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.ir.core import Operation, SSAValue
from repro.ir.traits import IsTerminator

#: Closure executing one compiled op: ``(interp, frame) -> None``.
OpClosure = Callable[[Any, list], None]

#: Emitter: ``(op, ctx) -> OpClosure | None``.  ``None`` means the op was
#: folded away (constants) or is a pure no-op; it still counts one
#: interpreter step via the enclosing block's bulk increment.  Emitters
#: whose closures manage their own step accounting (loops, branches,
#: calls, fallbacks) must register with ``counts_own_steps=True``.
Emitter = Callable[[Operation, "FnCompiler"], "OpClosure | None"]

_EMITTERS: dict[str, Emitter] = {}
_SELF_STEPPING: set[str] = set()
#: emitters that dispatch on runtime interpreter state themselves (the
#: executor-bound device ops): a per-instance impl override does not
#: invalidate them, so they are excluded from the overridden-ops scan.
_IMPL_INDEPENDENT: set[str] = set()

#: sentinel for "slot not yet computed" in frames
_UNSET = object()

#: sentinel returned by :meth:`FnCompiler.literal` for non-constants
NOT_CONST = object()


def compiled_for(
    op_name: str,
    *,
    counts_own_steps: bool = False,
    impl_independent: bool = False,
):
    """Register a compiled-form emitter for ``op_name`` (decorator)."""

    def register(fn: Emitter) -> Emitter:
        _EMITTERS[op_name] = fn
        if counts_own_steps:
            _SELF_STEPPING.add(op_name)
        if impl_independent:
            _IMPL_INDEPENDENT.add(op_name)
        return fn

    return register


def native_op_names() -> frozenset[str]:
    """Op names with a registered compiled form."""
    return frozenset(_EMITTERS)


class CannotCompile(Exception):
    """Internal signal: this function must stay on the scalar path."""


# ---------------------------------------------------------------------------
# Frame environment proxy
# ---------------------------------------------------------------------------


class FrameEnv:
    """Dict-compatible view of a frame, keyed by :class:`SSAValue`.

    Handed to fallback op implementations (``handler(interp, op, env)``)
    so the scalar impls — including ones that recursively call
    ``interp.run_block`` on nested regions — work unchanged on top of
    compiled frames.
    """

    __slots__ = ("frame", "slots", "_extra")

    def __init__(self, frame: list, slots: dict[SSAValue, int]):
        self.frame = frame
        self.slots = slots
        #: values for IR the compiler never assigned a slot to (ops inside
        #: regions executed scalar by a fallback handler); per-call state —
        #: the slot table is shared across calls and must stay frozen.
        self._extra: dict[SSAValue, Any] = {}

    def __getitem__(self, value: SSAValue) -> Any:
        slot = self.slots.get(value)
        if slot is None:
            return self._extra[value]
        item = self.frame[slot]
        if item is _UNSET:
            raise KeyError(value)
        return item

    def __setitem__(self, value: SSAValue, item: Any) -> None:
        slot = self.slots.get(value)
        if slot is None:
            self._extra[value] = item
        else:
            self.frame[slot] = item

    def __contains__(self, value: SSAValue) -> bool:
        slot = self.slots.get(value)
        if slot is None:
            return value in self._extra
        return self.frame[slot] is not _UNSET

    def get(self, value: SSAValue, default: Any = None) -> Any:
        slot = self.slots.get(value)
        if slot is None:
            return self._extra.get(value, default)
        item = self.frame[slot]
        return default if item is _UNSET else item


# ---------------------------------------------------------------------------
# Per-function compiler
# ---------------------------------------------------------------------------


def _chain(closures: list[OpClosure], bulk_steps: int) -> OpClosure:
    """Compose op closures into one block-body runner that bulk-counts the
    simple ops' interpreter steps."""
    k = bulk_steps
    if not closures:
        def run0(interp, frame):
            interp.steps += k
        return run0
    if len(closures) == 1:
        (c0,) = closures

        def run1(interp, frame):
            interp.steps += k
            c0(interp, frame)
        return run1
    if len(closures) == 2:
        c0, c1 = closures

        def run2(interp, frame):
            interp.steps += k
            c0(interp, frame)
            c1(interp, frame)
        return run2
    if len(closures) == 3:
        c0, c1, c2 = closures

        def run3(interp, frame):
            interp.steps += k
            c0(interp, frame)
            c1(interp, frame)
            c2(interp, frame)
        return run3
    if len(closures) == 4:
        c0, c1, c2, c3 = closures

        def run4(interp, frame):
            interp.steps += k
            c0(interp, frame)
            c1(interp, frame)
            c2(interp, frame)
            c3(interp, frame)
        return run4
    seq = tuple(closures)

    def run_many(interp, frame):
        interp.steps += k
        for closure in seq:
            closure(interp, frame)
    return run_many


class FnCompiler:
    """Compilation context for one ``func.func``: slot table, constant
    tracking and block compilation helpers used by the dialect emitters."""

    def __init__(self, overridden: frozenset[str]):
        self.overridden = overridden
        #: slot 0 is reserved for the FrameEnv proxy
        self.slots: dict[SSAValue, int] = {}
        self.template: list = [None]
        self.consts: dict[int, Any] = {}
        self.needs_env = False

    # -- slots and constants -------------------------------------------------

    def slot(self, value: SSAValue) -> int:
        index = self.slots.get(value)
        if index is None:
            index = self.slots[value] = len(self.template)
            self.template.append(_UNSET)
        return index

    def slot_list(self, values) -> list[int]:
        return [self.slot(v) for v in values]

    def set_literal(self, value: SSAValue, item: Any) -> None:
        """Record ``value`` as a compile-time constant, prefilled in the
        frame template."""
        index = self.slot(value)
        self.template[index] = item
        self.consts[index] = item

    def literal(self, value: SSAValue) -> Any:
        """The compile-time constant held by ``value``, or ``NOT_CONST``."""
        index = self.slots.get(value)
        if index is None:
            return NOT_CONST
        return self.consts.get(index, NOT_CONST)

    # -- op and block compilation ---------------------------------------------

    def compile_op(self, op: Operation) -> tuple[OpClosure | None, bool]:
        """Compile one op.  Returns ``(closure, self_stepping)``; a None
        closure contributes no runtime work (folded / no-op)."""
        name = op.name
        emitter = _EMITTERS.get(name)
        if emitter is None or name in self.overridden:
            if op.has_trait(IsTerminator):
                # A terminator we cannot compile natively (or that the
                # caller overrode) changes control flow: bail out.
                raise CannotCompile(name)
            return self.fallback(op), True
        return emitter(op, self), name in _SELF_STEPPING

    def fallback(self, op: Operation) -> OpClosure:
        """Dispatch through ``interp.impls`` at run time (device ops, omp
        ops, anything overridden per-interpreter)."""
        self.needs_env = True
        name = op.name

        def run(interp, frame):
            from repro.ir.interpreter import InterpreterError

            steps = interp.steps + 1
            interp.steps = steps
            if steps > interp.max_steps:
                raise InterpreterError("interpreter step limit exceeded")
            handler = interp.impls.get(name)
            if handler is None:
                raise InterpreterError(
                    f"no interpreter impl for op {name!r}"
                )
            signal = handler(interp, op, frame[0])
            if signal is not None:
                raise InterpreterError(
                    f"compiled execution: unexpected control signal from "
                    f"{name!r}"
                )
        return run

    def compile_body(
        self, ops, *, allow_terminators: tuple[str, ...] = ()
    ) -> OpClosure:
        """Compile a straight-line op sequence into one runner closure.

        ``allow_terminators`` names terminator ops the *caller* executes
        itself (``scf.yield`` operand slots are read by the enclosing loop
        closure); they still count one interpreter step each.
        """
        closures: list[OpClosure] = []
        bulk = 0
        last = ops[-1] if ops else None
        for op in ops:
            if op.name in allow_terminators:
                # The enclosing construct only executes the *final*
                # terminator's operand slots; a mid-block terminator would
                # silently run the dead code after it — stay scalar.
                if op is not last or op.name in self.overridden:
                    raise CannotCompile(op.name)
                bulk += 1
                continue
            closure, self_stepping = self.compile_op(op)
            if closure is None:
                bulk += 1
                continue
            if not self_stepping:
                bulk += 1
            closures.append(closure)
        return _chain(closures, bulk)


class CompiledFunction:
    """One compiled ``func.func``: frame template plus entry runner."""

    __slots__ = (
        "name", "arg_slots", "runner", "template", "slots", "needs_env",
    )

    def __init__(self, name, arg_slots, runner, template, slots, needs_env):
        self.name = name
        self.arg_slots = arg_slots
        self.runner = runner
        self.template = template
        self.slots = slots
        self.needs_env = needs_env

    def call(self, interp, args) -> tuple:
        frame = self.template.copy()
        if self.needs_env:
            frame[0] = FrameEnv(frame, self.slots)
        for slot, value in zip(self.arg_slots, args):
            frame[slot] = value
        result = self.runner(interp, frame)
        if interp.steps > interp.max_steps:
            # parity with the scalar engine, which checks before every op:
            # bulk-counted segments and vectorized loops settle up here
            from repro.ir.interpreter import InterpreterError

            raise InterpreterError("interpreter step limit exceeded")
        return result


def compile_function(
    func_op: Operation, overridden: frozenset[str]
) -> CompiledFunction | None:
    """Compile one ``func.func`` body, or None when it must stay scalar."""
    from repro.ir.attributes import StringAttr

    regions = func_op.regions
    if len(regions) != 1 or len(regions[0].blocks) != 1:
        return None
    body = regions[0].blocks[0]
    sym = func_op.attributes.get("sym_name")
    name = sym.value if isinstance(sym, StringAttr) else "<anonymous>"

    ctx = FnCompiler(overridden)
    arg_slots = ctx.slot_list(body.args)
    try:
        last = body.ops[-1] if body.ops else None
        if last is not None and last.name == "func.return":
            if "func.return" in overridden:
                return None
            ret_slots = ctx.slot_list(last._operands)
            block_run = ctx.compile_body(
                body.ops, allow_terminators=("func.return",)
            )
        else:
            # No return terminator: scalar semantics run the block and
            # return () (possible with handler-produced signals only).
            ret_slots = []
            block_run = ctx.compile_body(body.ops)
    except CannotCompile:
        return None

    if ret_slots:
        slots = tuple(ret_slots)

        def runner(interp, frame):
            block_run(interp, frame)
            return tuple(frame[s] for s in slots)
    else:
        def runner(interp, frame):
            block_run(interp, frame)
            return ()

    return CompiledFunction(
        name, arg_slots, runner, ctx.template, ctx.slots, ctx.needs_env
    )


# ---------------------------------------------------------------------------
# Module-level compilation cache
# ---------------------------------------------------------------------------


class ModuleCompilation:
    """Lazy per-function compilation of one module."""

    __slots__ = ("module", "overridden", "functions")

    def __init__(self, module: Operation, overridden: frozenset[str]):
        self.module = module
        self.overridden = overridden
        #: name -> CompiledFunction | None (None = scalar fallback)
        self.functions: dict[str, CompiledFunction | None] = {}

    def get_function(
        self, name: str, func_op: Operation
    ) -> CompiledFunction | None:
        if name not in self.functions:
            self.functions[name] = compile_function(func_op, self.overridden)
        return self.functions[name]


#: Compiled artifacts keyed by (module identity, overridden op names).
#: Strong module refs pin ids; a small LRU bound keeps long DSE sessions
#: from accumulating. Modules are assumed not to be mutated between
#: executions (the pipeline transforms before it ever executes) — call
#: :func:`invalidate_compilation` if a transform must re-run afterwards.
_MODULE_CACHE: "OrderedDict[tuple[int, frozenset[str]], ModuleCompilation]" = (
    OrderedDict()
)
_MODULE_CACHE_CAP = 64


def get_module_compilation(
    module: Operation, overridden: frozenset[str]
) -> ModuleCompilation:
    key = (id(module), overridden)
    cached = _MODULE_CACHE.get(key)
    if cached is not None and cached.module is module:
        _MODULE_CACHE.move_to_end(key)
        return cached
    compilation = ModuleCompilation(module, overridden)
    _MODULE_CACHE[key] = compilation
    while len(_MODULE_CACHE) > _MODULE_CACHE_CAP:
        _MODULE_CACHE.popitem(last=False)
    return compilation


def invalidate_compilation(module: Operation) -> None:
    """Drop cached artifacts for ``module`` (after in-place mutation).

    Called automatically by the pass manager and the rewrite driver;
    transforms mutating IR outside those paths must call it themselves
    before the module is executed again.
    """
    for key in [k for k in _MODULE_CACHE if k[0] == id(module)]:
        del _MODULE_CACHE[key]
    from repro.ir.vectorize import invalidate_analysis

    invalidate_analysis(module)


#: Terminators the compiler executes structurally (reading operand slots)
#: rather than through their impls; overriding one forces the scalar path.
CHECKED_TERMINATORS = frozenset(
    {"func.return", "scf.yield", "scf.condition", "omp.yield",
     "omp.terminator"}
)


def overridden_native_ops(impls: dict[str, Any]) -> frozenset[str]:
    """Native ops whose impl differs from the registered global one for
    this interpreter instance (these must use the fallback path)."""
    from repro.ir.interpreter import _GLOBAL_IMPLS

    return frozenset(
        name
        for name in (set(_EMITTERS) | CHECKED_TERMINATORS) - _IMPL_INDEPENDENT
        if name in impls and impls[name] is not _GLOBAL_IMPLS.get(name)
    )

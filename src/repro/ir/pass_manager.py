"""Pass management: registry-backed declarative pipelines + instrumentation.

A :class:`ModulePass` transforms a module in place and *declares* its
tuning knobs as typed :class:`PassOption`\\ s.  The :class:`PassManager`
runs an ordered pipeline; pipelines have a textual form in the style of
MLIR's ``--pass-pipeline``::

    pm = PassManager.parse(
        "lower-omp-mapped-data{policy=round_robin},"
        "lower-omp-to-hls{reduction_copies=4},canonicalize,cse"
    )
    pm.spec()   # round-trips the string above

:class:`Instrumentation` is the unified observation hook consumed by the
staged :class:`~repro.session.Session` API, the Figure-2 benchmark, the
golden-IR tests and :mod:`repro.reporting`: named stage snapshots,
per-pass timing with optional before/after IR, and event counters.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.ir.core import IRError, Operation
from repro.ir.printer import print_op
from repro.ir.verifier import verify


class PipelineParseError(ValueError):
    """A textual pass-pipeline spec failed to parse or validate."""


# ---------------------------------------------------------------------------
# Typed pass options
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassOption:
    """One declared knob of a pass: name, value type and default.

    ``attr`` names the constructor keyword / instance attribute backing
    the option when it differs from the public option name.
    """

    name: str
    type: type = str
    default: object = None
    help: str = ""
    attr: str | None = None

    @property
    def attr_name(self) -> str:
        return self.attr or self.name

    def convert(self, value: object, pass_name: str) -> object:
        """Coerce a (possibly textual) value to the option's type."""
        if self.type is bool:
            if isinstance(value, bool):
                return value
            text = str(value).strip().lower()
            if text in ("true", "1", "yes"):
                return True
            if text in ("false", "0", "no"):
                return False
            raise PipelineParseError(
                f"pass '{pass_name}': option '{self.name}' expects a bool "
                f"(true/false), got {value!r}"
            )
        try:
            return self.type(value)
        except (TypeError, ValueError) as err:
            raise PipelineParseError(
                f"pass '{pass_name}': option '{self.name}' expects "
                f"{self.type.__name__}, got {value!r}"
            ) from err

    def render(self, value: object) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)


class ModulePass:
    """Base class for module-level transformations."""

    #: Pipeline name, e.g. ``"lower-omp-mapped-data"``.
    name: str = "unnamed-pass"

    #: Declared knobs, in rendering order (see :meth:`spec`).
    options: tuple[PassOption, ...] = ()

    def apply(self, module: Operation) -> None:
        raise NotImplementedError

    # -- declarative construction / printing -------------------------------------

    @classmethod
    def from_options(cls, **raw) -> "ModulePass":
        """Instantiate from textual/typed option values, validating names
        and coercing values per the declared :attr:`options`."""
        declared = {opt.name: opt for opt in cls.options}
        kwargs = {}
        for key, value in raw.items():
            if key not in declared:
                valid = ", ".join(sorted(declared)) or "<none>"
                raise PipelineParseError(
                    f"pass '{cls.name}' has no option {key!r}; "
                    f"valid options: {valid}"
                )
            opt = declared[key]
            kwargs[opt.attr_name] = opt.convert(value, cls.name)
        return cls(**kwargs)

    def option_values(self) -> dict[str, object]:
        """Current value of every declared option (override when the
        backing attribute is not a plain scalar)."""
        return {
            opt.name: getattr(self, opt.attr_name) for opt in self.options
        }

    def spec(self) -> str:
        """Textual form, rendering only non-default option values."""
        values = self.option_values()
        parts = [
            f"{opt.name}={opt.render(values[opt.name])}"
            for opt in self.options
            if values[opt.name] != opt.default
        ]
        if parts:
            return f"{self.name}{{{','.join(parts)}}}"
        return self.name


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


@dataclass
class PipelineStage:
    """Named IR snapshot (Figure-2 introspection / golden-IR tests)."""

    name: str
    ir: str


@dataclass
class PassTrace:
    """Record of one pass execution (timing + optional IR snapshots)."""

    pass_name: str
    duration_s: float
    ir_before: str | None = None
    ir_after: str | None = None


@dataclass
class Instrumentation:
    """Unified observation hook threaded through the compilation stages.

    * ``counters`` — event counts (``frontend_compiles``,
      ``host_device_builds``, ``device_builds``, ...), the artifact-reuse
      evidence the DSE tests and benchmarks assert on;
    * ``snapshots`` — named whole-module IR prints per pipeline stage
      (only recorded when ``capture_ir`` is set);
    * ``pass_traces`` — per-pass wall-clock, with before/after IR when
      ``capture_ir`` is set.
    """

    capture_ir: bool = False
    counters: Counter = field(default_factory=Counter)
    snapshots: list[PipelineStage] = field(default_factory=list)
    pass_traces: list[PassTrace] = field(default_factory=list)

    def count(self, event: str, n: int = 1) -> None:
        self.counters[event] += n

    def snapshot(self, name: str, module_or_text) -> PipelineStage | None:
        """Record a named stage snapshot (no-op unless ``capture_ir``)."""
        if not self.capture_ir:
            return None
        text = (
            module_or_text
            if isinstance(module_or_text, str)
            else print_op(module_or_text)
        )
        stage = PipelineStage(name, text)
        self.snapshots.append(stage)
        return stage

    def record_pass(
        self,
        pass_name: str,
        duration_s: float,
        ir_before: str | None = None,
        ir_after: str | None = None,
    ) -> None:
        self.pass_traces.append(
            PassTrace(pass_name, duration_s, ir_before, ir_after)
        )

    def stage(self, name: str) -> str:
        """The IR of the named snapshot (latest wins); raises KeyError."""
        for snap in reversed(self.snapshots):
            if snap.name == name:
                return snap.ir
        raise KeyError(
            f"no snapshot {name!r}; have {[s.name for s in self.snapshots]}"
        )

    def stage_names(self) -> list[str]:
        return [s.name for s in self.snapshots]


# ---------------------------------------------------------------------------
# Pass manager
# ---------------------------------------------------------------------------


@dataclass
class PassManager:
    """Runs a pipeline of passes over a module."""

    passes: list[ModulePass] = field(default_factory=list)
    verify_each: bool = True
    instrumentation: Instrumentation | None = None

    def add(self, *passes: ModulePass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Operation) -> None:
        if self.verify_each:
            verify(module)
        instr = self.instrumentation
        prev_ir: str | None = None
        for p in self.passes:
            ir_before = None
            if instr is not None and instr.capture_ir:
                # each pass's "before" is the previous pass's "after"
                ir_before = prev_ir if prev_ir is not None else print_op(module)
            start = time.perf_counter()
            p.apply(module)
            duration = time.perf_counter() - start
            if self.verify_each:
                try:
                    verify(module)
                except IRError as err:
                    raise IRError(
                        f"verification failed after pass '{p.name}': {err}"
                    ) from err
            if instr is not None:
                ir_after = print_op(module) if instr.capture_ir else None
                instr.record_pass(p.name, duration, ir_before, ir_after)
                prev_ir = ir_after
        if self.passes:
            # the pipeline mutated the module in place: stale compiled
            # artifacts and loop analyses must not survive it
            from repro.ir.compile import invalidate_compilation

            invalidate_compilation(module)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    # -- declarative pipelines ----------------------------------------------------

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        verify_each: bool = True,
        instrumentation: Instrumentation | None = None,
    ) -> "PassManager":
        """Build a pipeline from its textual spec, e.g.
        ``"lower-omp-to-hls{reduction_copies=4,simdlen=2},canonicalize"``."""
        pm = cls(verify_each=verify_each, instrumentation=instrumentation)
        for entry in _split_toplevel(spec):
            pm.add(_parse_pass_entry(entry))
        return pm

    def spec(self) -> str:
        """The textual pipeline spec; ``PassManager.parse`` round-trips it."""
        return ",".join(p.spec() for p in self.passes)


def _split_toplevel(spec: str) -> list[str]:
    """Split on commas not enclosed in ``{...}``."""
    entries: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in spec:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise PipelineParseError(
                    f"unbalanced '}}' in pipeline spec {spec!r}"
                )
        if ch == "," and depth == 0:
            entries.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise PipelineParseError(f"unbalanced '{{' in pipeline spec {spec!r}")
    entries.append("".join(current))
    return [e.strip() for e in entries if e.strip()]


def _parse_pass_entry(entry: str) -> ModulePass:
    name, brace, rest = entry.partition("{")
    name = name.strip()
    options: dict[str, str] = {}
    if brace:
        if not rest.endswith("}"):
            raise PipelineParseError(
                f"malformed pass entry {entry!r}: missing closing '}}'"
            )
        body = rest[:-1].strip()
        for item in filter(None, (s.strip() for s in body.split(","))):
            key, eq, value = item.partition("=")
            if not eq:
                raise PipelineParseError(
                    f"malformed option {item!r} in pass entry {entry!r}: "
                    "expected key=value"
                )
            options[key.strip()] = value.strip()
    cls = get_pass_class(name)
    return cls.from_options(**options)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


_PASS_REGISTRY: dict[str, type[ModulePass]] = {}


def register_pass(cls: type[ModulePass]) -> type[ModulePass]:
    """Register a pass class under its ``name`` for pipeline-by-name
    construction (decorator-friendly)."""
    _PASS_REGISTRY[cls.name] = cls
    return cls


def get_pass_class(name: str) -> type[ModulePass]:
    if name not in _PASS_REGISTRY:
        raise PipelineParseError(
            f"unknown pass {name!r}; registered: {sorted(_PASS_REGISTRY)}"
        )
    return _PASS_REGISTRY[name]


def get_pass(name: str, **options) -> ModulePass:
    """Instantiate a registered pass (with declarative option values)."""
    return get_pass_class(name).from_options(**options)


def parse_pipeline(spec: str) -> PassManager:
    """Build a pass manager from a textual spec (see
    :meth:`PassManager.parse`, which this forwards to)."""
    return PassManager.parse(spec)


def registered_passes() -> list[str]:
    return sorted(_PASS_REGISTRY)

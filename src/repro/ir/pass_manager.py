"""Pass management.

A :class:`ModulePass` transforms a module in place; the
:class:`PassManager` runs an ordered pipeline, optionally verifying between
passes and recording IR snapshots (used by the Figure-2 pipeline-trace
benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ir.core import IRError, Operation
from repro.ir.printer import print_op
from repro.ir.verifier import verify


class ModulePass:
    """Base class for module-level transformations."""

    #: Pipeline name, e.g. ``"lower-omp-mapped-data"``.
    name: str = "unnamed-pass"

    def apply(self, module: Operation) -> None:
        raise NotImplementedError


@dataclass
class PassTrace:
    """Record of one pass execution (for pipeline introspection)."""

    pass_name: str
    duration_s: float
    ir_after: str | None = None


@dataclass
class PassManager:
    """Runs a pipeline of passes over a module."""

    passes: list[ModulePass] = field(default_factory=list)
    verify_each: bool = True
    capture_ir: bool = False
    traces: list[PassTrace] = field(default_factory=list)

    def add(self, *passes: ModulePass) -> "PassManager":
        self.passes.extend(passes)
        return self

    def run(self, module: Operation) -> None:
        if self.verify_each:
            verify(module)
        for p in self.passes:
            start = time.perf_counter()
            p.apply(module)
            duration = time.perf_counter() - start
            if self.verify_each:
                try:
                    verify(module)
                except IRError as err:
                    raise IRError(
                        f"verification failed after pass '{p.name}': {err}"
                    ) from err
            self.traces.append(
                PassTrace(
                    p.name,
                    duration,
                    print_op(module) if self.capture_ir else None,
                )
            )
        if self.passes:
            # the pipeline mutated the module in place: stale compiled
            # artifacts and loop analyses must not survive it
            from repro.ir.compile import invalidate_compilation

            invalidate_compilation(module)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]


_PASS_REGISTRY: dict[str, Callable[[], ModulePass]] = {}


def register_pass(factory: Callable[[], ModulePass]) -> Callable[[], ModulePass]:
    """Register a pass factory under its ``name`` for pipeline-by-name
    construction (decorator-friendly)."""
    instance = factory()
    _PASS_REGISTRY[instance.name] = factory
    return factory


def get_pass(name: str) -> ModulePass:
    if name not in _PASS_REGISTRY:
        raise KeyError(
            f"unknown pass {name!r}; registered: {sorted(_PASS_REGISTRY)}"
        )
    return _PASS_REGISTRY[name]()


def parse_pipeline(spec: str) -> PassManager:
    """Build a pass manager from ``"pass-a,pass-b,pass-c"``."""
    pm = PassManager()
    for name in spec.split(","):
        name = name.strip()
        if name:
            pm.add(get_pass(name))
    return pm


def registered_passes() -> list[str]:
    return sorted(_PASS_REGISTRY)

"""Parser for the generic textual form produced by :mod:`repro.ir.printer`.

Supports round-tripping every dialect in the project; ops whose name is not
registered in the :class:`~repro.ir.core.Context` become
:class:`~repro.ir.core.UnregisteredOp`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from repro.ir.core import (
    Block,
    Context,
    Operation,
    Region,
    SSAValue,
    UnregisteredOp,
    default_context,
)
from repro.ir.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TypeAttribute,
)


class ParseError(Exception):
    """Raised on malformed IR text."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(
            message if line < 0 else f"line {line}: {message}"
        )
        self.position = position
        self.line = line


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|//[^\n]*)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<percent>%[A-Za-z0-9_.\-]+(\#\d+)?)
    | (?P<at>@[A-Za-z0-9_.\-$]+)
    | (?P<caret>\^[A-Za-z0-9_]*)
    | (?P<exclaim>![A-Za-z0-9_.]+)
    | (?P<float>-?\d+\.\d*(e[+-]?\d+)?|-?\d+e[+-]?\d+)
    | (?P<int>-?\d+)
    | (?P<arrow>->)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_.$]*)
    | (?P<punct>[(){}<>\[\],=:#?x])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str
    text: str
    pos: int
    line: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, line)
        kind = match.lastgroup or ""
        value = match.group()
        line += value.count("\n")
        if kind != "ws":
            tokens.append(Token(kind, value, pos, line))
        pos = match.end()
    tokens.append(Token("eof", "", pos, line))
    return tokens


#: Registry of dialect-specific opaque types, keyed by ``!dialect.name``.
DIALECT_TYPES: dict[str, TypeAttribute] = {}


def register_dialect_type(name: str, instance: TypeAttribute) -> None:
    """Register an opaque dialect type for the parser (e.g.
    ``!device.kernelhandle``)."""
    DIALECT_TYPES[name] = instance


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, context: Context | None = None):
        self.tokens = tokenize(text)
        self.index = 0
        self.context = context or default_context()
        self.value_map: dict[str, SSAValue] = {}
        self._ensure_dialect_types()

    @staticmethod
    def _ensure_dialect_types() -> None:
        if not DIALECT_TYPES:
            # Populate opaque types from the dialect packages lazily.
            from repro.dialects import register_parser_types

            register_parser_types(register_dialect_type)

    # -- token helpers -------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tok
        self.index += 1
        return token

    def check(self, text: str) -> bool:
        return self.tok.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(
                f"expected {text!r}, found {self.tok.text!r}",
                self.tok.pos,
                self.tok.line,
            )
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.tok.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.tok.text!r}",
                self.tok.pos,
                self.tok.line,
            )
        return self.advance()

    # -- entry ----------------------------------------------------------------

    def parse_module(self) -> Operation:
        op = self.parse_op()
        if self.tok.kind != "eof":
            raise ParseError(
                f"trailing input: {self.tok.text!r}", self.tok.pos, self.tok.line
            )
        return op

    # -- operations --------------------------------------------------------------

    def parse_op(self) -> Operation:
        result_names: list[str] = []
        if self.tok.kind == "percent":
            result_names.append(self.advance().text)
            while self.accept(","):
                result_names.append(self.expect_kind("percent").text)
            self.expect("=")
        name_token = self.expect_kind("string")
        op_name = name_token.text[1:-1]

        self.expect("(")
        operand_names: list[str] = []
        if not self.check(")"):
            operand_names.append(self.expect_kind("percent").text)
            while self.accept(","):
                operand_names.append(self.expect_kind("percent").text)
        self.expect(")")

        attributes: dict[str, Attribute] = {}
        if self.accept("<"):
            self.expect("{")
            if not self.check("}"):
                while True:
                    key, attr = self.parse_attr_entry()
                    attributes[key] = attr
                    if not self.accept(","):
                        break
            self.expect("}")
            self.expect(">")

        regions: list[Region] = []
        if self.check("(") and self._peek_is_region():
            self.expect("(")
            regions.append(self.parse_region())
            while self.accept(","):
                regions.append(self.parse_region())
            self.expect(")")

        self.expect(":")
        self.expect("(")
        in_types: list[TypeAttribute] = []
        if not self.check(")"):
            in_types.append(self.parse_type())
            while self.accept(","):
                in_types.append(self.parse_type())
        self.expect(")")
        self.expect("->")
        self.expect("(")
        out_types: list[TypeAttribute] = []
        if not self.check(")"):
            out_types.append(self.parse_type())
            while self.accept(","):
                out_types.append(self.parse_type())
        self.expect(")")

        if len(out_types) != len(result_names):
            raise ParseError(
                f"op {op_name!r} declares {len(result_names)} results but "
                f"signature has {len(out_types)}",
                name_token.pos,
                name_token.line,
            )
        operands = []
        for operand_name in operand_names:
            if operand_name not in self.value_map:
                raise ParseError(
                    f"use of undefined value {operand_name}",
                    name_token.pos,
                    name_token.line,
                )
            operands.append(self.value_map[operand_name])

        op = self._build_op(op_name, operands, out_types, attributes, regions)
        for result_name, result in zip(result_names, op.results):
            self.value_map[result_name] = result
            hint = result_name[1:]
            if not hint.isdigit():
                result.name_hint = hint
        return op

    def _peek_is_region(self) -> bool:
        # Lookahead: "(" "{" means regions; "(" type/")" means signature —
        # but the signature is always preceded by ":", so any "(" here that
        # is followed by "{" is a region list.
        return (
            self.index + 1 < len(self.tokens)
            and self.tokens[self.index + 1].text == "{"
        )

    def _build_op(
        self,
        op_name: str,
        operands: list[SSAValue],
        result_types: list[TypeAttribute],
        attributes: dict[str, Attribute],
        regions: list[Region],
    ) -> Operation:
        op_cls = self.context.get_op(op_name)
        if op_cls is None:
            return UnregisteredOp(
                op_name,
                operands=operands,
                result_types=result_types,
                attributes=attributes,
                regions=regions,
            )
        op = object.__new__(op_cls)
        Operation.__init__(
            op,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            regions=regions,
        )
        return op

    # -- regions and blocks ---------------------------------------------------------

    def parse_region(self) -> Region:
        self.expect("{")
        region = Region()
        # Entry block: may start with ops directly (no header) or with ^bb.
        if not self.check("}") and self.tok.kind != "caret":
            block = Block()
            region.add_block(block)
            while not self.check("}") and self.tok.kind != "caret":
                block.add_op(self.parse_op())
        while self.tok.kind == "caret":
            region.add_block(self.parse_block())
        self.expect("}")
        return region

    def parse_block(self) -> Block:
        self.expect_kind("caret")
        block = Block()
        if self.accept("("):
            while not self.check(")"):
                value_name = self.expect_kind("percent").text
                self.expect(":")
                ty = self.parse_type()
                arg = block.add_arg(ty)
                hint = value_name[1:]
                if not hint.isdigit():
                    arg.name_hint = hint
                self.value_map[value_name] = arg
                if not self.accept(","):
                    break
            self.expect(")")
        self.expect(":")
        while not self.check("}") and self.tok.kind != "caret":
            block.add_op(self.parse_op())
        return block

    # -- attributes ---------------------------------------------------------------

    def parse_attr_entry(self) -> tuple[str, Attribute]:
        key = self.expect_kind("ident").text
        self.expect("=")
        return key, self.parse_attribute()

    def parse_attribute(self) -> Attribute:
        tok = self.tok
        if tok.kind == "string":
            self.advance()
            return StringAttr(self._unescape(tok.text[1:-1]))
        if tok.kind == "at":
            self.advance()
            return SymbolRefAttr(tok.text[1:])
        if tok.kind in ("int", "float"):
            return self._parse_number_attr()
        if tok.text == "true":
            self.advance()
            return BoolAttr(True)
        if tok.text == "false":
            self.advance()
            return BoolAttr(False)
        if tok.text == "unit":
            self.advance()
            return UnitAttr()
        if tok.text == "[":
            self.advance()
            elements: list[Attribute] = []
            if not self.check("]"):
                elements.append(self.parse_attribute())
                while self.accept(","):
                    elements.append(self.parse_attribute())
            self.expect("]")
            return ArrayAttr(elements)
        if tok.text == "{":
            self.advance()
            entries: dict[str, Attribute] = {}
            if not self.check("}"):
                while True:
                    key, attr = self.parse_attr_entry()
                    entries[key] = attr
                    if not self.accept(","):
                        break
            self.expect("}")
            return DictionaryAttr(entries)
        if tok.text == "array":
            return self._parse_dense_array()
        # Otherwise: a type used in attribute position.
        ty = self.parse_type()
        return TypeAttr(ty)

    def _parse_number_attr(self) -> Attribute:
        tok = self.advance()
        is_float = tok.kind == "float"
        if self.accept(":"):
            ty = self.parse_type()
            if isinstance(ty, FloatType):
                return FloatAttr(float(tok.text), ty.width)
            if isinstance(ty, IndexType):
                return IntegerAttr(int(tok.text), 0)
            if isinstance(ty, IntegerType):
                return IntegerAttr(int(tok.text), ty.width)
            raise ParseError(
                f"invalid numeric attribute type {ty.print()}", tok.pos, tok.line
            )
        if is_float:
            return FloatAttr(float(tok.text), 64)
        return IntegerAttr(int(tok.text), 64)

    def _parse_dense_array(self) -> DenseArrayAttr:
        self.expect("array")
        self.expect("<")
        elem = self.expect_kind("ident").text  # e.g. i64
        width = int(elem[1:])
        values: list[int] = []
        if self.accept(":"):
            values.append(int(self.expect_kind("int").text))
            while self.accept(","):
                values.append(int(self.expect_kind("int").text))
        self.expect(">")
        return DenseArrayAttr(values, width)

    @staticmethod
    def _unescape(text: str) -> str:
        return text.replace('\\"', '"').replace("\\\\", "\\")

    # -- types -----------------------------------------------------------------------

    def parse_type(self) -> TypeAttribute:
        tok = self.tok
        if tok.kind == "exclaim":
            self.advance()
            name = tok.text
            if name not in DIALECT_TYPES:
                raise ParseError(f"unknown dialect type {name}", tok.pos, tok.line)
            return DIALECT_TYPES[name]
        if tok.text == "(":
            return self._parse_function_type()
        ident = self.expect_kind("ident").text
        if ident == "index":
            return IndexType()
        if ident == "none":
            return NoneType()
        if re.fullmatch(r"i\d+", ident):
            return IntegerType(int(ident[1:]))
        if re.fullmatch(r"f(32|64)", ident):
            return FloatType(int(ident[1:]))
        if ident == "memref":
            return self._parse_memref_type()
        raise ParseError(f"unknown type {ident!r}", tok.pos, tok.line)

    def _parse_function_type(self) -> FunctionType:
        self.expect("(")
        ins: list[TypeAttribute] = []
        if not self.check(")"):
            ins.append(self.parse_type())
            while self.accept(","):
                ins.append(self.parse_type())
        self.expect(")")
        self.expect("->")
        outs: list[TypeAttribute] = []
        if self.accept("("):
            if not self.check(")"):
                outs.append(self.parse_type())
                while self.accept(","):
                    outs.append(self.parse_type())
            self.expect(")")
        else:
            outs.append(self.parse_type())
        return FunctionType(ins, outs)

    _MEMREF_SPEC_RE = re.compile(
        r"^(?P<dims>((\?|\d+)x)*)(?P<elem>i\d+|f32|f64|index)$"
    )

    def _parse_memref_type(self) -> MemRefType:
        # The shape spec ("100x50xf64") tokenizes irregularly because "x"
        # glues onto neighbouring identifiers, so gather the raw token texts
        # up to the closing ">" or the ", space" suffix and regex-match.
        self.expect("<")
        parts: list[str] = []
        while self.tok.text not in (",", ">"):
            parts.append(self.advance().text)
        spec = "".join(parts)
        match = self._MEMREF_SPEC_RE.match(spec)
        if match is None:
            raise ParseError(
                f"invalid memref spec {spec!r}", self.tok.pos, self.tok.line
            )
        dims = match.group("dims")
        shape = [
            DYNAMIC if d == "?" else int(d)
            for d in dims.split("x")
            if d != ""
        ]
        elem_text = match.group("elem")
        if elem_text == "index":
            elem: TypeAttribute = IndexType()
        elif elem_text.startswith("i"):
            elem = IntegerType(int(elem_text[1:]))
        else:
            elem = FloatType(int(elem_text[1:]))
        space = 0
        if self.accept(","):
            space_tok = self.expect_kind("int")
            space = int(space_tok.text)
            self.expect(":")
            self.parse_type()  # the i32 annotation
        self.expect(">")
        return MemRefType(elem, shape, space)


def parse_module(text: str, context: Context | None = None) -> Operation:
    """Parse a textual module (or any single top-level op)."""
    return Parser(text, context).parse_module()

"""Type system: types are attributes (as in MLIR).

Provides the builtin types used throughout the pipeline: integers, floats,
``index``, function types and the all-important ``memref`` type with an
optional *memory space* (used by the ``device`` dialect to place buffers in
HBM banks or DDR on the U280).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ir.attributes import Attribute

#: Sentinel extent for a dynamic memref dimension (MLIR prints it as ``?``).
DYNAMIC = -1


class TypeAttribute(Attribute):
    """Marker base class: an attribute usable as the type of an SSA value."""

    name = "type"


@dataclass(frozen=True)
class NoneType(TypeAttribute):
    """Unit/none type (used for ops with token-like results)."""

    name = "none"

    def print(self) -> str:
        return "none"


@dataclass(frozen=True)
class IndexType(TypeAttribute):
    """Platform-width integer used for loop bounds and subscripts."""

    name = "index"

    def print(self) -> str:
        return "index"


@dataclass(frozen=True)
class IntegerType(TypeAttribute):
    """Fixed-width signless integer, e.g. ``i32``."""

    name = "integer_type"
    width: int = 32

    def print(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(TypeAttribute):
    """IEEE float of width 32 or 64."""

    name = "float_type"
    width: int = 64

    def print(self) -> str:
        return f"f{self.width}"


# Canonical singletons — use these instead of constructing fresh instances.
i1 = IntegerType(1)
i8 = IntegerType(8)
i32 = IntegerType(32)
i64 = IntegerType(64)
f32 = FloatType(32)
f64 = FloatType(64)
index = IndexType()
none = NoneType()


@dataclass(frozen=True)
class FunctionType(TypeAttribute):
    """``(inputs) -> results`` type for func ops."""

    name = "function_type"
    inputs: tuple[TypeAttribute, ...] = ()
    results: tuple[TypeAttribute, ...] = ()

    def __init__(
        self,
        inputs: Sequence[TypeAttribute] = (),
        results: Sequence[TypeAttribute] = (),
    ):
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "results", tuple(results))

    def print(self) -> str:
        ins = ", ".join(t.print() for t in self.inputs)
        if len(self.results) == 1:
            outs = self.results[0].print()
        else:
            outs = "(" + ", ".join(t.print() for t in self.results) + ")"
        return f"({ins}) -> {outs}"


@dataclass(frozen=True)
class MemRefType(TypeAttribute):
    """A shaped buffer reference.

    ``shape`` entries may be :data:`DYNAMIC`.  ``memory_space`` of 0 is the
    default (host) space; the device dialect uses spaces >= 1 for HBM banks
    and DDR channels, matching the paper's
    ``memref<100xf64, 1 : i32>`` examples.
    """

    name = "memref"
    element_type: TypeAttribute = f64
    shape: tuple[int, ...] = ()
    memory_space: int = 0

    def __init__(
        self,
        element_type: TypeAttribute,
        shape: Sequence[int] = (),
        memory_space: int = 0,
    ):
        object.__setattr__(self, "element_type", element_type)
        object.__setattr__(self, "shape", tuple(int(s) for s in shape))
        object.__setattr__(self, "memory_space", int(memory_space))

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(s != DYNAMIC for s in self.shape)

    def num_elements(self) -> int:
        """Static element count; raises if any dimension is dynamic."""
        if not self.has_static_shape:
            raise ValueError(f"memref {self.print()} has dynamic shape")
        n = 1
        for s in self.shape:
            n *= s
        return n

    def with_memory_space(self, space: int) -> "MemRefType":
        return MemRefType(self.element_type, self.shape, space)

    def print(self) -> str:
        dims = "".join(
            ("?" if s == DYNAMIC else str(s)) + "x" for s in self.shape
        )
        space = f", {self.memory_space} : i32" if self.memory_space != 0 else ""
        return f"memref<{dims}{self.element_type.print()}{space}>"


def is_scalar_type(ty: TypeAttribute) -> bool:
    return isinstance(ty, (IntegerType, FloatType, IndexType))


def is_float_type(ty: TypeAttribute) -> bool:
    return isinstance(ty, FloatType)


def is_integer_like(ty: TypeAttribute) -> bool:
    return isinstance(ty, (IntegerType, IndexType))

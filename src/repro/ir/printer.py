"""Textual IR printer (MLIR generic-form style).

Prints operations as::

    %0 = "arith.addf"(%a, %b) <{fastmath = "contract"}> : (f32, f32) -> f32

matching the flavour used in the paper's listings.  The output of
:class:`Printer` round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

import io

from repro.ir.core import Block, Operation, Region, SSAValue


class Printer:
    """Stateful printer assigning stable SSA names."""

    def __init__(self, *, use_name_hints: bool = True):
        self._names: dict[SSAValue, str] = {}
        self._used_names: set[str] = set()
        self._next_id = 0
        self._use_name_hints = use_name_hints

    # -- naming ----------------------------------------------------------------

    def _fresh_name(self, value: SSAValue) -> str:
        hint = value.name_hint if self._use_name_hints else None
        if hint:
            name = hint
            counter = 0
            while name in self._used_names:
                counter += 1
                name = f"{hint}_{counter}"
        else:
            name = str(self._next_id)
            self._next_id += 1
        self._used_names.add(name)
        return name

    def name_of(self, value: SSAValue) -> str:
        if value not in self._names:
            self._names[value] = self._fresh_name(value)
        return f"%{self._names[value]}"

    # -- entry points ------------------------------------------------------------

    def print_op_to_string(self, op: Operation) -> str:
        out = io.StringIO()
        self._print_op(op, out, indent=0)
        return out.getvalue()

    def print_module(self, op: Operation) -> str:
        return self.print_op_to_string(op)

    # -- internals ---------------------------------------------------------------

    def _print_op(self, op: Operation, out: io.StringIO, indent: int) -> None:
        pad = "  " * indent
        out.write(pad)
        if op.results:
            names = ", ".join(self.name_of(r) for r in op.results)
            out.write(f"{names} = ")
        out.write(f'"{self._op_name(op)}"')
        out.write("(")
        out.write(", ".join(self.name_of(o) for o in op.operands))
        out.write(")")
        if op.attributes:
            inner = ", ".join(
                f"{key} = {attr.print()}"
                for key, attr in sorted(op.attributes.items())
            )
            out.write(f" <{{{inner}}}>")
        if op.regions:
            out.write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    out.write(", ")
                self._print_region(region, out, indent)
            out.write(")")
        in_types = ", ".join(o.type.print() for o in op.operands)
        out_types = ", ".join(r.type.print() for r in op.results)
        out.write(f" : ({in_types}) -> ({out_types})")
        out.write("\n")

    def _op_name(self, op: Operation) -> str:
        from repro.ir.core import UnregisteredOp

        if isinstance(op, UnregisteredOp):
            return op.op_name
        return op.name

    def _print_region(self, region: Region, out: io.StringIO, indent: int) -> None:
        out.write("{\n")
        for i, block in enumerate(region.blocks):
            self._print_block(block, out, indent + 1, header=(i > 0 or bool(block.args)))
        out.write("  " * indent + "}")

    def _print_block(
        self, block: Block, out: io.StringIO, indent: int, header: bool
    ) -> None:
        if header:
            pad = "  " * indent
            args = ", ".join(
                f"{self.name_of(a)}: {a.type.print()}" for a in block.args
            )
            out.write(f"{pad}^bb(" + args + "):\n")
        for op in block.ops:
            self._print_op(op, out, indent + (1 if header else 0))


def print_op(op: Operation, *, use_name_hints: bool = True) -> str:
    """Convenience one-shot printer."""
    return Printer(use_name_hints=use_name_hints).print_op_to_string(op)

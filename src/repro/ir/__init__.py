"""MLIR/xDSL-style IR infrastructure.

Public surface: the core structures (:class:`Operation`, :class:`Block`,
:class:`Region`, :class:`SSAValue`), the attribute/type hierarchy, the
builder, printer/parser, verifier, rewrite driver, pass manager and the
reference interpreter.
"""

from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    attr_from_python,
)
from repro.ir.builder import Builder, InsertPoint, build_region
from repro.ir.core import (
    Block,
    BlockArgument,
    Context,
    Dialect,
    IRError,
    Operation,
    OpResult,
    Region,
    SSAValue,
    UnregisteredOp,
    Use,
    default_context,
)
from repro.ir.interpreter import Interpreter, InterpreterError, Returned, Yielded, impl
from repro.ir.parser import ParseError, Parser, parse_module
from repro.ir.pass_manager import (
    Instrumentation,
    ModulePass,
    PassManager,
    PassOption,
    PassTrace,
    PipelineParseError,
    PipelineStage,
    get_pass,
    get_pass_class,
    parse_pipeline,
    register_pass,
    registered_passes,
)
from repro.ir.printer import Printer, print_op
from repro.ir.rewriting import GreedyPatternRewriter, PatternRewriter, RewritePattern
from repro.ir.types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TypeAttribute,
    f32,
    f64,
    i1,
    i8,
    i32,
    i64,
    index,
    none,
)
from repro.ir.verifier import VerificationError, verify

__all__ = [
    "ArrayAttr", "Attribute", "BoolAttr", "DenseArrayAttr", "DictionaryAttr",
    "FloatAttr", "IntegerAttr", "StringAttr", "SymbolRefAttr", "TypeAttr",
    "UnitAttr", "attr_from_python",
    "Builder", "InsertPoint", "build_region",
    "Block", "BlockArgument", "Context", "Dialect", "IRError", "Operation",
    "OpResult", "Region", "SSAValue", "UnregisteredOp", "Use",
    "default_context",
    "Interpreter", "InterpreterError", "Returned", "Yielded", "impl",
    "ParseError", "Parser", "parse_module",
    "Instrumentation", "ModulePass", "PassManager", "PassOption",
    "PassTrace", "PipelineParseError", "PipelineStage", "get_pass",
    "get_pass_class", "parse_pipeline", "register_pass",
    "registered_passes",
    "Printer", "print_op",
    "GreedyPatternRewriter", "PatternRewriter", "RewritePattern",
    "DYNAMIC", "FloatType", "FunctionType", "IndexType", "IntegerType",
    "MemRefType", "NoneType", "TypeAttribute",
    "f32", "f64", "i1", "i8", "i32", "i64", "index", "none",
    "VerificationError", "verify",
]

"""Pattern rewriting infrastructure.

:class:`RewritePattern` subclasses implement ``match_and_rewrite`` and are
applied to a fixed point by :class:`GreedyPatternRewriter`.  The driver is
worklist-based: patterns are indexed by their ``op_name`` filter, each
rewrite enqueues only the ops it may have affected (new ops, users of
replacement values, defs of erased operands), and the module is walked
exactly once at the start — not once per fixed-point iteration.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.ir.attributes import IntegerAttr
from repro.ir.builder import Builder, InsertPoint
from repro.ir.core import (
    LOC_ATTR,
    Block,
    IRError,
    Operation,
    OpResult,
    Region,
    SSAValue,
)


class PatternRewriter:
    """Mutation API handed to patterns; records whether anything changed
    and which ops the worklist driver must revisit.

    Ops inserted through the rewriter inherit the matched op's ``loc``
    attribute (when they don't carry one already), so source locations
    survive lowering rewrites.
    """

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.changed = False
        #: ops (possibly) affected by this rewrite, for re-enqueueing
        self.affected_ops: list[Operation] = []
        self._builder = Builder(InsertPoint.before(current_op))
        loc = current_op.attributes.get(LOC_ATTR)
        if isinstance(loc, IntegerAttr):
            self._builder.loc = loc.value

    def _stamp_loc(self, op: Operation) -> None:
        if self._builder.loc > 0 and LOC_ATTR not in op.attributes:
            op.attributes[LOC_ATTR] = IntegerAttr.i64(self._builder.loc)

    # -- insertion --------------------------------------------------------------

    def insert_op_before_matched(self, *ops: Operation) -> None:
        for op in ops:
            self._builder.insert(op)
        self.affected_ops.extend(ops)
        self.changed = bool(ops) or self.changed

    def insert_op_after_matched(self, *ops: Operation) -> None:
        if not ops:
            return
        anchor = self.current_op
        block = anchor.parent
        index = block.index_of(anchor)  # type: ignore[union-attr]
        for op in ops:
            block.insert_op_after(op, anchor, anchor_index=index)  # type: ignore[union-attr]
            self._stamp_loc(op)
            anchor = op
            index += 1
        self.affected_ops.extend(ops)
        self.changed = True

    def insert_op_at_end(self, block: Block, *ops: Operation) -> None:
        for op in ops:
            block.add_op(op)
            self._stamp_loc(op)
        self.affected_ops.extend(ops)
        self.changed = bool(ops) or self.changed

    # -- replacement --------------------------------------------------------------

    def _note_operand_defs(self, op: Operation) -> None:
        """Queue the defs of ``op``'s operands: erasing a use may expose
        dead code or new match opportunities at the producer."""
        for operand in op.operands:
            if isinstance(operand, OpResult):
                self.affected_ops.append(operand.op)

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Replace the matched op with ``new_ops``.

        ``new_results`` defaults to the results of the last new op.  ``None``
        entries mean the corresponding old result must be unused.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        self.insert_op_before_matched(*new_ops)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(self.current_op.results):
            raise IRError(
                f"replace_matched_op: expected {len(self.current_op.results)} "
                f"replacement values, got {len(new_results)}"
            )
        self._note_operand_defs(self.current_op)
        for old, new in zip(self.current_op.results, new_results):
            if new is None:
                if old.has_uses:
                    raise IRError(
                        "replacement value is None but old result has uses"
                    )
                continue
            old.replace_by(new)
            # users migrated onto the new value may now match patterns
            for use in new.uses:
                self.affected_ops.append(use.operation)
        self.current_op.erase()
        self.changed = True

    def erase_matched_op(self) -> None:
        self._note_operand_defs(self.current_op)
        self.current_op.erase()
        self.changed = True

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        old.replace_by(new)
        for use in new.uses:
            self.affected_ops.append(use.operation)
        self.changed = True

    # -- region surgery -------------------------------------------------------------

    def inline_region_before_matched(
        self, region: Region, arg_values: Sequence[SSAValue]
    ) -> None:
        """Inline the single block of ``region`` before the matched op,
        substituting block arguments (terminator must be pre-removed)."""
        block = region.block
        if len(arg_values) != len(block.args):
            raise IRError("inline: argument count mismatch")
        for arg, value in zip(block.args, arg_values):
            arg.replace_by(value)
        ops = list(block.ops)
        for op in ops:
            op.detach()
            self._builder.insert(op)
        self.affected_ops.extend(ops)
        self.changed = True

    def notify_changed(self) -> None:
        self.changed = True
        # no structured information: conservatively revisit the op itself
        # and the users of its results
        self.affected_ops.append(self.current_op)
        for result in self.current_op.results:
            for use in result.uses:
                self.affected_ops.append(use.operation)


class RewritePattern:
    """Base class for rewrite patterns.

    ``match_and_rewrite`` mutates the IR through ``rewriter`` when the
    pattern applies, otherwise leaves it untouched.  All mutation must go
    through the :class:`PatternRewriter` methods (in particular use
    ``rewriter.replace_all_uses_with``, not ``SSAValue.replace_by``): the
    worklist driver revisits only the ops those methods record, so a
    bypassed mutation can leave a match undiscovered.
    """

    #: Optional op-name filter; the driver indexes patterns by it so an op
    #: only sees the patterns that can match it.
    op_name: str | None = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyPatternRewriter:
    """Applies a set of patterns until no more changes occur.

    Worklist driver: the root is walked once to seed the queue; afterwards
    only ops touched by a rewrite are revisited.  ``max_iterations`` keeps
    its historical meaning as a convergence bound — the driver allows
    roughly ``max_iterations`` full-module's worth of rewrites before
    declaring divergence.
    """

    def __init__(
        self,
        patterns: Iterable[RewritePattern],
        *,
        max_iterations: int = 64,
    ):
        self.patterns = list(patterns)
        self.max_iterations = max_iterations
        #: op_name -> applicable patterns (filtered + generic, in original
        #: relative order), built lazily
        self._by_name: dict[str, list[RewritePattern]] = {}

    def _patterns_for(self, op_name: str) -> list[RewritePattern]:
        cached = self._by_name.get(op_name)
        if cached is None:
            cached = self._by_name[op_name] = [
                p
                for p in self.patterns
                if p.op_name is None or p.op_name == op_name
            ]
        return cached

    def rewrite(self, root: Operation) -> bool:
        """Run to fixed point. Returns True if anything changed."""
        worklist: deque[Operation] = deque()
        queued: set[int] = set()

        def enqueue(op: Operation) -> None:
            for nested in op.walk():
                if id(nested) not in queued:
                    queued.add(id(nested))
                    worklist.append(nested)

        for op in root.walk():
            if op is root:
                continue
            if id(op) not in queued:
                queued.add(id(op))
                worklist.append(op)

        budget = self.max_iterations * (len(queued) + 8)
        rewrites = 0
        changed_any = False
        while worklist:
            op = worklist.popleft()
            queued.discard(id(op))
            if op.parent is None or op is root:
                continue  # erased/detached, or the root itself
            for pattern in self._patterns_for(op.name):
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.changed:
                    changed_any = True
                    rewrites += 1
                    if rewrites > budget:
                        raise IRError(
                            "greedy rewriter did not converge in "
                            f"{self.max_iterations} iterations"
                        )
                    for affected in rewriter.affected_ops:
                        if affected.parent is not None:
                            enqueue(affected)
                    if op.parent is not None:
                        enqueue(op)  # still attached: may match again
                    break  # the op may be gone; take it from the queue
        if changed_any:
            from repro.ir.compile import invalidate_compilation

            invalidate_compilation(root)
        return changed_any

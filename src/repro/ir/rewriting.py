"""Pattern rewriting infrastructure.

:class:`RewritePattern` subclasses implement ``match_and_rewrite`` and are
applied to a fixed point by :class:`GreedyPatternRewriter` — a simplified
but faithful analogue of MLIR's greedy driver.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.builder import Builder, InsertPoint
from repro.ir.core import Block, IRError, Operation, Region, SSAValue


class PatternRewriter:
    """Mutation API handed to patterns; records whether anything changed."""

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.changed = False
        self._builder = Builder(InsertPoint.before(current_op))

    # -- insertion --------------------------------------------------------------

    def insert_op_before_matched(self, *ops: Operation) -> None:
        for op in ops:
            self._builder.insert(op)
        self.changed = bool(ops) or self.changed

    def insert_op_after_matched(self, *ops: Operation) -> None:
        anchor = self.current_op
        for op in ops:
            anchor.parent.insert_op_after(op, anchor)  # type: ignore[union-attr]
            anchor = op
        self.changed = bool(ops) or self.changed

    def insert_op_at_end(self, block: Block, *ops: Operation) -> None:
        for op in ops:
            block.add_op(op)
        self.changed = bool(ops) or self.changed

    # -- replacement --------------------------------------------------------------

    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Sequence[SSAValue | None] | None = None,
    ) -> None:
        """Replace the matched op with ``new_ops``.

        ``new_results`` defaults to the results of the last new op.  ``None``
        entries mean the corresponding old result must be unused.
        """
        if isinstance(new_ops, Operation):
            new_ops = [new_ops]
        self.insert_op_before_matched(*new_ops)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(self.current_op.results):
            raise IRError(
                f"replace_matched_op: expected {len(self.current_op.results)} "
                f"replacement values, got {len(new_results)}"
            )
        for old, new in zip(self.current_op.results, new_results):
            if new is None:
                if old.has_uses:
                    raise IRError(
                        "replacement value is None but old result has uses"
                    )
                continue
            old.replace_by(new)
        self.current_op.erase()
        self.changed = True

    def erase_matched_op(self) -> None:
        self.current_op.erase()
        self.changed = True

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        old.replace_by(new)
        self.changed = True

    # -- region surgery -------------------------------------------------------------

    def inline_region_before_matched(
        self, region: Region, arg_values: Sequence[SSAValue]
    ) -> None:
        """Inline the single block of ``region`` before the matched op,
        substituting block arguments (terminator must be pre-removed)."""
        block = region.block
        if len(arg_values) != len(block.args):
            raise IRError("inline: argument count mismatch")
        for arg, value in zip(block.args, arg_values):
            arg.replace_by(value)
        for op in list(block.ops):
            op.detach()
            self._builder.insert(op)
        self.changed = True

    def notify_changed(self) -> None:
        self.changed = True


class RewritePattern:
    """Base class for rewrite patterns.

    ``match_and_rewrite`` mutates the IR through ``rewriter`` when the
    pattern applies, otherwise leaves it untouched.
    """

    #: Optional op-name filter; the driver skips non-matching ops cheaply.
    op_name: str | None = None

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyPatternRewriter:
    """Applies a set of patterns until no more changes occur."""

    def __init__(
        self,
        patterns: Iterable[RewritePattern],
        *,
        max_iterations: int = 64,
    ):
        self.patterns = list(patterns)
        self.max_iterations = max_iterations

    def rewrite(self, root: Operation) -> bool:
        """Run to fixed point. Returns True if anything changed."""
        changed_any = False
        for _ in range(self.max_iterations):
            changed = self._rewrite_once(root)
            changed_any |= changed
            if not changed:
                return changed_any
        raise IRError(
            f"greedy rewriter did not converge in {self.max_iterations} "
            "iterations"
        )

    def _rewrite_once(self, root: Operation) -> bool:
        changed = False
        # Snapshot the walk since patterns mutate the tree; newly created
        # ops are picked up on the next iteration.
        for op in list(root.walk()):
            if op.parent is None:
                # The root itself (patterns must not match it) or an op
                # already erased/detached by an earlier pattern.
                continue
            for pattern in self.patterns:
                if pattern.op_name is not None and pattern.op_name != op.name:
                    continue
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.changed:
                    changed = True
                    break  # op may be gone; move on
        return changed

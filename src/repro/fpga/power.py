"""Power models for the FPGA board and the CPU baseline.

The U280 model is static shell power plus a dynamic component that grows
with memory activity (log-saturating in the amount of data moved): the
board idles near 21 W and climbs to ~24-26 W under the paper's workloads
— roughly half the ~52-57 W a single active EPYC 7502 core costs at
package level (Tables 5/6).

All "measurement noise" is deterministic (hash-seeded), so benches are
reproducible run to run.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.fpga.resources import ResourceUsage, shell_usage


def _jitter(key: str, scale: float) -> float:
    """Deterministic pseudo-noise in [-scale, +scale]."""
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
    return (2.0 * unit - 1.0) * scale


@dataclass
class FpgaPowerModel:
    """Median board power for a kernel run."""

    static_w: float = 18.5
    #: dynamic power coefficient per decade of elements processed
    activity_w_per_decade: float = 0.95
    #: extra per % of fabric utilisation above the shell
    fabric_w_per_lut_pct: float = 0.05

    def median_power_w(
        self,
        work_elements: int,
        resources: ResourceUsage | None = None,
        label: str = "",
    ) -> float:
        work = max(work_elements, 10)
        power = self.static_w + self.activity_w_per_decade * math.log10(work)
        if resources is not None:
            shell = shell_usage()
            extra_pct = 100.0 * max(resources.luts - shell.luts, 0) / 1_303_680
            power += self.fabric_w_per_lut_pct * extra_pct
        power += _jitter(f"fpga:{label}:{work_elements}", 0.45)
        return power


@dataclass
class CpuPowerModel:
    """Per-core package power of the EPYC 7502 host."""

    idle_package_w: float = 45.0
    active_core_w: float = 10.0

    def median_power_w(self, work_elements: int, label: str = "") -> float:
        power = self.idle_package_w + self.active_core_w
        power += _jitter(f"cpu:{label}:{work_elements}", 2.2)
        return power

"""FPGA resource estimation for synthesized kernels.

Models Vitis HLS resource binding:

* the **shell** (static region: PCIe/XDMA, HBM controllers, clocking)
  dominates utilisation — 8.19 % LUT, 10.07 % BRAM, 9 DSPs before any
  kernel logic is added, which is why the paper's Tables 3/4 numbers sit
  just above those floors;
* each ``m_axi`` interface bundle adds adapter LUTs;
* floating-point operators are bound to *physical units*; when the
  achieved II exceeds 1 Vitis time-multiplexes, so the number of units is
  ``ceil(replication / II)`` (this is why SAXPY's unroll-by-10 barely
  moves LUT count — the memory-bound II lets one MAC serve all copies);
* **MAC mapping**: Vitis recognises the mul+add pattern produced by its
  own Clang frontend (our ``clang_mac`` idiom marker) and maps it onto a
  DSP cascade (12 DSPs); the IR from the Fortran flow misses the pattern
  and the MAC is built from LUTs (paper §4, Table 4 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.board import U280Resources

#: Static-region (shell) resources — calibrated so the shell-only design
#: reports LUT 8.19 %, BRAM 10.07 %, DSP 0.10 % on the U280.
SHELL_LUTS = 106_723
SHELL_BRAM = 203
SHELL_DSP = 9
SHELL_FF = 195_000

#: Adapter cost per m_axi interface bundle.
M_AXI_PORT_LUTS = 200
M_AXI_PORT_FF = 420
#: Register cost per s_axilite scalar argument.
AXILITE_ARG_LUTS = 10

#: Per-copy muxing/registering overhead when a loop is partially unrolled.
UNROLL_COPY_LUTS = 54

#: LUT cost of float operator instances when built from fabric.
FLOAT_OP_LUTS = {
    "arith.addf": 80,
    "arith.subf": 80,
    "arith.mulf": 220,
    "arith.divf": 780,
    "arith.minimumf": 60,
    "arith.maximumf": 60,
    "math.sqrt": 520,
    "math.exp": 900,
    "math.log": 950,
    "math.sin": 1100,
    "math.cos": 1100,
}
INT_OP_LUTS = {
    "arith.addi": 30,
    "arith.subi": 30,
    "arith.muli": 90,
    "arith.divsi": 430,
    "arith.remsi": 430,
    "arith.index_cast": 0,
    "arith.cmpi": 18,
    "arith.cmpf": 40,
    "arith.select": 16,
}

#: DSP-cascade MAC (the clang_mac idiom): replaces a mul+add pair.
MAC_DSP_COUNT = 12
MAC_DSP_LUTS = 39

#: Place-and-route budget for multi-compute-unit builds.  Vitis refuses
#: designs whose kernel logic pushes utilisation past the point where
#: routing congestion makes timing closure hopeless; 90 % of the device
#: is the conventional ceiling.  ``compute_units=N`` replicates every
#: kernel N×, so these budgets bound how far a kernel can be replicated.
CU_MAX_LUT_PCT = 90.0
CU_MAX_DSP_PCT = 90.0
CU_MAX_BRAM_PCT = 90.0


@dataclass
class ResourceUsage:
    """Absolute resource counts for a synthesized design."""

    luts: int = 0
    ffs: int = 0
    bram_36k: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.bram_36k + other.bram_36k,
            self.dsp + other.dsp,
        )

    def replicated(self, copies: int) -> "ResourceUsage":
        """Resources of ``copies`` physical instances of this design —
        the multi-compute-unit model: every CU is a full replica (its
        own pipeline, operators, ``m_axi`` adapters and buffers)."""
        return ResourceUsage(
            self.luts * copies,
            self.ffs * copies,
            self.bram_36k * copies,
            self.dsp * copies,
        )

    def percentages(self, totals: U280Resources) -> "ResourcePercentages":
        return ResourcePercentages(
            lut=100.0 * self.luts / totals.luts,
            bram=100.0 * self.bram_36k / totals.bram_36k,
            dsp=100.0 * self.dsp / totals.dsp,
        )


@dataclass
class ResourcePercentages:
    """Utilisation report in the paper's Table 3/4 format."""

    lut: float
    bram: float
    dsp: float

    def rounded(self) -> tuple[float, float, float]:
        return (round(self.lut, 2), round(self.bram, 2), round(self.dsp, 2))

    def __str__(self) -> str:
        return (
            f"LUT {self.lut:.2f}%  BRAM {self.bram:.2f}%  DSP {self.dsp:.2f}%"
        )


def shell_usage() -> ResourceUsage:
    """Resources consumed by the static region alone."""
    return ResourceUsage(SHELL_LUTS, SHELL_FF, SHELL_BRAM, SHELL_DSP)


@dataclass
class OperatorCount:
    """Physical operator instances required by one pipelined loop."""

    op_name: str
    replication: int  # logical instances (unroll copies)
    physical: int     # after II time-multiplex sharing
    dsp_mapped: bool = False


def cu_budget_violation(
    kernel_usage: ResourceUsage,
    totals: U280Resources,
    compute_units: int,
) -> str | None:
    """Why a ``compute_units``-way replication of ``kernel_usage`` does
    not fit the device, or ``None`` when it does.

    The replicated kernel logic sits on top of the static shell; the
    build is over budget when any of LUT/DSP/BRAM utilisation exceeds
    the ``CU_MAX_*_PCT`` place-and-route ceilings.
    """
    total = shell_usage() + kernel_usage.replicated(compute_units)
    pct = total.percentages(totals)
    for label, used, budget in (
        ("LUT", pct.lut, CU_MAX_LUT_PCT),
        ("DSP", pct.dsp, CU_MAX_DSP_PCT),
        ("BRAM", pct.bram, CU_MAX_BRAM_PCT),
    ):
        if used > budget:
            return (
                f"compute_units={compute_units} needs {label} "
                f"{used:.2f}% of the device, over the {budget:g}% "
                "place-and-route budget"
            )
    return None


def bram_blocks_for(num_bytes: int) -> int:
    """36Kb BRAM blocks needed for an on-chip buffer.

    Buffers that fit in LUTRAM (<= 1 KiB) cost no BRAM — reduction copy
    arrays stay in fabric.
    """
    if num_bytes <= 1024:
        return 0
    return -(-num_bytes // 4608)  # 36 Kbit = 4608 bytes, ceil

"""AMD Xilinx Alveo U280 board model.

All timing/resource constants of the simulated platform live here, in one
place, with the calibration rationale.  The *shape* of the paper's
Tables 1-6 emerges from the mechanisms (memory-bound pipelines, per-launch
implicit transfers, shell-dominated utilisation), while these constants
pin the absolute scale to the authors' testbed (U280 + Vitis 2020.2 +
EPYC 7502 host):

* ``kernel_clock_hz`` — Vitis default kernel clock (300 MHz).
* ``m_axi_access_cycles`` — cycles per non-burst ``m_axi`` access.  The
  flows in the paper do not infer bursts (scalar loads/stores through
  separate gmem bundles), so each access pays the full AXI round trip;
  16 cycles reproduces SAXPY's ~107 ns/element slope.
* PCIe DMA: piecewise-linear; small transfers (per-launch implicit maps,
  SGESL) see ~62 MB/s effective, large streaming transfers (SAXPY's three
  bulk arrays) ~6.4 GB/s.
* ``kernel_launch_overhead_s`` — OpenCL enqueue+dispatch per launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemorySpec:
    """One device memory space (HBM bank or DDR channel)."""

    name: str
    size_bytes: int
    bandwidth_bytes_per_s: float


@dataclass(frozen=True)
class U280Resources:
    """Total programmable resources of the U280 (xcu280 device)."""

    luts: int = 1_303_680
    ffs: int = 2_607_360
    bram_36k: int = 2_016
    uram: int = 960
    dsp: int = 9_024


@dataclass
class U280Board:
    """The simulated board: memories, clocks, transfer model."""

    resources: U280Resources = field(default_factory=U280Resources)
    kernel_clock_hz: float = 300e6
    #: memory spaces: index 0 is host DRAM; 1..16 HBM banks; 17 DDR.
    num_hbm_banks: int = 16
    #: per-bank HBM capacity (256 MiB on the U280).  Tests shrink this
    #: to exercise the datasets-larger-than-device-memory path that the
    #: streaming DMA mode exists for.
    hbm_bank_bytes: int = 256 * 2**20

    # -- calibrated timing constants (see module docstring) --------------------
    m_axi_access_cycles: int = 16
    pipeline_depth_cycles: int = 60
    kernel_launch_overhead_s: float = 2e-6
    #: PCIe DMA, two regimes (both latency + bytes/bw):
    #:  * small transfers (< 16 KiB) go through the pinned-small-buffer
    #:    path: ~160 MB/s effective — this is what each SGESL launch pays
    #:    for its per-k implicit maps and what makes Table 2 scale O(N^2);
    #:  * larger transfers use the XDMA engine: ~30 us setup + 6.4 GB/s,
    #:    the regime SAXPY's bulk arrays hit (Table 1).
    dma_small_latency_s: float = 0.44e-6
    dma_small_bw_bytes_per_s: float = 160e6
    dma_large_latency_s: float = 30e-6
    dma_large_bw_bytes_per_s: float = 6.4e9
    dma_small_threshold_bytes: int = 16 * 1024

    def memory_spaces(self) -> list[MemorySpec]:
        spaces = [MemorySpec("host", 220 * 2**30, 25e9)]
        spaces += [
            MemorySpec(f"HBM[{i}]", self.hbm_bank_bytes, 14.4e9)
            for i in range(self.num_hbm_banks)
        ]
        spaces.append(MemorySpec("DDR", 32 * 2**30, 19.2e9))
        return spaces

    def validate_memory_space(self, space: int) -> MemorySpec:
        spaces = self.memory_spaces()
        if not 0 <= space < len(spaces):
            raise ValueError(
                f"memory space {space} out of range 0..{len(spaces) - 1}"
            )
        return spaces[space]

    # -- timing model -----------------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.kernel_clock_hz

    def dma_time_s(self, num_bytes: int) -> float:
        """Host<->device transfer time (two-regime PCIe model)."""
        if num_bytes <= 0:
            return self.dma_small_latency_s
        if num_bytes < self.dma_small_threshold_bytes:
            return (
                self.dma_small_latency_s
                + num_bytes / self.dma_small_bw_bytes_per_s
            )
        return (
            self.dma_large_latency_s
            + num_bytes / self.dma_large_bw_bytes_per_s
        )

"""HLS scheduling: initiation intervals, pipeline structure, binding.

This is the core of the simulated Vitis HLS synthesis.  For every
``scf.for`` in a kernel it derives the *achieved* initiation interval:

``II = max(target II, dependence II, memory II)``

* dependence II comes from :mod:`repro.transforms.loop_analysis`
  (loop-carried recurrences / round-robin reduction distances);
* memory II models the AXI bottleneck: each ``m_axi`` bundle serves one
  outstanding non-burst access at a time, so a body issuing ``k``
  accesses to one bundle needs ``k * m_axi_access_cycles`` cycles per
  iteration — this is what makes both benchmark kernels memory-bound and
  why SAXPY's unroll-by-10 does not change the per-element runtime
  (paper Tables 1/3);
* on-chip buffers (allocas) are dual-ported BRAM/LUTRAM: II contribution
  ``ceil(accesses / 2)``.

The same walk performs *binding*: physical operator instances are
``ceil(replication / II)`` (Vitis time-multiplexes under large II), and
the ``clang_mac`` idiom is bound to DSP cascades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dialects import func, hls
from repro.fpga.board import U280Board
from repro.fpga.resources import (
    AXILITE_ARG_LUTS,
    FLOAT_OP_LUTS,
    INT_OP_LUTS,
    M_AXI_PORT_FF,
    M_AXI_PORT_LUTS,
    MAC_DSP_COUNT,
    MAC_DSP_LUTS,
    UNROLL_COPY_LUTS,
    OperatorCount,
    ResourceUsage,
    bram_blocks_for,
    shell_usage,
)
from repro.ir.core import Block, Operation, SSAValue
from repro.ir.types import MemRefType
from repro.transforms.loop_analysis import (
    DEFAULT_LATENCIES,
    float_chain_latency,
    min_initiation_interval,
    root_memref,
    walk_same_loop_level,
)


@dataclass
class LoopSchedule:
    """Scheduling result for one loop."""

    loop: Operation
    pipelined: bool
    target_ii: int
    dependence_ii: int
    memory_ii: int
    achieved_ii: int
    unroll_factor: int
    fill_cycles: int
    bundle_accesses: dict[str, int] = field(default_factory=dict)
    #: loop is not nested inside another ``scf.for`` of the kernel — the
    #: dimension a multi-compute-unit build shards into contiguous
    #: blocks (the OpenMP-parallel dim: ``omp target parallel do``
    #: always lowers the distributed loop outermost in the kernel)
    outermost: bool = False

    def cycles(self, trip_count: int) -> float:
        if trip_count <= 0:
            return 0.0
        if self.pipelined:
            return self.fill_cycles + trip_count * self.achieved_ii
        return trip_count * self.achieved_ii


@dataclass
class KernelSchedule:
    """Full schedule + binding for one kernel function."""

    name: str
    func_op: func.FuncOp
    loops: dict[int, LoopSchedule]  # keyed by id(loop op)
    operators: list[OperatorCount]
    kernel_resources: ResourceUsage
    start_overhead_cycles: int = 200

    @property
    def total_resources(self) -> ResourceUsage:
        return shell_usage() + self.kernel_resources


def _is_outermost_loop(op: Operation) -> bool:
    """True when no enclosing ``scf.for`` exists within the kernel."""
    parent = op.parent_op
    while parent is not None:
        if parent.name == "scf.for":
            return False
        parent = parent.parent_op
    return True


class HlsScheduler:
    """Schedules and binds one device kernel function."""

    def __init__(self, board: U280Board):
        self.board = board

    # -- bundle discovery ----------------------------------------------------------

    def _interface_bundles(self, fn: func.FuncOp) -> dict[SSAValue, str]:
        bundles: dict[SSAValue, str] = {}
        for op in fn.walk():
            if isinstance(op, hls.InterfaceOp):
                bundles[op.arg] = op.bundle
        return bundles

    # -- entry ----------------------------------------------------------------------

    def schedule(self, fn: func.FuncOp) -> KernelSchedule:
        bundles = self._interface_bundles(fn)
        loops: dict[int, LoopSchedule] = {}
        operators: list[OperatorCount] = []
        resources = ResourceUsage()

        m_axi_count = sum(1 for b in bundles.values() if b != "control")
        axilite_count = len(bundles) - m_axi_count
        resources.luts += M_AXI_PORT_LUTS * m_axi_count
        resources.ffs += M_AXI_PORT_FF * m_axi_count
        resources.luts += AXILITE_ARG_LUTS * axilite_count

        # Binding is function-level: loops execute mutually exclusively, so
        # Vitis shares physical operator instances across them — pool by
        # elementwise max rather than summing per loop.
        pooled_physical: dict[str, OperatorCount] = {}
        unroll_overhead_luts = 0
        for op in fn.walk():
            if op.name == "scf.for":
                schedule = self._schedule_loop(op, bundles)
                schedule.outermost = _is_outermost_loop(op)
                loops[id(op)] = schedule
                loop_ops, loop_resources = self._bind_loop(op, schedule)
                unroll_overhead_luts += (
                    schedule.unroll_factor * UNROLL_COPY_LUTS
                    if schedule.unroll_factor > 1
                    else 0
                )
                resources.bram_36k += loop_resources.bram_36k
                for operator in loop_ops:
                    existing = pooled_physical.get(operator.op_name)
                    if existing is None or operator.physical > existing.physical:
                        pooled_physical[operator.op_name] = operator
            elif op.name == "memref.alloca":
                ty = op.results[0].type
                if isinstance(ty, MemRefType) and ty.has_static_shape:
                    from repro.dialects.memref import element_dtype

                    nbytes = ty.num_elements() * element_dtype(
                        ty.element_type
                    ).itemsize
                    resources.bram_36k += bram_blocks_for(nbytes)

        operators = sorted(pooled_physical.values(), key=lambda o: o.op_name)
        for operator in operators:
            if operator.dsp_mapped:
                resources.dsp += operator.physical * MAC_DSP_COUNT
                resources.luts += operator.physical * MAC_DSP_LUTS
            else:
                cost = FLOAT_OP_LUTS.get(
                    operator.op_name, INT_OP_LUTS.get(operator.op_name, 0)
                )
                resources.luts += operator.physical * cost
                resources.ffs += operator.physical * cost
        resources.luts += unroll_overhead_luts

        return KernelSchedule(
            name=fn.sym_name,
            func_op=fn,
            loops=loops,
            operators=operators,
            kernel_resources=resources,
        )

    # -- per-loop scheduling ------------------------------------------------------------

    def _schedule_loop(
        self, loop: Operation, bundles: dict[SSAValue, str]
    ) -> LoopSchedule:
        body = loop.regions[0].block
        pipelined = False
        target_ii = 1
        unroll = 1
        for op in body.ops:
            if isinstance(op, hls.PipelineOp):
                pipelined = True
                static = op.static_ii()
                if static is not None:
                    target_ii = max(1, static)
            elif isinstance(op, hls.UnrollOp):
                unroll = op.factor

        bundle_accesses = self._count_bundle_accesses(body, bundles)
        memory_ii = 0
        for bundle, count in bundle_accesses.items():
            if bundle == "_onchip":
                memory_ii = max(memory_ii, -(-count // 2))
            else:
                memory_ii = max(
                    memory_ii, count * self.board.m_axi_access_cycles
                )

        dependence_ii = min_initiation_interval(loop, DEFAULT_LATENCIES)
        if pipelined:
            achieved = max(target_ii, dependence_ii, memory_ii, 1)
        else:
            # Unpipelined loop: every iteration pays the full latency.
            achieved = max(
                1,
                float_chain_latency(body, DEFAULT_LATENCIES) + memory_ii,
            )
        return LoopSchedule(
            loop=loop,
            pipelined=pipelined,
            target_ii=target_ii,
            dependence_ii=dependence_ii,
            memory_ii=memory_ii,
            achieved_ii=achieved,
            unroll_factor=unroll,
            fill_cycles=self.board.pipeline_depth_cycles,
            bundle_accesses=bundle_accesses,
        )

    def _count_bundle_accesses(
        self, body: Block, bundles: dict[SSAValue, str]
    ) -> dict[str, int]:
        accesses: dict[str, int] = {}
        for nested in walk_same_loop_level(body):
            if nested.name == "memref.load":
                root = root_memref(nested.operands[0])
            elif nested.name == "memref.store":
                root = root_memref(nested.operands[1])
            else:
                continue
            bundle = bundles.get(root, "_onchip")
            if bundle == "control":
                continue  # s_axilite scalars are registers: free accesses
            accesses[bundle] = accesses.get(bundle, 0) + 1
        return accesses

    # -- binding --------------------------------------------------------------------------

    def _bind_loop(
        self, loop: Operation, schedule: LoopSchedule
    ) -> tuple[list[OperatorCount], ResourceUsage]:
        """Physical operator requirements of one loop; the caller pools
        across loops (mutually exclusive execution shares units).  Only
        BRAM is returned as a direct resource (buffers are not shared)."""
        body = loop.regions[0].block
        counts: dict[str, int] = {}
        mac_pairs = 0
        consumed: set[int] = set()

        ops_in_body = list(walk_same_loop_level(body))
        for op in ops_in_body:
            if id(op) in consumed:
                continue
            if op.name == "arith.mulf" and "clang_mac" in op.attributes:
                use = op.results[0].single_use
                if use is not None and use.operation.name == "arith.addf":
                    mac_pairs += 1
                    consumed.add(id(op))
                    consumed.add(id(use.operation))
                    continue
            if op.name in FLOAT_OP_LUTS or op.name in INT_OP_LUTS:
                counts[op.name] = counts.get(op.name, 0) + 1

        operators: list[OperatorCount] = []
        ii = max(schedule.achieved_ii, 1)
        for name, replication in sorted(counts.items()):
            physical = -(-replication // ii)
            operators.append(OperatorCount(name, replication, physical))
        if mac_pairs:
            physical = -(-mac_pairs // ii)
            operators.append(
                OperatorCount("clang_mac", mac_pairs, physical, dsp_mapped=True)
            )
        return operators, ResourceUsage()

"""Simulated AMD U280 FPGA: board model, HLS scheduling, resources, power."""

from repro.fpga.board import MemorySpec, U280Board, U280Resources
from repro.fpga.power import CpuPowerModel, FpgaPowerModel
from repro.fpga.resources import (
    ResourcePercentages,
    ResourceUsage,
    shell_usage,
)
from repro.fpga.scheduler import HlsScheduler, KernelSchedule, LoopSchedule

__all__ = [
    "MemorySpec",
    "U280Board",
    "U280Resources",
    "CpuPowerModel",
    "FpgaPowerModel",
    "ResourcePercentages",
    "ResourceUsage",
    "shell_usage",
    "HlsScheduler",
    "KernelSchedule",
    "LoopSchedule",
]

"""One-shot compiler driver: Fortran+OpenMP source -> host C++ + FPGA
bitstream (Figure 2 of the paper).

:func:`compile_fortran` is a thin shim over the staged
:class:`repro.session.Session` API — it builds a fresh session, runs
every stage once and returns the assembled
:class:`~repro.session.CompiledProgram`.  Use a :class:`Session` directly
when you want to re-run later stages with different
:class:`~repro.session.KernelOverrides` (DSE sweeps, pipeline
introspection) without re-parsing the source or re-building the host
side::

    from repro.session import KernelOverrides, Session

    session = Session(SOURCE)
    base = session.program()
    wide = session.program(KernelOverrides(simdlen=8))   # device build only

The legacy keyword arguments (``memory_space_policy``,
``default_reduction_copies``, ``shared_bundle``, ``capture_stages``)
still work bit-identically but emit a :class:`DeprecationWarning`; their
replacements are :class:`~repro.session.TargetConfig`,
:class:`~repro.session.KernelOverrides` and
:class:`~repro.ir.pass_manager.Instrumentation`.

Pipeline stages (each named as in the paper's Figure 2):

1. Flang + [3]: parse/sema/lower -> FIR+omp -> core dialects (+omp)
2. ``lower omp mapped data``  — omp.map_info -> device data ops
3. ``lower omp target region`` — omp.target -> kernel create/launch/wait
4. kernel extraction — device code into the ``target="fpga"`` module
5. host: C++ + OpenCL printing;  device: ``lower omp loops to HLS``
6. [20] ``lower HLS to func call`` -> LLVM-IR -> [19] AMD mapping +
   LLVM-7 downgrade -> Vitis HLS synthesis -> bitstream
"""

from __future__ import annotations

import warnings

from repro.fpga.board import U280Board
from repro.ir.pass_manager import Instrumentation, PipelineStage
from repro.session import (
    CompiledProgram,
    KernelOverrides,
    Session,
    TargetConfig,
)
from repro.transforms import MemorySpacePolicy

__all__ = [
    "CompiledProgram",
    "PipelineStage",
    "compile_fortran",
    "compile_workload",
]


def compile_fortran(
    source: str,
    *,
    board: U280Board | None = None,
    memory_space_policy: MemorySpacePolicy | None = None,
    default_reduction_copies: int | None = None,
    shared_bundle: bool | None = None,
    capture_stages: bool | None = None,
) -> CompiledProgram:
    """Run the full Figure-2 pipeline over Fortran+OpenMP source."""
    legacy = [
        name
        for name, value in (
            ("memory_space_policy", memory_space_policy),
            ("default_reduction_copies", default_reduction_copies),
            ("shared_bundle", shared_bundle),
            ("capture_stages", capture_stages),
        )
        if value is not None
    ]
    if legacy:
        warnings.warn(
            f"compile_fortran({', '.join(legacy)}=...) is deprecated; "
            "build a repro.session.Session with TargetConfig / "
            "KernelOverrides / Instrumentation instead",
            DeprecationWarning,
            stacklevel=2,
        )
    session = Session(
        source,
        target=TargetConfig(
            board=board, memory_space_policy=memory_space_policy
        ),
        instrumentation=Instrumentation(capture_ir=bool(capture_stages)),
    )
    return session.program(
        KernelOverrides(
            reduction_copies=(
                8 if default_reduction_copies is None
                else default_reduction_copies
            ),
            shared_bundle=bool(shared_bundle),
        )
    )


def compile_workload(name: str, **kwargs) -> CompiledProgram:
    """Compile a registered gallery workload by name (see
    :mod:`repro.workloads`); ``kwargs`` forward to
    :func:`compile_fortran`."""
    from repro.workloads import get_workload

    return compile_fortran(get_workload(name).source, **kwargs)

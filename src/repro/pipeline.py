"""End-to-end compiler driver: Fortran+OpenMP source -> host C++ + FPGA
bitstream (Figure 2 of the paper).

.. code-block:: python

    from repro.pipeline import compile_fortran

    program = compile_fortran(SOURCE)
    result = program.run("my_program")      # simulated U280 execution
    print(program.host_cpp)                 # generated OpenCL host code
    print(program.bitstream.report())       # Vitis-style utilisation

Pipeline stages (each named as in the paper's Figure 2):

1. Flang + [3]: parse/sema/lower -> FIR+omp -> core dialects (+omp)
2. ``lower omp mapped data``  — omp.map_info -> device data ops
3. ``lower omp target region`` — omp.target -> kernel create/launch/wait
4. kernel extraction — device code into the ``target="fpga"`` module
5. host: C++ + OpenCL printing;  device: ``lower omp loops to HLS``
6. [20] ``lower HLS to func call`` -> LLVM-IR -> [19] AMD mapping +
   LLVM-7 downgrade -> Vitis HLS synthesis -> bitstream
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.host_codegen import generate_host_code
from repro.backend.vitis import Bitstream, VitisCompiler
from repro.dialects import builtin
from repro.fpga.board import U280Board
from repro.frontend.driver import compile_to_core
from repro.frontend.sema import ProgramInfo
from repro.ir.pass_manager import PassManager
from repro.ir.printer import print_op
from repro.runtime.executor import ExecutionResult, FpgaExecutor
from repro.transforms import (
    CanonicalizePass,
    CsePass,
    ExtractDeviceModulePass,
    LowerOmpMappedDataPass,
    LowerOmpTargetRegionPass,
    LowerOmpToHlsPass,
    MemorySpacePolicy,
    split_host_device,
)


@dataclass
class PipelineStage:
    """Named IR snapshot for pipeline introspection (Figure 2 bench)."""

    name: str
    ir: str


@dataclass
class CompiledProgram:
    """Everything the flow produces for one Fortran source file."""

    host_module: builtin.ModuleOp
    device_module: builtin.ModuleOp
    bitstream: Bitstream
    host_cpp: str
    program_info: ProgramInfo
    board: U280Board
    stages: list[PipelineStage] = field(default_factory=list)

    def executor(
        self,
        flow_label: str = "fortran-openmp",
        *,
        compiled: bool = True,
        vectorize: bool = True,
    ) -> FpgaExecutor:
        """Fresh executor (fresh device state) for this program.

        ``compiled``/``vectorize`` select the execution tiers (scalar
        interpreter, block-JIT, NumPy loop evaluation); every combination
        must produce bit-identical results and accounting.
        """
        return FpgaExecutor(
            self.host_module, self.bitstream, self.board, flow_label,
            compiled=compiled, vectorize=vectorize,
        )

    def run(self, func_name: str | None = None, *args) -> ExecutionResult:
        """Compile-and-go convenience: run the main program unit."""
        if func_name is None:
            func_name = self.program_info.main().unit.name
        return self.executor().run(func_name, *args)

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]


def compile_fortran(
    source: str,
    *,
    board: U280Board | None = None,
    memory_space_policy: MemorySpacePolicy | None = None,
    default_reduction_copies: int = 8,
    shared_bundle: bool = False,
    capture_stages: bool = False,
) -> CompiledProgram:
    """Run the full Figure-2 pipeline over Fortran+OpenMP source."""
    board = board or U280Board()
    stages: list[PipelineStage] = []

    def snap(name: str, module) -> None:
        if capture_stages:
            stages.append(PipelineStage(name, print_op(module)))

    # Stage 1: Flang + [3] lowering to core dialects.
    frontend = compile_to_core(source, capture_stages=capture_stages)
    module = frontend.module
    if capture_stages:
        for stage_name, ir in frontend.stages:
            stages.append(PipelineStage(stage_name, ir))

    # Stages 2-4: the paper's device-dialect transformations.
    pm = PassManager(verify_each=True)
    pm.add(
        LowerOmpMappedDataPass(memory_space_policy),
        LowerOmpTargetRegionPass(),
        ExtractDeviceModulePass(),
    )
    pm.run(module)
    snap("device-dialect", module)

    host_module, device_module = split_host_device(module)

    # Stage 5 (device): lower omp loops to HLS + cleanup.
    device_pm = PassManager(verify_each=True)
    device_pm.add(
        LowerOmpToHlsPass(
            default_reduction_copies=default_reduction_copies,
            shared_bundle=shared_bundle,
        ),
        CanonicalizePass(),
        CsePass(),
    )
    device_pm.run(device_module)
    snap("device-hls", device_module)

    # Stage 5 (host): C++/OpenCL printing.
    host_cpp = generate_host_code(host_module)

    # Stage 6: Vitis build (HLS->func, LLVM-IR, AMD mapping, synthesis).
    bitstream = VitisCompiler(board).compile(device_module)
    if capture_stages:
        stages.append(PipelineStage("llvm-ir", bitstream.llvm_ir))
        stages.append(
            PipelineStage("amd-hls-llvm7", bitstream.amd_artifact.llvm_ir)
        )

    return CompiledProgram(
        host_module=host_module,
        device_module=device_module,
        bitstream=bitstream,
        host_cpp=host_cpp,
        program_info=frontend.program_info,
        board=board,
        stages=stages,
    )


def compile_workload(name: str, **kwargs) -> CompiledProgram:
    """Compile a registered gallery workload by name (see
    :mod:`repro.workloads`); ``kwargs`` forward to
    :func:`compile_fortran`."""
    from repro.workloads import get_workload

    return compile_fortran(get_workload(name).source, **kwargs)

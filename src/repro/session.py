"""Staged compiler sessions: the Figure-2 flow as composable, cached stages.

One :class:`Session` owns one Fortran+OpenMP source and a
:class:`TargetConfig`; the pipeline is exposed as four artifacts, each
computed once and cached on the session keyed by its options::

    Session(source)
      .frontend()                    # Flang + [3]: source -> core+omp IR
      .host_device(policy)           # data/kernel passes, module split,
                                     #   host C++  (keyed by policy)
      .device_build(KernelOverrides) # omp->HLS + Vitis  (keyed by overrides)
      .program(KernelOverrides)      # assembled CompiledProgram view

Later stages re-run with different :class:`KernelOverrides` (simdlen,
reduction copies, bundle layout) *without* re-parsing the source or
re-building the host side — the artifact reuse that makes design-space
exploration (:mod:`repro.dse`) sweep at device-build cost instead of
full-pipeline cost.  Every stage pipeline is a declarative
:class:`~repro.ir.pass_manager.PassManager` spec (``parse``/``spec``
round-trip), and a session-wide
:class:`~repro.ir.pass_manager.Instrumentation` records stage snapshots,
per-pass timing and artifact-build counters.

:func:`repro.pipeline.compile_fortran` remains as a one-shot shim over
this API.
"""

from __future__ import annotations

import dataclasses
import hashlib
import warnings
from dataclasses import dataclass, field

from repro.backend.host_codegen import generate_host_code
from repro.backend.vitis import Bitstream, VitisCompiler
from repro.dialects import builtin
from repro.fpga.board import U280Board
from repro.frontend.driver import compile_to_core
from repro.frontend.sema import ProgramInfo
from repro.ir.pass_manager import Instrumentation, PassManager, PipelineStage
from repro.reliability.errors import (
    DeviceBuildError,
    FrontendError,
    LoweringError,
    ReproError,
    wrap_error,
)
from repro.runtime.executor import ExecutionResult, FpgaExecutor
from repro.transforms import (
    CanonicalizePass,
    CsePass,
    ExtractDeviceModulePass,
    LowerOmpMappedDataPass,
    LowerOmpTargetRegionPass,
    LowerOmpToHlsPass,
    MemorySpacePolicy,
    split_host_device,
)


# ---------------------------------------------------------------------------
# Configuration values (stage cache keys)
# ---------------------------------------------------------------------------

#: Bump when the canonical field serialization below changes shape, so
#: digests from different schema versions can never collide silently.
_DIGEST_VERSION = 1


def _canonical_value(value) -> str:
    """Deterministic text form of a config field value.

    Dataclasses render as ``ClassName(name=value,...)`` with the fields
    *sorted by name* and canonicalized recursively; containers keep
    order (they are part of the configured value); scalars use ``repr``.
    Sorted + versioned rendering is what makes :meth:`TargetConfig.digest`
    and :meth:`KernelOverrides.digest` stable across processes and PRs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            f"{f.name}={_canonical_value(getattr(value, f.name))}"
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        )
        return f"{type(value).__name__}({parts})"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical_value(v) for v in value)
        return f"[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{k!r}:{_canonical_value(value[k])}" for k in sorted(value)
        )
        return f"{{{inner}}}"
    if isinstance(value, (type(None), bool, int, float, str, bytes)):
        return repr(value)
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} into a stable "
        "config digest"
    )


def _config_digest(label: str, value) -> str:
    """SHA-256 over the versioned canonical form of a config object."""
    text = f"{label}/v{_DIGEST_VERSION}|{_canonical_value(value)}"
    return hashlib.sha256(text.encode()).hexdigest()


def _warn_deprecated_mutation(cls_name: str) -> None:
    warnings.warn(
        f"mutating a {cls_name} is deprecated: it is a frozen cache/"
        "digest key — build a new instance (dataclasses.replace) "
        "instead; mutation after a stage was cached aliases cache "
        "entries",
        DeprecationWarning,
        stacklevel=3,
    )


def _allow_deprecated_mutation(cls: type) -> type:
    """Legacy escape hatch: assignment to the frozen config dataclasses
    used to work; it now warns loudly but still takes effect so old
    call sites keep running while they migrate."""

    def __setattr__(self, name, value):
        _warn_deprecated_mutation(cls.__name__)
        object.__setattr__(self, name, value)

    def __delattr__(self, name):
        _warn_deprecated_mutation(cls.__name__)
        object.__delattr__(self, name)

    cls.__setattr__ = __setattr__
    cls.__delattr__ = __delattr__
    return cls


@dataclass(frozen=True)
class TargetConfig:
    """Session-wide target description: the board plus the default
    memory-space policy used when a stage is built without an explicit
    policy."""

    board: U280Board | None = None
    memory_space_policy: "MemorySpacePolicy | str | None" = None

    def resolved_board(self) -> U280Board:
        return self.board or U280Board()

    def digest(self) -> str:
        """Stable content digest of this target (sorted, versioned field
        serialization) — one component of the compile service's
        content-addressed artifact keys.

        A caller-supplied *mutable* :class:`MemorySpacePolicy` object is
        snapshotted (mode, banks, current assignments) with a
        :class:`DeprecationWarning`: later mutation of the object would
        silently invalidate the digest, so pass the policy mode string
        instead.
        """
        policy = self.memory_space_policy
        if policy is not None and not isinstance(policy, str):
            warnings.warn(
                "TargetConfig.digest() over a mutable MemorySpacePolicy "
                "object snapshots its current state; pass the policy "
                "mode string for a stable content key",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = (
                f"{policy.mode}/banks={policy.num_banks}/"
                f"assigned={sorted(policy._assigned.items())!r}"
            )
        board = self.resolved_board()
        text = (
            f"board={_canonical_value(board)}|policy={policy!r}"
        )
        return _config_digest("TargetConfig", text)


@dataclass(frozen=True)
class KernelOverrides:
    """Device-build knobs honored inside ``lower-omp-to-hls``.

    ``simdlen=None`` respects the source directive's factor; an integer
    overrides it (1 disables unrolling) — the knob that replaced the DSE
    sweep's source-text rewriting.  Hashable: it is the device-build
    cache key.

    ``compute_units`` replicates every kernel N× on the device and
    shards the iteration space of each kernel's outermost loop across
    the copies (contiguous blocks, remainder handled); the build is
    validated against the board's LUT/DSP budgets and an over-budget
    replication raises a typed
    :class:`~repro.reliability.errors.DeviceBuildError`.
    ``stream_tile_bytes`` arms double-buffered DMA streaming: arrays
    larger than the tile flow through in tiles whose transfer overlaps
    kernel compute in the cycle model (and may oversubscribe a single
    memory bank, since only a tile is resident at a time).
    """

    simdlen: int | None = None
    reduction_copies: int = 8
    shared_bundle: bool = False
    target_ii: int = 1
    compute_units: int = 1
    stream_tile_bytes: int | None = None

    def digest(self) -> str:
        """Stable content digest (sorted, versioned field serialization)
        — the device-build component of content-addressed artifact keys."""
        return _config_digest("KernelOverrides", self)


_allow_deprecated_mutation(TargetConfig)
_allow_deprecated_mutation(KernelOverrides)


def _policy_key(policy: "MemorySpacePolicy | str | None") -> tuple:
    if policy is None:
        return ("single", 16)
    if isinstance(policy, str):
        return (policy, 16)
    # A caller-supplied policy object carries mutable bank-assignment
    # state, so it must never alias a cache entry built from a fresh
    # policy of the same mode: key it by identity.
    return (policy.mode, policy.num_banks, id(policy))


def _policy_instance(
    policy: "MemorySpacePolicy | str | None",
) -> MemorySpacePolicy:
    """A fresh (or caller-supplied) policy for one host/device build.

    String modes always get a fresh instance so bank assignment restarts
    per build; a caller's :class:`MemorySpacePolicy` object is used as-is
    (its assignments are part of what the caller configured).
    """
    if policy is None:
        return MemorySpacePolicy()
    if isinstance(policy, str):
        return MemorySpacePolicy(mode=policy)
    return policy


# ---------------------------------------------------------------------------
# Declarative stage pipelines
# ---------------------------------------------------------------------------


def host_device_pipeline(
    policy: "MemorySpacePolicy | str | None" = None,
    *,
    instrumentation: Instrumentation | None = None,
    verify_each: bool = True,
) -> PassManager:
    """Stages 2-4 of Figure 2: data mapping, target regions, extraction."""
    pm = PassManager(verify_each=verify_each, instrumentation=instrumentation)
    pm.add(
        LowerOmpMappedDataPass(_policy_instance(policy)),
        LowerOmpTargetRegionPass(),
        ExtractDeviceModulePass(),
    )
    return pm


def device_pipeline(
    overrides: KernelOverrides | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    verify_each: bool = True,
) -> PassManager:
    """Stage 5 (device side): omp->HLS lowering plus cleanup."""
    o = overrides or KernelOverrides()
    pm = PassManager(verify_each=verify_each, instrumentation=instrumentation)
    pm.add(
        LowerOmpToHlsPass(
            reduction_copies=o.reduction_copies,
            target_ii=o.target_ii,
            shared_bundle=o.shared_bundle,
            simdlen=o.simdlen,
        ),
        CanonicalizePass(),
        CsePass(),
    )
    return pm


# ---------------------------------------------------------------------------
# Stage artifacts
# ---------------------------------------------------------------------------


@dataclass
class FrontendArtifact:
    """Stage 1 output: the pristine core+omp module.  Never mutated —
    later stages clone it before running their pipelines."""

    module: builtin.ModuleOp
    program_info: ProgramInfo
    snapshots: list[PipelineStage] = field(default_factory=list)


@dataclass
class HostDeviceArtifact:
    """Stages 2-5 (host) output: split modules plus generated host C++.

    ``device_module`` is the *pre-HLS* device module (omp form); it is
    the pristine input every :class:`DeviceBuild` clones."""

    host_module: builtin.ModuleOp
    device_module: builtin.ModuleOp
    host_cpp: str
    policy_key: tuple
    snapshots: list[PipelineStage] = field(default_factory=list)


@dataclass
class DeviceBuild:
    """Stages 5 (device) + 6 output: HLS-form module and the bitstream."""

    overrides: KernelOverrides
    device_module: builtin.ModuleOp
    bitstream: Bitstream
    host: HostDeviceArtifact
    snapshots: list[PipelineStage] = field(default_factory=list)


# ---------------------------------------------------------------------------
# The assembled program view (the stable public artifact type)
# ---------------------------------------------------------------------------


@dataclass
class CompiledProgram:
    """Everything the flow produces for one Fortran source file.

    Programs assembled by one :class:`Session` share the frontend and
    host-side artifacts; only the device build differs between them."""

    host_module: builtin.ModuleOp
    device_module: builtin.ModuleOp
    bitstream: Bitstream
    host_cpp: str
    program_info: ProgramInfo
    board: U280Board
    stages: list[PipelineStage] = field(default_factory=list)

    def executor(
        self,
        flow_label: str = "fortran-openmp",
        *,
        compiled: bool = True,
        vectorize: bool = True,
        fault_plan=None,
        retry_policy=None,
        watchdog_steps: int | None = None,
    ) -> FpgaExecutor:
        """Fresh executor (fresh device state) for this program.

        ``compiled``/``vectorize`` select the execution tiers (scalar
        interpreter, block-JIT, NumPy loop evaluation); every combination
        must produce bit-identical results and accounting.

        Reliability knobs (see :mod:`repro.reliability`): ``fault_plan``
        arms seeded fault injection, ``retry_policy`` bounds the
        transient-fault retries and ``watchdog_steps`` sets the default
        per-kernel step budget.
        """
        return FpgaExecutor(
            self.host_module, self.bitstream, self.board, flow_label,
            compiled=compiled, vectorize=vectorize,
            fault_plan=fault_plan, retry_policy=retry_policy,
            watchdog_steps=watchdog_steps,
        )

    def run(self, func_name: str | None = None, *args) -> ExecutionResult:
        """Compile-and-go convenience: run the main program unit."""
        if func_name is None:
            func_name = self.program_info.main().unit.name
        return self.executor().run(func_name, *args)

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class Session:
    """A staged compilation of one Fortran+OpenMP source.

    Each stage is computed lazily, once, and cached keyed by its options;
    see the module docstring for the stage graph.
    """

    def __init__(
        self,
        source: str,
        *,
        target: TargetConfig | None = None,
        instrumentation: Instrumentation | None = None,
        verify_each: bool = True,
    ):
        self.source = source
        self.target = target or TargetConfig()
        self.board = self.target.resolved_board()
        self.instrumentation = instrumentation or Instrumentation()
        self.verify_each = verify_each
        self._frontend: FrontendArtifact | None = None
        self._host_device: dict[tuple, HostDeviceArtifact] = {}
        self._builds: dict[tuple, DeviceBuild] = {}

    # -- stage 1 ---------------------------------------------------------------------

    def frontend(self) -> FrontendArtifact:
        """Flang + [3]: parse/sema/lower to the core+omp module (once).

        A failed compile caches nothing: the next call retries from the
        source, so a session survives (for example) a transient
        instrumentation failure without holding a poisoned artifact.
        """
        if self._frontend is None:
            instr = self.instrumentation
            mark = len(instr.snapshots)
            try:
                result = compile_to_core(self.source, instrumentation=instr)
                self._frontend = FrontendArtifact(
                    module=result.module,
                    program_info=result.program_info,
                    snapshots=list(instr.snapshots[mark:]),
                )
            except BaseException as error:
                # BaseException on purpose: a KeyboardInterrupt mid-stage
                # must evict just like a stage failure (and re-raise
                # unwrapped), or the session holds a poisoned artifact.
                self._frontend = None
                if isinstance(error, ReproError) or not isinstance(
                    error, Exception
                ):
                    raise
                raise wrap_error(
                    error, FrontendError, context="session.frontend"
                ) from error
        return self._frontend

    # -- stages 2-5 (host) -------------------------------------------------------------

    def host_device(
        self, memory_space_policy: "MemorySpacePolicy | str | None" = None
    ) -> HostDeviceArtifact:
        """Device-dialect lowering, module split and host C++ generation,
        cached per memory-space policy."""
        policy = (
            memory_space_policy
            if memory_space_policy is not None
            else self.target.memory_space_policy
        )
        key = _policy_key(policy)
        if key not in self._host_device:
            try:
                frontend = self.frontend()
                instr = self.instrumentation
                module = frontend.module.clone()
                pm = host_device_pipeline(
                    policy, instrumentation=instr,
                    verify_each=self.verify_each,
                )
                pm.run(module)
                snapshots = []
                snap = instr.snapshot("device-dialect", module)
                if snap is not None:
                    snapshots.append(snap)
                host_module, device_module = split_host_device(module)
                instr.count("host_device_builds")
                self._host_device[key] = HostDeviceArtifact(
                    host_module=host_module,
                    device_module=device_module,
                    host_cpp=generate_host_code(host_module),
                    policy_key=key,
                    snapshots=snapshots,
                )
            except BaseException as error:
                self._host_device.pop(key, None)
                if isinstance(error, ReproError) or not isinstance(
                    error, Exception
                ):
                    raise
                raise wrap_error(
                    error, LoweringError, context=f"host_device {key!r}"
                ) from error
        return self._host_device[key]

    # -- stages 5 (device) + 6 ---------------------------------------------------------

    def device_build(
        self,
        overrides: KernelOverrides | None = None,
        *,
        memory_space_policy: "MemorySpacePolicy | str | None" = None,
    ) -> DeviceBuild:
        """HLS lowering + simulated Vitis synthesis, cached per
        (policy, overrides) — the only work a DSE sweep repeats."""
        overrides = overrides or KernelOverrides()
        host = self.host_device(memory_space_policy)
        # Cache key: the stage-content digest, not the object — two
        # override instances with equal fields share one build, and the
        # same key addresses the artifact in the cross-process store.
        key = (host.policy_key, overrides.digest())
        if key not in self._builds:
            # Failure discipline: a raise anywhere mid-build must leave
            # the session reusable — the key is evicted (never a partial
            # artifact) and the frontend/host caches stay valid, so a
            # retry with the same overrides re-runs only this stage.
            try:
                instr = self.instrumentation
                device_module = host.device_module.clone()
                pm = device_pipeline(
                    overrides, instrumentation=instr,
                    verify_each=self.verify_each,
                )
                pm.run(device_module)
                snapshots = []
                snap = instr.snapshot("device-hls", device_module)
                if snap is not None:
                    snapshots.append(snap)
                bitstream = VitisCompiler(self.board).compile(
                    device_module,
                    compute_units=overrides.compute_units,
                    stream_tile_bytes=overrides.stream_tile_bytes,
                )
                for name, ir in (
                    ("llvm-ir", bitstream.llvm_ir),
                    ("amd-hls-llvm7", bitstream.amd_artifact.llvm_ir),
                ):
                    snap = instr.snapshot(name, ir)
                    if snap is not None:
                        snapshots.append(snap)
                instr.count("device_builds")
                self._builds[key] = DeviceBuild(
                    overrides=overrides,
                    device_module=device_module,
                    bitstream=bitstream,
                    host=host,
                    snapshots=snapshots,
                )
            except BaseException as error:
                self._builds.pop(key, None)
                if isinstance(error, ReproError) or not isinstance(
                    error, Exception
                ):
                    raise
                raise wrap_error(
                    error,
                    DeviceBuildError,
                    context=f"device_build overrides={overrides!r}",
                ) from error
        return self._builds[key]

    # -- assembly ----------------------------------------------------------------------

    def program(
        self,
        overrides: KernelOverrides | None = None,
        *,
        memory_space_policy: "MemorySpacePolicy | str | None" = None,
    ) -> CompiledProgram:
        """A :class:`CompiledProgram` view over the cached artifacts."""
        frontend = self.frontend()
        build = self.device_build(
            overrides, memory_space_policy=memory_space_policy
        )
        host = build.host
        return CompiledProgram(
            host_module=host.host_module,
            device_module=build.device_module,
            bitstream=build.bitstream,
            host_cpp=host.host_cpp,
            program_info=frontend.program_info,
            board=self.board,
            stages=(
                frontend.snapshots + host.snapshots + build.snapshots
            ),
        )

    # -- cache management --------------------------------------------------------------

    def release_build(
        self,
        overrides: KernelOverrides | None = None,
        *,
        memory_space_policy: "MemorySpacePolicy | str | None" = None,
    ) -> bool:
        """Drop one device build from the cache (the bitstream and the
        lowered module are the heavy artifacts; a sweep that has already
        extracted its numbers releases each point to keep memory flat).
        Returns whether a cached build was evicted."""
        overrides = overrides or KernelOverrides()
        policy = (
            memory_space_policy
            if memory_space_policy is not None
            else self.target.memory_space_policy
        )
        key = (_policy_key(policy), overrides.digest())
        return self._builds.pop(key, None) is not None

    # -- introspection -----------------------------------------------------------------

    @property
    def counters(self):
        """Shortcut to the instrumentation's artifact-build counters."""
        return self.instrumentation.counters

    def diagnostics(self):
        """Kernel static-analysis findings for this session's source.

        Runs the ``check-kernels`` rules (races, carried dependences,
        typed verification — see :mod:`repro.analysis`) over the cached
        frontend module and returns the sorted
        :class:`~repro.analysis.diagnostics.Diagnostic` list.  Compiling
        a racy kernel does not fail — this is the API to ask *before*
        building whether the source deserves it.
        """
        from repro.analysis import check_module

        return check_module(self.frontend().module).sorted()

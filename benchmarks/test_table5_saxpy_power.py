"""Table 5 — SAXPY median power draw: FPGA (both flows) vs one CPU core.

Paper result: both FPGA flows draw ~22-26 W — about *half* of the
~55-57 W a single active EPYC 7502 core costs at package level.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import PAPER_TABLE5, emit
from repro.fpga.power import CpuPowerModel, FpgaPowerModel
from repro.frontend import compile_to_core
from repro.reporting import format_table
from repro.runtime.cpu import CpuExecutor
from repro.workloads import SAXPY_SIZES, SAXPY_SOURCE, SaxpyCase, saxpy_reference


@pytest.fixture(scope="module")
def cpu_executor():
    return CpuExecutor(compile_to_core(SAXPY_SOURCE).module)


def _power_rows(saxpy_program, saxpy_baseline, cpu_executor):
    fpga_model = FpgaPowerModel()
    cpu_model = CpuPowerModel()
    rows = []
    for n in SAXPY_SIZES:
        fortran_w = fpga_model.median_power_w(
            n, saxpy_program.bitstream.resources, "saxpy-fortran"
        )
        hls_w = fpga_model.median_power_w(
            n, saxpy_baseline.bitstream.resources, "saxpy-hls"
        )
        case = SaxpyCase(min(n, 100_000))  # CPU run for functional check
        x, y = case.arrays()
        expected = saxpy_reference(case.a, x, y)
        cpu_executor.run(
            "saxpy",
            np.array(case.a, np.float32),
            x,
            y,
            np.array(case.n, np.int32),
            label=f"saxpy-{n}",
        )
        assert np.allclose(y, expected, rtol=1e-5)
        cpu_w = cpu_model.median_power_w(n, f"saxpy-{n}")
        rows.append((n, fortran_w, hls_w, cpu_w))
    return rows


def test_saxpy_power(benchmark, saxpy_program, saxpy_baseline, cpu_executor, capsys):
    rows = benchmark.pedantic(
        _power_rows,
        args=(saxpy_program, saxpy_baseline, cpu_executor),
        rounds=1,
        iterations=1,
    )
    printable = []
    for n, fortran_w, hls_w, cpu_w in rows:
        paper = PAPER_TABLE5[n]
        printable.append(
            (
                n,
                f"{fortran_w:.2f}", f"{hls_w:.2f}", f"{cpu_w:.2f}",
                f"{paper[0]:.2f}", f"{paper[1]:.2f}", f"{paper[2]:.2f}",
            )
        )
        # shape: FPGA well under half-ish of CPU, both flows comparable
        assert 20.0 < fortran_w < 27.0
        assert 20.0 < hls_w < 27.0
        assert 48.0 < cpu_w < 60.0
        assert cpu_w / fortran_w > 1.9
        assert abs(fortran_w - hls_w) < 2.0
        # scale: within a few watts of the published medians
        assert abs(fortran_w - paper[0]) < 3.0
        assert abs(cpu_w - paper[2]) < 5.0
    table = format_table(
        "Table 5: SAXPY median power (W) — FPGA flows vs single CPU core",
        ["N", "Fortran (ours)", "HLS (ours)", "CPU (ours)",
         "Fortran (paper)", "HLS (paper)", "CPU (paper)"],
        printable,
    )
    emit(capsys, "table5_saxpy_power", table)

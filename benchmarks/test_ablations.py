"""Ablations over the design choices DESIGN.md calls out.

Three knobs of the flow, swept with the same harness as the main tables:

1. **reduction copies** — the paper's round-robin rewrite: the carried
   dependence distance equals the copy count, so the dependence II falls
   from the combiner latency to the memory floor;
2. **simdlen** — partial unrolling: no runtime win for the memory-bound
   SAXPY (the paper's observation that unrolling is about finding a
   sweet spot, not free speedup);
3. **m_axi bundle policy** — the flow's one-bundle-per-argument choice
   (paper §3: "each input will be mapped to a separate m_axi port")
   versus a naive shared bundle.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.reporting import format_table
from repro.session import KernelOverrides, Session

SDOT_SOURCE = """
subroutine sdot(x, y, s, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
!$omp target parallel do reduction(+: s)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
!$omp end target parallel do
end subroutine sdot
"""

VADD_SOURCE = """
subroutine vadd(x, y, z, n)
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: z(n)
  integer :: i
!$omp target parallel do
  do i = 1, n
    z(i) = x(i) + y(i)
  end do
!$omp end target parallel do
end subroutine vadd
"""


def _loop_iis(program):
    return [
        (sched.dependence_ii, sched.achieved_ii)
        for kernel in program.bitstream.kernels.values()
        for sched in kernel.loops.values()
    ]


def test_reduction_copies_ablation(benchmark, capsys):
    def sweep():
        session = Session(SDOT_SOURCE)  # frontend/host shared by the sweep
        rows = []
        for copies in (1, 2, 4, 8, 16):
            program = session.program(
                KernelOverrides(reduction_copies=copies)
            )
            dep_ii, achieved_ii = _loop_iis(program)[0]
            rows.append((copies, dep_ii, achieved_ii))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        "Ablation: reduction round-robin copies (sdot kernel)",
        ["copies", "dependence II", "achieved II"],
        rows,
    )
    emit(capsys, "ablation_reduction_copies", table)

    dep_iis = [dep for _, dep, _ in rows]
    # monotone non-increasing; collapses once copies cover the latency
    assert dep_iis == sorted(dep_iis, reverse=True)
    assert dep_iis[0] >= 7  # single copy: f32 add latency serializes
    assert dep_iis[-1] <= 2  # 16 copies: dependence gone
    achieved = [a for _, _, a in rows]
    assert achieved[-1] <= achieved[0]


def test_simdlen_ablation(benchmark, capsys):
    from repro.dse import explore_simdlen
    from repro.workloads import SAXPY_SOURCE

    n = 100_000
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    y0 = rng.standard_normal(n).astype(np.float32)

    def evaluate(program):
        return program.executor().run(
            "saxpy", np.array(2.0, np.float32), x, y0.copy(),
            np.array(n, np.int32),
        )

    result = benchmark.pedantic(
        lambda: explore_simdlen(SAXPY_SOURCE, evaluate, factors=(1, 2, 4, 10)),
        rounds=1,
        iterations=1,
    )
    emit(capsys, "ablation_simdlen", result.table())

    times = [p.device_time_s for p in result.points]
    # memory-bound: unrolling changes runtime by < 5 % in either direction
    assert max(times) / min(times) < 1.05
    assert result.best is not None
    # per-element II is invariant: achieved II scales with the factor
    per_element = [
        p.achieved_iis[0] / max(p.simdlen, 1) for p in result.points
    ]
    assert max(per_element) == min(per_element)


def test_bundle_policy_ablation(benchmark, capsys):
    def sweep():
        session = Session(VADD_SOURCE)
        rows = []
        for shared in (False, True):
            program = session.program(KernelOverrides(shared_bundle=shared))
            (dep_ii, achieved_ii) = _loop_iis(program)[0]
            rows.append(
                (
                    "shared gmem0" if shared else "per-array (paper)",
                    achieved_ii,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        "Ablation: m_axi bundle policy (vadd kernel: 2 loads + 1 store)",
        ["policy", "achieved II"],
        rows,
    )
    emit(capsys, "ablation_bundle_policy", table)

    per_array = dict(rows)["per-array (paper)"]
    shared = dict(rows)["shared gmem0"]
    # per-array: II set by the busiest port (1 access); shared: all 3
    assert shared == 3 * per_array

"""Figure 1 — the [3] frontend flow: Flang -> HLFIR/FIR -> core dialects.

Regenerates the figure as a stage trace: the SAXPY source is lowered to
the FIR+omp module and then to the core dialects, and the bench reports
which dialects are live at each stage — FIR ops must disappear after the
[3] lowering, replaced by memref/scf/arith with the omp ops preserved.
"""

from __future__ import annotations

from conftest import emit
from repro.frontend import compile_to_core, compile_to_fir
from repro.reporting import format_table

#: SAXPY with its host-side initialisation loop, so the trace exercises
#: both the host control flow (fir.do_loop -> scf.for) and the offload.
SOURCE = """
program saxpy_demo
  implicit none
  integer, parameter :: n = 4096
  real :: x(n), y(n), a
  integer :: i
  a = 2.0
  do i = 1, n
    x(i) = real(i)
    y(i) = 1.0
  end do
!$omp target parallel do simd simdlen(10)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
!$omp end target parallel do simd
end program saxpy_demo
"""


def _dialect_histogram(module) -> dict[str, int]:
    hist: dict[str, int] = {}
    for op in module.walk():
        dialect = op.name.split(".")[0]
        hist[dialect] = hist.get(dialect, 0) + 1
    return hist


def test_frontend_flow(benchmark, capsys):
    def run_frontend():
        fir_result = compile_to_fir(SOURCE)
        core_result = compile_to_core(SOURCE)
        return fir_result, core_result

    fir_result, core_result = benchmark.pedantic(
        run_frontend, rounds=1, iterations=1
    )
    fir_hist = _dialect_histogram(fir_result.module)
    core_hist = _dialect_histogram(core_result.module)

    dialects = sorted(set(fir_hist) | set(core_hist))
    table = format_table(
        "Figure 1: dialect population through the [3] frontend flow (SAXPY)",
        ["dialect", "after Flang (FIR+omp)", "after [3] (core+omp)"],
        [(d, fir_hist.get(d, 0), core_hist.get(d, 0)) for d in dialects],
    )
    emit(capsys, "fig1_frontend_flow", table)

    # Flang stage: FIR carries the program, omp carries the directives.
    assert fir_hist.get("fir", 0) > 0
    assert fir_hist.get("omp", 0) > 0
    assert fir_hist.get("memref", 0) == 0 and fir_hist.get("scf", 0) == 0
    # [3] stage: FIR fully lowered to memref/scf/arith; omp preserved.
    assert core_hist.get("fir", 0) == 0
    assert core_hist.get("memref", 0) > 0
    assert core_hist.get("scf", 0) > 0
    assert core_hist.get("arith", 0) > 0
    assert core_hist.get("omp", 0) == fir_hist.get("omp", 0)

"""Shared fixtures for the table/figure reproduction benchmarks.

Programs and baselines are compiled once per session; runtime results are
computed lazily and cached so the runtime, power and resource benches
share the same runs.  Every bench writes its paper-vs-measured table to
``benchmarks/reports/`` and echoes it to the terminal.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.baselines import HandwrittenSaxpy, HandwrittenSgesl
from repro.pipeline import CompiledProgram, compile_fortran
from repro.workloads import (
    SAXPY_SOURCE,
    SGESL_SOURCE,
    SaxpyCase,
    SgeslCase,
    saxpy_reference,
    sgesl_reference,
)

REPORTS_DIR = Path(__file__).parent / "reports"

#: Published values (median runtime in ms) — paper Tables 1 and 2.
PAPER_TABLE1 = {
    10_000: (1.251, 1.258),
    100_000: (10.931, 10.925),
    1_000_000: (110.245, 110.148),
    10_000_000: (1073.044, 1072.888),
}
PAPER_TABLE2 = {
    256: (20.445, 20.594),
    512: (80.791, 81.121),
    1024: (325.117, 325.573),
    2048: (1317.247, 1318.418),
}
#: Published resource rows (LUT %, BRAM %, DSP %) — Tables 3 and 4.
PAPER_TABLE3 = {"fortran": (8.29, 10.07, 0.10), "hls": (8.29, 10.07, 0.10)}
PAPER_TABLE4 = {"fortran": (8.24, 10.07, 0.10), "hls": (8.22, 10.07, 0.23)}
#: Published power rows (W) — Tables 5 and 6.
PAPER_TABLE5 = {
    10_000: (21.847, 22.178, 56.13),
    100_000: (23.528, 22.496, 55.08),
    1_000_000: (25.535, 23.998, 57.31),
    10_000_000: (24.167, 24.297, 54.91),
}
PAPER_TABLE6 = {
    256: (21.866, 22.363, 52.70),
    512: (22.989, 23.121, 53.71),
    1024: (24.243, 23.640, 52.44),
    2048: (24.278, 24.066, 52.82),
}

#: The single-kernel source matching the paper's Listing 6 (used for the
#: Table 4 synthesis comparison).
SGESL_UPDATE_SOURCE = """
subroutine sgesl_update(b, col, t, k, n)
  implicit none
  integer, intent(in) :: k, n
  real, intent(in) :: t
  real, intent(in) :: col(n)
  real, intent(inout) :: b(n)
  integer :: j
!$omp target parallel do
  do j = k + 1, n
    b(j) = b(j) + t * col(j)
  end do
!$omp end target parallel do
end subroutine sgesl_update
"""


def write_report(name: str, table: str) -> None:
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(table + "\n")


def emit(capsys, name: str, table: str) -> None:
    """Persist + echo a paper-vs-measured table."""
    write_report(name, table)
    with capsys.disabled():
        print(f"\n{table}\n")


# -- compiled programs ----------------------------------------------------------


@pytest.fixture(scope="session")
def saxpy_program() -> CompiledProgram:
    return compile_fortran(SAXPY_SOURCE)


@pytest.fixture(scope="session")
def sgesl_program() -> CompiledProgram:
    return compile_fortran(SGESL_SOURCE)


@pytest.fixture(scope="session")
def sgesl_update_program() -> CompiledProgram:
    return compile_fortran(SGESL_UPDATE_SOURCE)


@pytest.fixture(scope="session")
def saxpy_baseline() -> HandwrittenSaxpy:
    return HandwrittenSaxpy.build()


@pytest.fixture(scope="session")
def sgesl_baseline() -> HandwrittenSgesl:
    return HandwrittenSgesl.build()


# -- cached runtime results --------------------------------------------------------


class _SaxpyRuns:
    def __init__(self, program, baseline):
        self.program = program
        self.baseline = baseline
        self._cache: dict[int, tuple] = {}

    def results(self, n: int):
        if n not in self._cache:
            case = SaxpyCase(n)
            x, y = case.arrays()
            expected = saxpy_reference(case.a, x, y)
            y_fortran = y.copy()
            fortran = self.program.executor().run(
                "saxpy",
                np.array(case.a, dtype=np.float32),
                x,
                y_fortran,
                np.array(n, dtype=np.int32),
            )
            assert np.allclose(y_fortran, expected, rtol=1e-5)
            y_hls = y.copy()
            hls = self.baseline.run(case.a, x, y_hls)
            assert np.allclose(y_hls, expected, rtol=1e-5)
            self._cache[n] = (fortran, hls)
        return self._cache[n]


class _SgeslRuns:
    def __init__(self, program, baseline):
        self.program = program
        self.baseline = baseline
        self._cache: dict[int, tuple] = {}

    def results(self, n: int):
        if n not in self._cache:
            case = SgeslCase(n)
            _, lu, ipvt, b = case.system()
            expected = sgesl_reference(lu, ipvt, b)
            b_fortran = b.copy()
            fortran = self.program.executor().run(
                "sgesl",
                lu.copy(),
                b_fortran,
                (ipvt + 1).astype(np.int64),
                np.array(n, dtype=np.int32),
            )
            assert np.allclose(b_fortran, expected, rtol=1e-3, atol=1e-3)
            b_hls = b.copy()
            hls = self.baseline.run(lu.copy(), b_hls, ipvt)
            assert np.allclose(b_hls, expected, rtol=1e-3, atol=1e-3)
            self._cache[n] = (fortran, hls)
        return self._cache[n]


@pytest.fixture(scope="session")
def saxpy_runs(saxpy_program, saxpy_baseline) -> _SaxpyRuns:
    return _SaxpyRuns(saxpy_program, saxpy_baseline)


@pytest.fixture(scope="session")
def sgesl_runs(sgesl_program, sgesl_baseline) -> _SgeslRuns:
    return _SgeslRuns(sgesl_program, sgesl_baseline)

"""Table 7 — lines of code of the dialects/transformations.

The paper's argument: composing existing MLIR building blocks keeps every
component modest (this work: 2363 LoC).  We census our own modules mapped
onto the same four components; the property reproduced is the *ordering*
and rough magnitude — each component stays in the low thousands, and the
[3] frontend lowering is the largest piece, as in the paper.
"""

from __future__ import annotations

from conftest import emit
from repro.reporting import format_table, table7_loc


def test_loc_census(benchmark, capsys):
    rows = benchmark.pedantic(table7_loc, rounds=1, iterations=1)
    printable = [
        (row.component, row.our_loc, row.paper_loc) for row in rows
    ]
    table = format_table(
        "Table 7: lines of code per component",
        ["Component", "LoC (ours)", "LoC (paper)"],
        printable,
    )
    emit(capsys, "table7_loc", table)

    by_name = {row.component: row for row in rows}
    ours = {name: row.our_loc for name, row in by_name.items()}
    # every component is "very modest" — low thousands, as the paper argues
    for name, loc in ours.items():
        assert 150 < loc < 8000, f"{name}: {loc} LoC out of expected band"
    # the [3] HLFIR/FIR lowering is the largest component in both codebases
    largest = max(ours, key=ours.get)  # type: ignore[arg-type]
    assert largest == "Lowering from HLFIR & FIR to core dialects [3]"
    # this work's component is the same order of magnitude as published
    this_work = by_name["OpenMP to HLS dialect (this work)"]
    assert 0.3 < this_work.our_loc / this_work.paper_loc < 3.0

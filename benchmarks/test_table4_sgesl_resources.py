"""Table 4 — SGESL resource utilisation (N = 2048).

Paper result: BRAM identical (10.07 %), but the MAC binds differently —
the hand-written HLS kernel's mul+add is recognised by Vitis and mapped
to DSP slices (DSP 0.23 %, LUT 8.22 %) while the Fortran flow's IR misses
the pattern and builds it from LUTs (DSP 0.10 %, LUT 8.24 %).
"""

from __future__ import annotations

from conftest import PAPER_TABLE4, emit
from repro.reporting import format_table


def test_sgesl_resources(
    benchmark, sgesl_update_program, sgesl_baseline, capsys
):
    def synthesize():
        return sgesl_update_program.bitstream.utilization()

    benchmark.pedantic(synthesize, rounds=1, iterations=1)

    fortran = sgesl_update_program.bitstream.utilization().rounded()
    hls = sgesl_baseline.bitstream.utilization().rounded()

    table = format_table(
        "Table 4: SGESL resource utilisation (N=2048)",
        ["Frontend", "LUT %", "BRAM %", "DSP %",
         "LUT(paper)", "BRAM(paper)", "DSP(paper)"],
        [
            ("Fortran OpenMP", *fortran, *PAPER_TABLE4["fortran"]),
            ("Hand-written HLS", *hls, *PAPER_TABLE4["hls"]),
        ],
    )
    emit(capsys, "table4_sgesl_resources", table)

    # exact reproduction of the published rounded percentages
    assert fortran == PAPER_TABLE4["fortran"]
    assert hls == PAPER_TABLE4["hls"]
    # the analysed mechanism: BRAM equal, DSPs only in the hand-written
    # flow (the clang_mac idiom), LUTs slightly higher in the Fortran flow
    assert fortran[1] == hls[1]
    assert hls[2] > fortran[2]
    assert fortran[0] > hls[0]


def test_dsp_mapping_mechanism(benchmark, sgesl_update_program, sgesl_baseline):
    """The DSP difference must come from the MAC binding, not elsewhere."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fortran_kernels = sgesl_update_program.bitstream.kernels
    hls_kernels = sgesl_baseline.bitstream.kernels
    fortran_ops = [
        op for k in fortran_kernels.values() for op in k.operators
    ]
    hls_ops = [op for k in hls_kernels.values() for op in k.operators]
    assert not any(op.dsp_mapped for op in fortran_ops)
    assert any(op.op_name == "clang_mac" and op.dsp_mapped for op in hls_ops)

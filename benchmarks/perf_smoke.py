#!/usr/bin/env python
"""Perf smoke: wall-clock of the compiled execution engine.

Times compilation and simulated runs of **every gallery workload**
(``repro.workloads`` registry: SAXPY, SGESL, dot, Jacobi 2-D, SpMV,
tiled GEMM) and writes ``BENCH_pr2.json`` (at the repo root) with
seconds and interpreter-step counts, so later PRs have a perf
trajectory to regress against.  The simulator's *modelled* numbers
(device time, cycles) are recorded too — they must stay constant across
engine optimisations; only wall-clock may move.  Every run is checked
bit-for-bit against the workload's NumPy reference.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.workloads import all_workloads, get_workload

#: (workload, sizes timed, best-of rounds) — interpreter-bound benches
#: first; the allocation-heavy n=10M SAXPY goes last so its memory
#: pressure cannot skew them.
BENCH_PLAN: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("sgesl", (256, 512), 5),
    ("dot", (50_000,), 5),
    ("spmv", (1024, 4096), 5),
    ("jacobi2d", (256, 512), 5),
    ("gemm", (64, 128), 3),
    ("saxpy", (1_000_000, 10_000_000), 3),
)


def _best_of(fn, rounds: int = 5):
    """Best-of-N with the cycle collector paused during the timed region
    (the live programs' IR graphs make gen-2 collections expensive and
    noisy, exactly like pytest-benchmark's calibrated mode avoids)."""
    import gc

    best = None
    result = None
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_compile(name: str) -> tuple[dict, object]:
    workload = get_workload(name)
    seconds, program = _best_of(lambda: workload.compile())
    return {"name": f"compile:{name}", "seconds": round(seconds, 6)}, program


def bench_run(program, name: str, n: int, rounds: int) -> dict:
    workload = get_workload(name)
    # Instance construction and the NumPy reference are *not* part of the
    # timed region — only executor work is; mutated outputs get a fresh
    # copy per round (the copy cost is negligible next to the run).
    instance = workload.instance(n)

    def run():
        args = list(instance.args)
        for pos in instance.expected:
            args[pos] = instance.args[pos].copy()
        result = program.executor().run(workload.entry, *args)
        for pos, expected in instance.expected.items():
            assert args[pos].tobytes() == expected.tobytes(), (
                f"{name}: output {pos} diverged from the NumPy reference"
            )
        return result

    seconds, result = _best_of(run, rounds=rounds)
    return {
        "name": f"{name}:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_pr2.json"),
        help="output JSON path (default: <repo>/BENCH_pr2.json)",
    )
    args = parser.parse_args()

    benches = []
    programs: dict[str, object] = {}
    for workload in all_workloads():
        entry, program = bench_compile(workload.name)
        benches.append(entry)
        programs[workload.name] = program

    for name, sizes, rounds in BENCH_PLAN:
        for n in sizes:
            benches.append(bench_run(programs[name], name, n, rounds))

    payload = {
        "pr": 2,
        "description": (
            "Workload gallery through the three-tier engine: every "
            "registered workload compiled + run, outputs checked bit-for-"
            "bit against NumPy references. Wall-clock of the simulator; "
            "device_time_ms/kernel_cycles are modelled values and must "
            "stay constant across engine changes."
        ),
        "python": platform.python_version(),
        "benches": benches,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(b["name"]) for b in benches)
    for bench in benches:
        steps = bench.get("interpreter_steps")
        extra = f"  steps={steps:,}" if steps is not None else ""
        print(f"{bench['name']:<{width}}  {bench['seconds']*1e3:9.2f} ms{extra}")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

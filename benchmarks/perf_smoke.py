#!/usr/bin/env python
"""Perf smoke: wall-clock of the compiled execution engine, plus the CI
bench-regression gate.

Times compilation and simulated runs of **every gallery workload**
(``repro.workloads`` registry: SAXPY, SGESL, dot, Jacobi 2-D, SpMV,
tiled GEMM, histogram, heat3d, batched GEMM) and writes
``BENCH_pr10.json`` (at the repo root) with seconds and interpreter-step
counts, so later PRs have a perf trajectory to regress against.  The
simulator's *modelled* numbers (device time, cycles) are recorded too —
they must stay constant across engine optimisations; only wall-clock may
move.  Every run is checked bit-for-bit against the workload's NumPy
reference.

New in PR 10: the ``scaling_tiers`` benchmark — multi-compute-unit
weak/strong scaling curves (saxpy/heat3d/jacobi2d at 1/2/4 CUs) on
*modelled* device time; the recorded speedups are deterministic
simulator ratios whose floors gate the sharded cycle model.  PR 8 added
``service_tiers`` (warm vs cold compile, 8-way coalesced burst, parallel
vs serial DSE).  The ``--check-against`` bench gate (hardened in PR 7):

    PYTHONPATH=src python benchmarks/perf_smoke.py \\
        --out bench.json --check-against BENCH_pr10.json

compares the fresh run to the committed baseline and exits non-zero when

* any modelled ``interpreter_steps`` / ``device_time_ms`` /
  ``kernel_cycles`` drifts for a bench present in both files (these are
  simulator outputs, not wall-clock: an engine change must not move
  them),
* any recorded scalar-vs-vectorized speedup falls below the baseline's
  ``floor`` (wall-clock ratio: the fast tier must stay >= 5x), or
* a bench or ``*_tiers`` entry the baseline records is missing from the
  current run — a dropped tier bench would otherwise un-gate its
  regression silently.

Benches only the *current* run has are reported but never fail the
gate; they become binding once the fresh JSON is committed as the new
baseline.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.ir.pass_manager import Instrumentation
from repro.session import KernelOverrides, Session
from repro.workloads import all_workloads, get_workload

#: (workload, sizes timed, best-of rounds) — interpreter-bound benches
#: first; the allocation-heavy n=10M SAXPY goes last so its memory
#: pressure cannot skew them.
BENCH_PLAN: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("sgesl", (256, 512), 5),
    ("dot", (50_000,), 5),
    ("spmv", (1024, 4096), 5),
    ("jacobi2d", (256, 512), 5),
    ("gemm", (64, 128), 3),
    ("histogram", (16384, 65536), 5),
    ("heat3d", (32, 64), 5),
    ("batched_gemm", (32, 64), 3),
    ("saxpy", (1_000_000, 10_000_000), 3),
)

#: wall-clock ratio the vectorized tier must keep over the scalar tier
#: in the ``*_tiers`` benches; recorded into the JSON so the bench gate
#: can hold later PRs to it.
TIER_SPEEDUP_FLOOR = 5.0

#: (workload, fixed size) for the strong-scaling curves and the CU
#: counts swept.  These are *modelled* device-time ratios (deterministic
#: simulator outputs), so the floors guard the multi-CU cycle model
#: itself: if sharding regresses (e.g. a CU stops getting its block),
#: the speedup collapses and the gate trips.
SCALING_PLAN: tuple[tuple[str, int], ...] = (
    ("saxpy", 1_000_000),
    ("heat3d", 64),
    ("jacobi2d", 512),
)
SCALING_CUS: tuple[int, ...] = (1, 2, 4)
#: modelled-speedup floor per CU count (recorded speedups: ~1.95x at 2
#: CUs, ~3.7x at 4 across the plan; floors sit well below to gate model
#: breakage, not calibration nudges — like every other tier floor).
SCALING_STRONG_FLOORS = {1: 1.0, 2: 1.6, 4: 2.5}
#: weak scaling (work grows with the CU count): time must stay within
#: 1/floor of the 1-CU baseline (recorded efficiency ~0.93-0.97).
SCALING_WEAK_FLOOR = 0.7
SCALING_WEAK_BASE_N = 250_000


def _best_of(fn, rounds: int = 5):
    """Best-of-N with the cycle collector paused during the timed region
    (the live programs' IR graphs make gen-2 collections expensive and
    noisy, exactly like pytest-benchmark's calibrated mode avoids)."""
    import gc

    best = None
    result = None
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_compile(name: str) -> tuple[dict, object]:
    workload = get_workload(name)
    seconds, program = _best_of(lambda: workload.compile())
    return {"name": f"compile:{name}", "seconds": round(seconds, 6)}, program


def _timed_checked_run(
    program, workload, instance, rounds: int, **executor_kwargs
):
    """Best-of-N of one executor run, outputs checked bit-for-bit.

    Instance construction and the NumPy reference are *not* part of the
    timed region — only executor work is; mutated outputs get a fresh
    copy per round (the copy cost is negligible next to the run).
    """

    def run():
        args = list(instance.args)
        for pos in instance.expected:
            args[pos] = instance.args[pos].copy()
        result = program.executor(**executor_kwargs).run(
            workload.entry, *args
        )
        for pos, expected in instance.expected.items():
            assert args[pos].tobytes() == expected.tobytes(), (
                f"{workload.name}: output {pos} diverged from the "
                "NumPy reference"
            )
        return result

    return _best_of(run, rounds=rounds)


def bench_run(program, name: str, n: int, rounds: int) -> dict:
    workload = get_workload(name)
    instance = workload.instance(n)
    seconds, result = _timed_checked_run(program, workload, instance, rounds)
    return {
        "name": f"{name}:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


#: (workload, simdlen sweep, evaluation size) for the DSE reuse bench —
#: small n so compile cost dominates and the reuse win is what's measured.
DSE_PLAN: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("saxpy", (1, 2, 4, 8), 2000),
    ("jacobi2d", (1, 2, 4), 32),
)


def bench_dse_reuse(name: str, factors: tuple[int, ...], n: int) -> dict:
    """One sweep, two ways: fresh session per point vs shared session."""
    workload = get_workload(name)
    evaluate = workload.evaluator(n)

    def sweep_fresh_sessions() -> int:
        compiles = 0
        for factor in factors:
            session = Session(
                workload.source, instrumentation=Instrumentation()
            )
            evaluate(session.program(KernelOverrides(simdlen=factor)))
            compiles += session.counters["frontend_compiles"]
        return compiles

    def sweep_shared_session() -> int:
        session = Session(workload.source, instrumentation=Instrumentation())
        for factor in factors:
            evaluate(session.program(KernelOverrides(simdlen=factor)))
        return session.counters["frontend_compiles"]

    fresh_s, fresh_compiles = _best_of(sweep_fresh_sessions, rounds=3)
    shared_s, shared_compiles = _best_of(sweep_shared_session, rounds=3)
    return {
        "name": f"dse:{name}:points={len(factors)}",
        "fresh_seconds": round(fresh_s, 6),
        "shared_seconds": round(shared_s, 6),
        "speedup": round(fresh_s / shared_s, 3),
        "fresh_frontend_compiles": fresh_compiles,
        "shared_frontend_compiles": shared_compiles,
    }


def bench_tiers(program, name: str, n: int) -> dict:
    """Scalar vs vectorized tier on one workload: both tiers must agree
    bit-for-bit and in step accounting; only wall-clock may differ.  The
    scalar side interprets millions of ops per kernel, so it runs once;
    the vectorized side is best-of-3."""
    workload = get_workload(name)
    instance = workload.instance(n)
    scalar_s, scalar_result = _timed_checked_run(
        program, workload, instance, rounds=1,
        compiled=False, vectorize=False,
    )
    fast_s, fast_result = _timed_checked_run(
        program, workload, instance, rounds=3,
        compiled=True, vectorize=True,
    )
    assert scalar_result.interpreter_steps == fast_result.interpreter_steps
    assert scalar_result.kernel_cycles == fast_result.kernel_cycles
    return {
        "name": f"{name}:n={n}",
        "scalar_seconds": round(scalar_s, 6),
        "vectorized_seconds": round(fast_s, 6),
        "speedup": round(scalar_s / fast_s, 2),
        "floor": TIER_SPEEDUP_FLOOR,
        "interpreter_steps": scalar_result.interpreter_steps,
    }


def bench_scaling() -> list[dict]:
    """Multi-CU weak/strong scaling curves on modelled device time.

    Strong: fixed problem size, CU count swept — ``speedup`` is the
    1-CU modelled time over this CU count's.  Weak: the problem grows
    with the CU count (saxpy: work linear in n), ``speedup`` is the
    parallel efficiency (1.0 = perfect).  Every entry's outputs are
    checked bit-for-bit by the executor path itself (the evaluator runs
    the workload's NumPy reference check); determinism across CU counts
    is separately pinned by tests/runtime/test_multi_cu.py.
    """
    entries = []
    for name, n in SCALING_PLAN:
        workload = get_workload(name)
        evaluate = workload.evaluator(n)
        session = Session(workload.source)
        results = {}
        for units in SCALING_CUS:
            overrides = KernelOverrides(compute_units=units)
            results[units] = evaluate(session.program(overrides))
            session.release_build(overrides)
        base_ms = results[1].device_time_ms
        for units in SCALING_CUS:
            result = results[units]
            entries.append(
                {
                    "name": f"strong:{name}:n={n}:cu={units}",
                    "device_time_ms": result.device_time_ms,
                    "kernel_cycles": result.kernel_cycles,
                    "speedup": round(base_ms / result.device_time_ms, 3),
                    "floor": SCALING_STRONG_FLOORS[units],
                }
            )
    workload = get_workload("saxpy")
    session = Session(workload.source)
    base_ms = None
    for units in SCALING_CUS:
        n = SCALING_WEAK_BASE_N * units
        overrides = KernelOverrides(compute_units=units)
        result = workload.evaluator(n)(session.program(overrides))
        session.release_build(overrides)
        if base_ms is None:
            base_ms = result.device_time_ms
        entries.append(
            {
                "name": f"weak:saxpy:n={n}:cu={units}",
                "device_time_ms": result.device_time_ms,
                "kernel_cycles": result.kernel_cycles,
                "speedup": round(base_ms / result.device_time_ms, 3),
                "floor": 1.0 if units == 1 else SCALING_WEAK_FLOOR,
            }
        )
    return entries


#: regression floor for the warm-cache service compile over a cold
#: build.  The *recorded* speedup is ~20-24x (the PR 8 acceptance bar);
#: the floor sits well below it, like every other tier floor (e.g.
#: segmented 688x recorded / 5x floor), because its job is to catch the
#: cache breaking (ratio collapsing toward 1x), not 10% timer jitter on
#: a ~1 ms unpickle.
SERVICE_WARM_FLOOR = 10.0
#: an 8-way coalesced burst must beat 8 serial cold builds by at least
#: this much (it performs exactly one build).
SERVICE_COALESCE_FLOOR = 2.0
#: parallel-vs-serial DSE floor: an overhead bound, not a speedup claim.
#: CI runners may expose a single core, where process-parallel builds
#: cannot win wall-clock; the floor guards against the parallel path
#: degrading catastrophically (e.g. losing per-worker session reuse).
SERVICE_DSE_FLOOR = 0.25


def bench_service_tiers() -> list[dict]:
    """The compile-service benches: warm cache vs cold build, an 8-way
    coalesced burst vs 8 serial builds, and a parallel vs serial 8-point
    DSE sweep (identical tables asserted)."""
    from repro.dse import explore_workload
    from repro.service import (
        ArtifactStore,
        CompileRequest,
        CompileService,
        reset_worker_sessions,
    )

    source = get_workload("saxpy").source
    request = CompileRequest(source)

    # -- warm vs cold --------------------------------------------------
    def cold_build():
        reset_worker_sessions()
        with CompileService(store=ArtifactStore(), max_workers=0) as svc:
            svc.compile(request)

    cold_s, _ = _best_of(cold_build, rounds=5)
    with CompileService(store=ArtifactStore(), max_workers=0) as service:
        service.compile(request)
        # the warm path unpickles a fresh artifact per hit (~1-2 ms); a
        # deep best-of keeps the recorded minimum stable against GC /
        # allocator noise so the floor compares stable minima
        warm_s, _ = _best_of(
            lambda: service.compile(request), rounds=25
        )
        assert service.stats.memory_hits >= 25
    warm_vs_cold = {
        "name": "saxpy:warm_vs_cold",
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2),
        "floor": SERVICE_WARM_FLOOR,
    }

    # -- coalesced 8-way burst vs 8 serial builds ----------------------
    def serial_8():
        for _ in range(8):
            cold_build()

    serial_s, _ = _best_of(serial_8, rounds=2)
    with CompileService(
        store=ArtifactStore(), max_workers=2
    ) as service:
        service.warm_pool()

        def burst_8():
            futures = [service.submit(request) for _ in range(8)]
            for future in futures:
                future.result()

        start = time.perf_counter()
        burst_8()
        burst_s = time.perf_counter() - start
        builds = service.stats.builds
    assert builds == 1, f"coalesced burst performed {builds} builds"
    coalesced = {
        "name": "saxpy:coalesced8",
        "serial_seconds": round(serial_s, 6),
        "burst_seconds": round(burst_s, 6),
        "speedup": round(serial_s / burst_s, 2),
        "floor": SERVICE_COALESCE_FLOOR,
        "builds": builds,
    }

    # -- parallel vs serial 8-point DSE sweep --------------------------
    factors = (1, 2, 3, 4, 5, 6, 7, 8)
    start = time.perf_counter()
    serial_sweep = explore_workload("saxpy", simdlen_factors=factors)
    dse_serial_s = time.perf_counter() - start
    with CompileService(
        store=ArtifactStore(), max_workers=2, queue_depth=len(factors)
    ) as service:
        service.warm_pool()
        start = time.perf_counter()
        parallel_sweep = explore_workload(
            "saxpy", simdlen_factors=factors, service=service
        )
        dse_parallel_s = time.perf_counter() - start
    assert parallel_sweep.table() == serial_sweep.table(), (
        "parallel DSE sweep produced a different table than serial"
    )
    dse = {
        "name": "saxpy:dse8",
        "serial_seconds": round(dse_serial_s, 6),
        "parallel_seconds": round(dse_parallel_s, 6),
        "speedup": round(dse_serial_s / dse_parallel_s, 2),
        "floor": SERVICE_DSE_FLOOR,
        "points": len(factors),
    }
    return [warm_vs_cold, coalesced, dse]


# ---------------------------------------------------------------------------
# Bench gate (--check-against)
# ---------------------------------------------------------------------------

#: per-bench values the simulator *models*; an engine change must not
#: move them, so the gate requires exact equality against the baseline.
MODELLED_KEYS = ("interpreter_steps", "device_time_ms", "kernel_cycles")


def _tier_sections(payload: dict) -> dict[str, dict]:
    """name -> entry over every ``*_tiers`` section of a bench JSON."""
    entries = {}
    for key, section in payload.items():
        if key.endswith("_tiers") and isinstance(section, list):
            for entry in section:
                entries[f"{key}:{entry['name']}"] = entry
    return entries


def check_against(
    baseline: dict, current: dict, baseline_name: str = "baseline"
) -> list[str]:
    """Compare a fresh run to the committed baseline; returns the list
    of human-readable gate failures (empty == gate passes).  Every
    failure line names ``baseline_name`` (the baseline file), so a CI
    log line is attributable to the exact file that gated it.

    Anything the *baseline* records must exist in the current run: a
    bench or tier entry that disappeared is a reported gate failure (a
    retired workload means the baseline must be re-committed), never a
    silent pass or a traceback.  Entries only the current run has are
    informational — they become binding once the fresh JSON is
    committed as the new baseline.
    """
    failures: list[str] = []
    base_benches = {b["name"]: b for b in baseline.get("benches", ())}
    cur_benches = {b["name"]: b for b in current.get("benches", ())}
    only_cur = sorted(set(cur_benches) - set(base_benches))
    if only_cur:
        print(f"bench gate: new benches not in baseline: {only_cur}")
    for name in sorted(base_benches):
        base = base_benches[name]
        cur = cur_benches.get(name)
        if cur is None:
            failures.append(
                f"{name}: bench missing from current run (baseline has "
                "it); retire it by re-committing the baseline"
            )
            continue
        for key in MODELLED_KEYS:
            if key not in base and key not in cur:
                continue  # compile:* entries carry wall-clock only
            if base.get(key) != cur.get(key):
                failures.append(
                    f"{name}: modelled {key} drifted from the baseline "
                    f"({base.get(key)!r} -> {cur.get(key)!r}); engine "
                    "changes must keep modelled values constant (or the "
                    "baseline must be re-committed with the reviewed "
                    "change)"
                )
    base_tiers = _tier_sections(baseline)
    cur_tiers = _tier_sections(current)
    for name in sorted(base_tiers):
        if name not in cur_tiers:
            failures.append(
                f"{name}: tier missing from current run (baseline "
                "records a speedup floor for it); a dropped tier bench "
                "would otherwise un-gate its regression silently"
            )
            continue
        floor = base_tiers[name].get("floor", TIER_SPEEDUP_FLOOR)
        speedup = cur_tiers[name].get("speedup", 0.0)
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x fell below the "
                f"recorded floor {floor:.2f}x"
            )
    return [
        f"{failure} [baseline: {baseline_name}]" for failure in failures
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_pr10.json"),
        help="output JSON path (default: <repo>/BENCH_pr10.json)",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        default=None,
        help="committed baseline JSON to gate against: exit 1 when any "
        "modelled value drifts or a tier speedup falls below its "
        "recorded floor",
    )
    args = parser.parse_args()

    # service benches run first, while the process heap is still small:
    # the warm path is a ~1 ms unpickle, and running it after the gallery
    # has filled gen-2 with live IR graphs measurably slows allocation
    # inside pickle.loads (enough to blur the recorded cold/warm ratio).
    service_benches = bench_service_tiers()
    scaling_benches = bench_scaling()

    benches = []
    programs: dict[str, object] = {}
    for workload in all_workloads():
        entry, program = bench_compile(workload.name)
        benches.append(entry)
        programs[workload.name] = program

    for name, sizes, rounds in BENCH_PLAN:
        for n in sizes:
            benches.append(bench_run(programs[name], name, n, rounds))

    dse_benches = [
        bench_dse_reuse(name, factors, n) for name, factors, n in DSE_PLAN
    ]

    scatter_benches = [
        bench_tiers(
            programs["histogram"], "histogram",
            max(get_workload("histogram").sizes),
        )
    ]
    nest_benches = [
        bench_tiers(
            programs["heat3d"], "heat3d", max(get_workload("heat3d").sizes)
        ),
        bench_tiers(
            programs["batched_gemm"], "batched_gemm",
            max(get_workload("batched_gemm").sizes),
        ),
    ]
    segmented_benches = [
        bench_tiers(
            programs["spmv"], "spmv", max(get_workload("spmv").sizes)
        ),
        bench_tiers(
            programs["sgesl"], "sgesl", max(get_workload("sgesl").sizes)
        ),
    ]
    payload = {
        "pr": 10,
        "description": (
            "Workload gallery through the three-tier engine: every "
            "registered workload compiled + run, outputs checked bit-for-"
            "bit against NumPy references. Wall-clock of the simulator; "
            "device_time_ms/kernel_cycles are modelled values and must "
            "stay constant across engine changes (the --check-against "
            "bench gate enforces this in CI). dse_artifact_reuse "
            "compares a sweep with a fresh Session per point (old cost "
            "model) against one shared Session. scatter_tiers, "
            "nest_tiers and segmented_tiers record scalar-vs-vectorized "
            "wall-clock at each workload's largest sweep size (ufunc.at "
            "scatter; rank-3 collapse(3) whole-space nests; spmv's CSR "
            "row loops and sgesl's triangular updates on the segmented "
            "tier); each records the speedup floor the gate holds later "
            "runs to. service_tiers (PR 8) records the compile-service "
            "wins: warm-cache vs cold compile, an 8-way coalesced burst "
            "(exactly one build) vs 8 serial builds, and parallel vs "
            "serial 8-point DSE (the dse8 floor is an overhead bound — "
            "single-core runners cannot win wall-clock on process-"
            "parallel builds). scaling_tiers (PR 10) records multi-"
            "compute-unit weak/strong scaling curves on *modelled* "
            "device time (saxpy/heat3d/jacobi2d at 1/2/4 CUs): the "
            "speedups are deterministic simulator ratios, so their "
            "floors gate the sharded cycle model itself, not wall-clock "
            "noise."
        ),
        "python": platform.python_version(),
        "benches": benches,
        "dse_artifact_reuse": dse_benches,
        "scatter_tiers": scatter_benches,
        "nest_tiers": nest_benches,
        "segmented_tiers": segmented_benches,
        "service_tiers": service_benches,
        "scaling_tiers": scaling_benches,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(b["name"]) for b in benches)
    for bench in benches:
        steps = bench.get("interpreter_steps")
        extra = f"  steps={steps:,}" if steps is not None else ""
        print(f"{bench['name']:<{width}}  {bench['seconds']*1e3:9.2f} ms{extra}")
    for bench in dse_benches:
        print(
            f"{bench['name']}  fresh {bench['fresh_seconds']*1e3:8.2f} ms "
            f"({bench['fresh_frontend_compiles']} frontend compiles)  "
            f"shared {bench['shared_seconds']*1e3:8.2f} ms "
            f"({bench['shared_frontend_compiles']})  "
            f"speedup {bench['speedup']:.2f}x"
        )
    for section, entries in (
        ("scatter_tiers", scatter_benches),
        ("nest_tiers", nest_benches),
        ("segmented_tiers", segmented_benches),
    ):
        for bench in entries:
            print(
                f"{section}:{bench['name']}  "
                f"scalar {bench['scalar_seconds']*1e3:9.2f} ms  "
                f"vectorized {bench['vectorized_seconds']*1e3:8.2f} ms  "
                f"speedup {bench['speedup']:.1f}x (floor {bench['floor']:.0f}x)"
            )
    for bench in service_benches:
        slow_key, fast_key = [
            k for k in bench if k.endswith("_seconds")
        ]
        print(
            f"service_tiers:{bench['name']}  "
            f"{slow_key.removesuffix('_seconds')} "
            f"{bench[slow_key]*1e3:9.2f} ms  "
            f"{fast_key.removesuffix('_seconds')} "
            f"{bench[fast_key]*1e3:8.2f} ms  "
            f"speedup {bench['speedup']:.2f}x (floor {bench['floor']:g}x)"
        )
    for bench in scaling_benches:
        print(
            f"scaling_tiers:{bench['name']}  "
            f"{bench['device_time_ms']:9.3f} ms  "
            f"speedup {bench['speedup']:.3f}x (floor {bench['floor']:g}x)"
        )
    print(f"\nwrote {out}")

    if args.check_against:
        baseline = json.loads(Path(args.check_against).read_text())
        failures = check_against(
            baseline, payload, baseline_name=args.check_against
        )
        if failures:
            print(
                f"\nbench gate FAILED against {args.check_against}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            sys.exit(1)
        print(f"bench gate passed against {args.check_against}")


if __name__ == "__main__":
    main()

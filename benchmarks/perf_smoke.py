#!/usr/bin/env python
"""Perf smoke: wall-clock of the compiled execution engine.

Times compilation and the SAXPY/SGESL/reduction simulated runs and writes
``BENCH_pr1.json`` (at the repo root) with seconds and interpreter-step
counts, so later PRs have a perf trajectory to regress against.  The
simulator's *modelled* numbers (device time, cycles) are recorded too —
they must stay constant across engine optimisations; only wall-clock may
move.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.pipeline import compile_fortran
from repro.workloads import (
    SAXPY_SOURCE,
    SGESL_SOURCE,
    SaxpyCase,
    SgeslCase,
    saxpy_reference,
    sgesl_reference,
)

REDUCTION_SOURCE = """
subroutine sdot(x, y, s, n)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: x(n), y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
!$omp target parallel do reduction(+:s)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
!$omp end target parallel do
end subroutine sdot
"""


def _best_of(fn, rounds: int = 5):
    """Best-of-N with the cycle collector paused during the timed region
    (the live programs' IR graphs make gen-2 collections expensive and
    noisy, exactly like pytest-benchmark's calibrated mode avoids)."""
    import gc

    best = None
    result = None
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_compile(name: str, source: str) -> dict:
    seconds, program = _best_of(lambda: compile_fortran(source))
    return {"name": f"compile:{name}", "seconds": round(seconds, 6)}, program


def bench_saxpy(program, n: int, rounds: int = 5) -> dict:
    case = SaxpyCase(n)
    x, y = case.arrays()
    expected = saxpy_reference(case.a, x, y)

    def run():
        y_run = y.copy()
        result = program.executor().run(
            "saxpy",
            np.array(case.a, dtype=np.float32),
            x,
            y_run,
            np.array(n, dtype=np.int32),
        )
        assert np.allclose(y_run, expected, rtol=1e-5)
        return result

    seconds, result = _best_of(run, rounds=rounds)
    return {
        "name": f"saxpy:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


def bench_sgesl(program, n: int) -> dict:
    case = SgeslCase(n)
    _, lu, ipvt, b = case.system()
    expected = sgesl_reference(lu, ipvt, b)

    def run():
        b_run = b.copy()
        result = program.executor().run(
            "sgesl",
            lu.copy(),
            b_run,
            (ipvt + 1).astype(np.int64),
            np.array(n, dtype=np.int32),
        )
        assert np.allclose(b_run, expected, rtol=1e-3, atol=1e-3)
        return result

    seconds, result = _best_of(run)
    return {
        "name": f"sgesl:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


def bench_reduction(program, n: int) -> dict:
    rng = np.random.default_rng(5)
    x = rng.standard_normal(n).astype(np.float32)
    y = rng.standard_normal(n).astype(np.float32)
    expected = float(np.dot(x.astype(np.float64), y.astype(np.float64)))

    def run():
        s = np.zeros((), dtype=np.float32)
        result = program.executor().run(
            "sdot", x, y, s, np.array(n, np.int32)
        )
        assert abs(float(s) - expected) / abs(expected) < 1e-3
        return result

    seconds, result = _best_of(run)
    return {
        "name": f"sdot-reduction:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_pr1.json"),
        help="output JSON path (default: <repo>/BENCH_pr1.json)",
    )
    args = parser.parse_args()

    benches = []

    entry, saxpy_program = bench_compile("saxpy", SAXPY_SOURCE)
    benches.append(entry)
    entry, sgesl_program = bench_compile("sgesl", SGESL_SOURCE)
    benches.append(entry)
    entry, sdot_program = bench_compile("sdot-reduction", REDUCTION_SOURCE)
    benches.append(entry)

    # interpreter-bound benches first; the allocation-heavy n=10M SAXPY
    # goes last so its memory pressure cannot skew them
    benches.append(bench_sgesl(sgesl_program, 256))
    benches.append(bench_sgesl(sgesl_program, 512))
    benches.append(bench_reduction(sdot_program, 50_000))
    benches.append(bench_saxpy(saxpy_program, 1_000_000))
    benches.append(bench_saxpy(saxpy_program, 10_000_000, rounds=3))

    payload = {
        "pr": 1,
        "description": (
            "Compiled execution engine: block-JIT interpretation, reduction "
            "vectorization, worklist rewriting. Wall-clock of the simulator; "
            "device_time_ms/kernel_cycles are modelled values and must stay "
            "constant across engine changes."
        ),
        "python": platform.python_version(),
        "benches": benches,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(b["name"]) for b in benches)
    for bench in benches:
        steps = bench.get("interpreter_steps")
        extra = f"  steps={steps:,}" if steps is not None else ""
        print(f"{bench['name']:<{width}}  {bench['seconds']*1e3:9.2f} ms{extra}")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Perf smoke: wall-clock of the compiled execution engine.

Times compilation and simulated runs of **every gallery workload**
(``repro.workloads`` registry: SAXPY, SGESL, dot, Jacobi 2-D, SpMV,
tiled GEMM, histogram) and writes ``BENCH_pr4.json`` (at the repo root)
with seconds and interpreter-step counts, so later PRs have a perf
trajectory to regress against.  The simulator's *modelled* numbers
(device time, cycles) are recorded too — they must stay constant across
engine optimisations; only wall-clock may move.  Every run is checked
bit-for-bit against the workload's NumPy reference.

PR 3 added the DSE artifact-reuse benchmark — the same sweep run with
one fresh :class:`~repro.session.Session` per point (the pre-session
cost model: full frontend + host build every time) versus one shared
session (frontend compiled once, sweep points are device builds only),
recording frontend compiles and sweep wall-clock for both.

New in PR 4: the scatter-tier benchmark — the histogram workload
(colliding ``ufunc.at`` accumulate + injectivity-proved permutation
scatter) run on the scalar tier versus the vectorized tier at its
largest sweep size, recording the speedup (must stay >= 5x).

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.ir.pass_manager import Instrumentation
from repro.session import KernelOverrides, Session
from repro.workloads import all_workloads, get_workload

#: (workload, sizes timed, best-of rounds) — interpreter-bound benches
#: first; the allocation-heavy n=10M SAXPY goes last so its memory
#: pressure cannot skew them.
BENCH_PLAN: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("sgesl", (256, 512), 5),
    ("dot", (50_000,), 5),
    ("spmv", (1024, 4096), 5),
    ("jacobi2d", (256, 512), 5),
    ("gemm", (64, 128), 3),
    ("histogram", (16384, 65536), 5),
    ("saxpy", (1_000_000, 10_000_000), 3),
)


def _best_of(fn, rounds: int = 5):
    """Best-of-N with the cycle collector paused during the timed region
    (the live programs' IR graphs make gen-2 collections expensive and
    noisy, exactly like pytest-benchmark's calibrated mode avoids)."""
    import gc

    best = None
    result = None
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_compile(name: str) -> tuple[dict, object]:
    workload = get_workload(name)
    seconds, program = _best_of(lambda: workload.compile())
    return {"name": f"compile:{name}", "seconds": round(seconds, 6)}, program


def _timed_checked_run(
    program, workload, instance, rounds: int, **executor_kwargs
):
    """Best-of-N of one executor run, outputs checked bit-for-bit.

    Instance construction and the NumPy reference are *not* part of the
    timed region — only executor work is; mutated outputs get a fresh
    copy per round (the copy cost is negligible next to the run).
    """

    def run():
        args = list(instance.args)
        for pos in instance.expected:
            args[pos] = instance.args[pos].copy()
        result = program.executor(**executor_kwargs).run(
            workload.entry, *args
        )
        for pos, expected in instance.expected.items():
            assert args[pos].tobytes() == expected.tobytes(), (
                f"{workload.name}: output {pos} diverged from the "
                "NumPy reference"
            )
        return result

    return _best_of(run, rounds=rounds)


def bench_run(program, name: str, n: int, rounds: int) -> dict:
    workload = get_workload(name)
    instance = workload.instance(n)
    seconds, result = _timed_checked_run(program, workload, instance, rounds)
    return {
        "name": f"{name}:n={n}",
        "seconds": round(seconds, 6),
        "interpreter_steps": result.interpreter_steps,
        "device_time_ms": result.device_time_ms,
        "kernel_cycles": result.kernel_cycles,
    }


#: (workload, simdlen sweep, evaluation size) for the DSE reuse bench —
#: small n so compile cost dominates and the reuse win is what's measured.
DSE_PLAN: tuple[tuple[str, tuple[int, ...], int], ...] = (
    ("saxpy", (1, 2, 4, 8), 2000),
    ("jacobi2d", (1, 2, 4), 32),
)


def bench_dse_reuse(name: str, factors: tuple[int, ...], n: int) -> dict:
    """One sweep, two ways: fresh session per point vs shared session."""
    workload = get_workload(name)
    evaluate = workload.evaluator(n)

    def sweep_fresh_sessions() -> int:
        compiles = 0
        for factor in factors:
            session = Session(
                workload.source, instrumentation=Instrumentation()
            )
            evaluate(session.program(KernelOverrides(simdlen=factor)))
            compiles += session.counters["frontend_compiles"]
        return compiles

    def sweep_shared_session() -> int:
        session = Session(workload.source, instrumentation=Instrumentation())
        for factor in factors:
            evaluate(session.program(KernelOverrides(simdlen=factor)))
        return session.counters["frontend_compiles"]

    fresh_s, fresh_compiles = _best_of(sweep_fresh_sessions, rounds=3)
    shared_s, shared_compiles = _best_of(sweep_shared_session, rounds=3)
    return {
        "name": f"dse:{name}:points={len(factors)}",
        "fresh_seconds": round(fresh_s, 6),
        "shared_seconds": round(shared_s, 6),
        "speedup": round(fresh_s / shared_s, 3),
        "fresh_frontend_compiles": fresh_compiles,
        "shared_frontend_compiles": shared_compiles,
    }


def bench_scatter_tiers(program, name: str, n: int) -> dict:
    """Scalar vs vectorized tier on the scatter workload (PR 4): both
    tiers must agree bit-for-bit and in step accounting; only wall-clock
    may differ.  The scalar side interprets ~n ops per kernel, so it runs
    once; the vectorized side is best-of-3."""
    workload = get_workload(name)
    instance = workload.instance(n)
    scalar_s, scalar_result = _timed_checked_run(
        program, workload, instance, rounds=1,
        compiled=False, vectorize=False,
    )
    fast_s, fast_result = _timed_checked_run(
        program, workload, instance, rounds=3,
        compiled=True, vectorize=True,
    )
    assert scalar_result.interpreter_steps == fast_result.interpreter_steps
    assert scalar_result.kernel_cycles == fast_result.kernel_cycles
    return {
        "name": f"scatter_tiers:{name}:n={n}",
        "scalar_seconds": round(scalar_s, 6),
        "vectorized_seconds": round(fast_s, 6),
        "speedup": round(scalar_s / fast_s, 2),
        "interpreter_steps": scalar_result.interpreter_steps,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_pr4.json"),
        help="output JSON path (default: <repo>/BENCH_pr4.json)",
    )
    args = parser.parse_args()

    benches = []
    programs: dict[str, object] = {}
    for workload in all_workloads():
        entry, program = bench_compile(workload.name)
        benches.append(entry)
        programs[workload.name] = program

    for name, sizes, rounds in BENCH_PLAN:
        for n in sizes:
            benches.append(bench_run(programs[name], name, n, rounds))

    dse_benches = [
        bench_dse_reuse(name, factors, n) for name, factors, n in DSE_PLAN
    ]

    histogram_sizes = get_workload("histogram").sizes
    scatter_benches = [
        bench_scatter_tiers(
            programs["histogram"], "histogram", max(histogram_sizes)
        )
    ]

    payload = {
        "pr": 4,
        "description": (
            "Workload gallery through the three-tier engine: every "
            "registered workload compiled + run, outputs checked bit-for-"
            "bit against NumPy references. Wall-clock of the simulator; "
            "device_time_ms/kernel_cycles are modelled values and must "
            "stay constant across engine changes. dse_artifact_reuse "
            "compares a sweep with a fresh Session per point (old cost "
            "model) against one shared Session (frontend + host build "
            "amortized over the sweep). scatter_tiers records the "
            "histogram workload's scalar-vs-vectorized wall-clock at its "
            "largest sweep size (the ufunc.at scatter fast path; the "
            "speedup must stay >= 5x)."
        ),
        "python": platform.python_version(),
        "benches": benches,
        "dse_artifact_reuse": dse_benches,
        "scatter_tiers": scatter_benches,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(b["name"]) for b in benches)
    for bench in benches:
        steps = bench.get("interpreter_steps")
        extra = f"  steps={steps:,}" if steps is not None else ""
        print(f"{bench['name']:<{width}}  {bench['seconds']*1e3:9.2f} ms{extra}")
    for bench in dse_benches:
        print(
            f"{bench['name']}  fresh {bench['fresh_seconds']*1e3:8.2f} ms "
            f"({bench['fresh_frontend_compiles']} frontend compiles)  "
            f"shared {bench['shared_seconds']*1e3:8.2f} ms "
            f"({bench['shared_frontend_compiles']})  "
            f"speedup {bench['speedup']:.2f}x"
        )
    for bench in scatter_benches:
        print(
            f"{bench['name']}  scalar {bench['scalar_seconds']*1e3:9.2f} ms  "
            f"vectorized {bench['vectorized_seconds']*1e3:8.2f} ms  "
            f"speedup {bench['speedup']:.1f}x"
        )
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

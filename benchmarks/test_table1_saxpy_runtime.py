"""Table 1 — SAXPY runtime: Fortran OpenMP flow vs hand-written HLS.

Paper result: the two flows are within ~0.6 % of each other at every
size, and runtime scales linearly with N (memory-bound kernel plus bulk
transfers).  The bench regenerates the full table and checks:

* who wins: neither — the flows stay within 2 % of each other;
* scale: our modeled medians land within 35 % of the published numbers;
* shape: runtime grows ~10x per 10x N (linear).
"""

from __future__ import annotations

import pytest

from conftest import PAPER_TABLE1, emit
from repro.reporting import format_table
from repro.workloads import SAXPY_SIZES


@pytest.mark.parametrize(
    "n",
    [
        pytest.param(n, marks=pytest.mark.slow) if n >= 10_000_000 else n
        for n in SAXPY_SIZES
    ],
)
def test_saxpy_runtime_point(benchmark, saxpy_runs, n):
    fortran, hls = saxpy_runs.results(n)

    def simulate():
        return saxpy_runs.results(n)

    benchmark.pedantic(simulate, rounds=1, iterations=1)
    benchmark.extra_info["modeled_fortran_ms"] = fortran.device_time_ms
    benchmark.extra_info["modeled_hls_ms"] = hls.device_time_ms

    paper_fortran, paper_hls = PAPER_TABLE1[n]
    # scale: modeled medians within 35 % of the paper's testbed
    assert fortran.device_time_ms == pytest.approx(paper_fortran, rel=0.35)
    assert hls.device_time_ms == pytest.approx(paper_hls, rel=0.35)
    # who wins: the flows are equivalent (sub-2 % difference)
    diff = abs(hls.device_time_s / fortran.device_time_s - 1.0)
    assert diff < 0.02


@pytest.mark.slow
def test_saxpy_runtime_table(benchmark, saxpy_runs, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    previous = None
    for n in SAXPY_SIZES:
        fortran, hls = saxpy_runs.results(n)
        paper_fortran, paper_hls = PAPER_TABLE1[n]
        diff = (hls.device_time_s / fortran.device_time_s - 1.0) * 100.0
        rows.append(
            (
                n,
                f"{fortran.device_time_ms:.3f}",
                f"{hls.device_time_ms:.3f}",
                f"{diff:+.2f}%",
                f"{paper_fortran:.3f}",
                f"{paper_hls:.3f}",
            )
        )
        if previous is not None:
            growth = fortran.device_time_s / previous
            assert 6.0 < growth < 14.0, "SAXPY must scale linearly in N"
        previous = fortran.device_time_s
    table = format_table(
        "Table 1: SAXPY runtime (ms) — Fortran OpenMP vs hand-written HLS",
        ["N", "Fortran (ours)", "HLS (ours)", "diff", "Fortran (paper)",
         "HLS (paper)"],
        rows,
    )
    emit(capsys, "table1_saxpy_runtime", table)

"""Table 3 — SAXPY resource utilisation (N = 10M).

Paper result: both flows synthesize to *identical* utilisation —
LUT 8.29 %, BRAM 10.07 %, DSP 0.10 % (shell-dominated; the memory-bound
II lets one physical MAC serve all ten unroll copies).
"""

from __future__ import annotations

from conftest import PAPER_TABLE3, emit
from repro.reporting import format_table


def test_saxpy_resources(benchmark, saxpy_program, saxpy_baseline, capsys):
    def synthesize():
        return saxpy_program.bitstream.utilization()

    benchmark.pedantic(synthesize, rounds=1, iterations=1)

    fortran = saxpy_program.bitstream.utilization().rounded()
    hls = saxpy_baseline.bitstream.utilization().rounded()

    table = format_table(
        "Table 3: SAXPY resource utilisation (N=10M)",
        ["Frontend", "LUT %", "BRAM %", "DSP %",
         "LUT(paper)", "BRAM(paper)", "DSP(paper)"],
        [
            ("Fortran OpenMP", *fortran, *PAPER_TABLE3["fortran"]),
            ("Hand-written HLS", *hls, *PAPER_TABLE3["hls"]),
        ],
    )
    emit(capsys, "table3_saxpy_resources", table)

    # exact reproduction of the published rounded percentages
    assert fortran == PAPER_TABLE3["fortran"]
    assert hls == PAPER_TABLE3["hls"]
    # the headline property: the flows are identical
    assert fortran == hls

"""Table 2 — SGESL runtime: Fortran OpenMP flow vs hand-written HLS.

Paper result: both flows within ~0.7 %, runtime growing ~4x per doubling
of N (the per-k implicit maps make the solve transfer-bound and O(N^2)).
"""

from __future__ import annotations

import pytest

from conftest import PAPER_TABLE2, emit
from repro.reporting import format_table
from repro.workloads import SGESL_SIZES


@pytest.mark.parametrize(
    "n",
    [
        pytest.param(n, marks=pytest.mark.slow) if n >= 2048 else n
        for n in SGESL_SIZES
    ],
)
def test_sgesl_runtime_point(benchmark, sgesl_runs, n):
    fortran, hls = sgesl_runs.results(n)

    def simulate():
        return sgesl_runs.results(n)

    benchmark.pedantic(simulate, rounds=1, iterations=1)
    benchmark.extra_info["modeled_fortran_ms"] = fortran.device_time_ms
    benchmark.extra_info["modeled_hls_ms"] = hls.device_time_ms

    paper_fortran, paper_hls = PAPER_TABLE2[n]
    assert fortran.device_time_ms == pytest.approx(paper_fortran, rel=0.35)
    assert hls.device_time_ms == pytest.approx(paper_hls, rel=0.35)
    diff = abs(hls.device_time_s / fortran.device_time_s - 1.0)
    assert diff < 0.02
    # one launch per k per phase: 2N-1 total
    assert fortran.launches == 2 * n - 1


@pytest.mark.slow
def test_sgesl_runtime_table(benchmark, sgesl_runs, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    previous = None
    for n in SGESL_SIZES:
        fortran, hls = sgesl_runs.results(n)
        paper_fortran, paper_hls = PAPER_TABLE2[n]
        diff = (hls.device_time_s / fortran.device_time_s - 1.0) * 100.0
        rows.append(
            (
                n,
                f"{fortran.device_time_ms:.3f}",
                f"{hls.device_time_ms:.3f}",
                f"{diff:+.2f}%",
                f"{paper_fortran:.3f}",
                f"{paper_hls:.3f}",
            )
        )
        if previous is not None:
            growth = fortran.device_time_s / previous
            assert 3.0 < growth < 5.0, "SGESL must scale ~quadratically"
        previous = fortran.device_time_s
    table = format_table(
        "Table 2: SGESL runtime (ms) — Fortran OpenMP vs hand-written HLS",
        ["N", "Fortran (ours)", "HLS (ours)", "diff", "Fortran (paper)",
         "HLS (paper)"],
        rows,
    )
    emit(capsys, "table2_sgesl_runtime", table)

"""Figure 2 — the complete compilation flow.

Regenerates the figure as an IR-evidence trace: each pipeline stage is
checked for the artifacts the paper's diagram shows —

  Fortran+omp -> core dialects -> [lower omp mapped data] device data ops
  -> [lower omp target region] kernel create/launch/wait -> module split
  (host C++/OpenCL | device hls) -> func calls -> LLVM-IR -> AMD
  primitives/LLVM-7 -> bitstream.
"""

from __future__ import annotations

from conftest import emit
from repro.ir.pass_manager import Instrumentation
from repro.reporting import format_table, pass_timing_table
from repro.session import Session
from repro.workloads import SAXPY_SOURCE


def test_pipeline_stage_trace(benchmark, capsys):
    instrumentation = Instrumentation(capture_ir=True)

    def compile_instrumented():
        return Session(
            SAXPY_SOURCE, instrumentation=instrumentation
        ).program()

    program = benchmark.pedantic(
        compile_instrumented, rounds=1, iterations=1
    )
    stages = {stage.name: stage.ir for stage in program.stages}

    expected_evidence = [
        ("fir+omp", "fir.declare", "Flang lowering (Fig. 1)"),
        ("fir+omp", "omp.target", "OpenMP directives as omp dialect"),
        ("core+omp", "memref.load", "[3] core-dialect lowering"),
        ("device-dialect", "device.alloc", "lower omp mapped data"),
        ("device-dialect", "device.data_acquire", "region ref-counting"),
        ("device-dialect", "device.kernel_create", "lower omp target region"),
        ("device-dialect", 'target = "fpga"', "kernel extraction"),
        ("device-hls", "hls.interface", "lower omp loops to HLS"),
        ("device-hls", "hls.pipeline", "pipelined loop"),
        ("device-hls", 'bundle = "gmem0"', "m_axi port binding"),
        ("llvm-ir", "define void @saxpy_kernel_0", "LLVM-IR emission"),
        ("llvm-ir", "@xlx_pipeline", "HLS runtime calls ([20])"),
        ("amd-hls-llvm7", "_ssdm_op_SpecPipeline", "AMD primitive mapping"),
        ("amd-hls-llvm7", "ftn_rt_", "runtime library linkage"),
    ]

    rows = []
    for stage_name, needle, meaning in expected_evidence:
        present = needle in stages.get(stage_name, "")
        rows.append((stage_name, needle, meaning, "yes" if present else "NO"))
        assert present, f"stage {stage_name!r} lacks {needle!r} ({meaning})"

    # Host side of the split: C++ with OpenCL driver calls.
    host_evidence = [
        ("host C++", "clCreateKernel", "kernel creation"),
        ("host C++", "clEnqueueTask", "kernel launch"),
        ("host C++", "clEnqueueWriteBuffer", "host->device DMA"),
        ("host C++", "ftn_rt::acquire", "data-region counter runtime"),
    ]
    for label, needle, meaning in host_evidence:
        present = needle in program.host_cpp
        rows.append((label, needle, meaning, "yes" if present else "NO"))
        assert present, f"host code lacks {needle!r} ({meaning})"

    table = format_table(
        "Figure 2: compilation-flow evidence trace (SAXPY)",
        ["stage", "artifact", "flow step", "found"],
        rows,
    )
    emit(capsys, "fig2_pipeline_stages", table)
    # per-pass wall-clock of the same instrumented compilation
    emit(capsys, "fig2_pass_timings", pass_timing_table(instrumentation))

    assert program.stage_names == [
        "fir+omp", "core+omp", "device-dialect", "device-hls",
        "llvm-ir", "amd-hls-llvm7",
    ]
    timed = {t.pass_name for t in instrumentation.pass_traces}
    assert {"fir-to-core", "lower-omp-to-hls", "canonicalize"} <= timed

"""Table 6 — SGESL median power draw: FPGA (both flows) vs one CPU core.

Paper result: ~22-24 W on the FPGA for both flows versus ~52-54 W for a
single CPU core — the flow preserves the FPGA's low-power advantage.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import PAPER_TABLE6, emit
from repro.fpga.power import CpuPowerModel, FpgaPowerModel
from repro.frontend import compile_to_core
from repro.reporting import format_table
from repro.runtime.cpu import CpuExecutor
from repro.workloads import SGESL_SIZES, SGESL_SOURCE, SgeslCase, sgesl_reference


@pytest.fixture(scope="module")
def cpu_executor():
    return CpuExecutor(compile_to_core(SGESL_SOURCE).module)


def _power_rows(sgesl_program, sgesl_baseline, cpu_executor):
    fpga_model = FpgaPowerModel()
    cpu_model = CpuPowerModel()
    rows = []
    for n in SGESL_SIZES:
        work = n * n  # total updated elements across both phases
        fortran_w = fpga_model.median_power_w(
            work, sgesl_program.bitstream.resources, "sgesl-fortran"
        )
        hls_w = fpga_model.median_power_w(
            work, sgesl_baseline.bitstream.resources, "sgesl-hls"
        )
        cpu_w = cpu_model.median_power_w(work, f"sgesl-{n}")
        rows.append((n, fortran_w, hls_w, cpu_w))
    # functional single-core check at a small size
    case = SgeslCase(64)
    _, lu, ipvt, b = case.system()
    expected = sgesl_reference(lu, ipvt, b)
    bb = b.copy()
    cpu_executor.run(
        "sgesl", lu.copy(), bb, (ipvt + 1).astype(np.int64),
        np.array(64, np.int32), label="sgesl-cpu",
    )
    assert np.allclose(bb, expected, rtol=1e-3, atol=1e-3)
    return rows


def test_sgesl_power(benchmark, sgesl_program, sgesl_baseline, cpu_executor, capsys):
    rows = benchmark.pedantic(
        _power_rows,
        args=(sgesl_program, sgesl_baseline, cpu_executor),
        rounds=1,
        iterations=1,
    )
    printable = []
    for n, fortran_w, hls_w, cpu_w in rows:
        paper = PAPER_TABLE6[n]
        printable.append(
            (
                n,
                f"{fortran_w:.2f}", f"{hls_w:.2f}", f"{cpu_w:.2f}",
                f"{paper[0]:.2f}", f"{paper[1]:.2f}", f"{paper[2]:.2f}",
            )
        )
        assert 20.0 < fortran_w < 27.0
        assert 20.0 < hls_w < 27.0
        assert 48.0 < cpu_w < 60.0
        assert cpu_w / fortran_w > 1.9
        assert abs(fortran_w - hls_w) < 2.0
        assert abs(fortran_w - paper[0]) < 3.0
        assert abs(cpu_w - paper[2]) < 5.0
    table = format_table(
        "Table 6: SGESL median power (W) — FPGA flows vs single CPU core",
        ["N", "Fortran (ours)", "HLS (ours)", "CPU (ours)",
         "Fortran (paper)", "HLS (paper)", "CPU (paper)"],
        printable,
    )
    emit(capsys, "table6_sgesl_power", table)

"""Golden-IR snapshots of the pipeline's stage outputs.

For SAXPY (the paper's Listing 5), the Jacobi 2-D gallery workload
(a ``collapse(2)`` nest), the histogram workload (indirect scatter
stores), heat3d (a ``collapse(3)`` rank-3 nest) and batched GEMM (a
rank-3 nest with a k-loop reduction), the module is printed after each
major stage:

* ``core-omp``  — after fir→core lowering (frontend output),
* ``device-hls`` — after *lower omp loops to HLS* on the device module,
* ``hls-func``  — after *lower HLS to func call* (the Vitis entry form).

Snapshots live next to this file as ``<workload>.<stage>.ir``.  When an
intentional IR change lands, refresh them with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and review the diff like any other code change.
"""

from pathlib import Path

import pytest

from repro.ir.pass_manager import Instrumentation
from repro.ir.printer import print_op
from repro.session import Session
from repro.transforms.lower_hls_to_func import LowerHlsToFuncPass
from repro.workloads import get_workload

GOLDEN_DIR = Path(__file__).resolve().parent

WORKLOADS = ("saxpy", "jacobi2d", "histogram", "heat3d", "batched_gemm")

#: pipeline-stage name -> snapshot slug
STAGES = {
    "core+omp": "core-omp",
    "device-hls": "device-hls",
    "hls-func": "hls-func",
}

_CACHE: dict[str, dict[str, str]] = {}


def _stage_texts(name: str) -> dict[str, str]:
    if name not in _CACHE:
        workload = get_workload(name)
        session = Session(
            workload.source,
            instrumentation=Instrumentation(capture_ir=True),
        )
        program = session.program()
        texts = {s.name: s.ir for s in program.stages}
        clone = program.device_module.clone()
        LowerHlsToFuncPass().apply(clone)
        texts["hls-func"] = print_op(clone)
        _CACHE[name] = texts
    return _CACHE[name]


@pytest.mark.parametrize("stage", sorted(STAGES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_stage_matches_golden(workload, stage, request):
    actual = _stage_texts(workload)[stage].rstrip("\n") + "\n"
    path = GOLDEN_DIR / f"{workload}.{STAGES[stage]}.ir"
    if request.config.getoption("--update-golden"):
        path.write_text(actual)
        return
    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        "pytest tests/golden --update-golden"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"{path.name} drifted from the pipeline output — if the IR "
        "change is intentional, refresh with --update-golden and review "
        "the diff"
    )


def test_snapshots_are_deterministic():
    """Two independent compilations print byte-identical IR (value
    numbering and pass order are stable)."""
    workload = get_workload("saxpy")

    def compile_once():
        session = Session(
            workload.source,
            instrumentation=Instrumentation(capture_ir=True),
        )
        return session.program()

    first = compile_once()
    second = compile_once()
    assert [s.ir for s in first.stages] == [s.ir for s in second.stages]

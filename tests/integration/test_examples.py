"""The example scripts must run end-to-end (quick modes).

Examples run with ``-W error::DeprecationWarning`` (part of the CI fast
job): they are the public face of the API, so they must never quietly
regress onto the deprecated ``compile_fortran`` kwargs shims — a
deprecated call path fails the example outright.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [
            sys.executable,
            "-W", "error::DeprecationWarning",
            str(EXAMPLES / name),
            *args,
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "correct" in out
    assert "Vitis (simulated) utilization report" in out
    assert "clEnqueueWriteBuffer" in out or "ftn_rt" in out


def test_saxpy_quick():
    out = run_example("saxpy.py", "--quick")
    assert "Fortran OpenMP (ms)" in out
    assert "10000" in out


def test_sgesl_quick():
    out = run_example("sgesl.py", "--quick")
    assert "residual" in out
    assert "DSP-mapped MAC" in out


def test_nested_data_regions():
    out = run_example("nested_data_regions.py")
    assert "with target data" in out
    # the scoped version must transfer strictly less
    lines = [
        line for line in out.splitlines()
        if line.startswith("bytes host->device")
    ]
    scoped, bare = (int(x) for x in lines[0].split()[-2:])
    assert scoped < bare


def test_reduction_offload():
    out = run_example("reduction_offload.py")
    assert "reduction copies = 1" in out
    assert "reduction copies = 8" in out
    assert "relative error" in out


def test_design_space_exploration():
    out = run_example("design_space_exploration.py")
    assert "Design-space exploration" in out
    assert "best: simdlen(" in out


def test_service_quickstart():
    out = run_example("service_quickstart.py")
    assert "memory_hit" in out
    assert "disk_hit" in out
    assert "matches the NumPy reference bit-for-bit" in out
    assert "8 concurrent requests -> 1 build, 7 coalesced" in out

"""A bare ``!$omp target`` region (no combined loop construct) offloads
sequential code to the device — no pipelining directives, but the same
data mapping and kernel plumbing."""

import numpy as np
import pytest

from repro.pipeline import compile_fortran

BARE_TARGET = """
subroutine init(a, v, n)
  integer, intent(in) :: n
  real, intent(in) :: v
  real, intent(out) :: a(n)
  integer :: i
!$omp target
  do i = 1, n
    a(i) = v * real(i)
  end do
!$omp end target
end subroutine init
"""


@pytest.fixture(scope="module")
def program():
    return compile_fortran(BARE_TARGET)


def test_compiles_to_one_kernel(program):
    assert list(program.bitstream.kernels) == ["init_kernel_0"]


def test_loop_unpipelined(program):
    kernel = program.bitstream.kernels["init_kernel_0"]
    schedules = list(kernel.loops.values())
    assert schedules, "the do loop must still be scheduled"
    assert all(not sched.pipelined for sched in schedules)
    # unpipelined: II carries the full body latency, well above 1
    assert all(sched.achieved_ii > 1 for sched in schedules)


def test_functional(program):
    n = 500
    a = np.zeros(n, dtype=np.float32)
    result = program.executor().run(
        "init", a, np.array(1.5, np.float32), np.array(n, np.int32)
    )
    assert np.allclose(a, 1.5 * np.arange(1, n + 1, dtype=np.float32))
    assert result.launches == 1


def test_slower_than_pipelined(program):
    """The paper's point of `parallel do`: without it the kernel loop is
    sequential and substantially slower."""
    pipelined = compile_fortran(
        BARE_TARGET.replace("!$omp target\n", "!$omp target parallel do\n")
        .replace("!$omp end target\n", "!$omp end target parallel do\n")
    )
    n = 20_000
    a = np.zeros(n, dtype=np.float32)
    bare_run = program.executor().run(
        "init", a.copy(), np.array(1.0, np.float32), np.array(n, np.int32)
    )
    piped_run = pipelined.executor().run(
        "init", a.copy(), np.array(1.0, np.float32), np.array(n, np.int32)
    )
    # the body is memory-dominated, so the sequential penalty is the
    # uncovered compute latency: strictly slower, by ~latency/memory_ii
    assert piped_run.kernel_time_s < bare_run.kernel_time_s * 0.85
